//! **SecureCloud** — secure big-data processing in untrusted clouds.
//!
//! This crate is the facade over the full layered architecture of the
//! SecureCloud project (Kelbert et al., DSN 2018):
//!
//! | Layer | Crate (re-exported module) |
//! |---|---|
//! | Enclave hardware (simulated SGX) | [`sgx`] |
//! | Cryptography + wire codec | [`crypto`] |
//! | SCONE secure-container runtime | [`scone`] |
//! | Secure containers / images / registry | [`containers`] |
//! | Secure content-based routing | [`scbr`] |
//! | GenPack generational scheduler | [`genpack`] |
//! | Event bus + micro-services | [`eventbus`] |
//! | Secure KV store | [`kvstore`] |
//! | Attested shard/replication layer | [`replica`] |
//! | Secure map/reduce | [`mapreduce`] |
//! | Smart-grid use cases | [`smartgrid`] |
//! | Streaming analytics (windows, joins) | [`streaming`] |
//!
//! [`SecureCloud`] assembles the trusted control plane (platform,
//! attestation, configuration service, registry, container engine, event
//! bus) into the deployment API the paper's Figure 1 sketches: build a
//! secure micro-service image, deploy it, and wire services over the bus.
//!
//! # Example
//!
//! ```
//! use securecloud::containers::build::SecureImageBuilder;
//! use securecloud::SecureCloud;
//!
//! let mut cloud = SecureCloud::new();
//! let built = SecureImageBuilder::new("meter-svc", "v1", b"service code")
//!     .protect_file("/data/keys", b"secret")
//!     .build()
//!     .unwrap();
//! let image = cloud.deploy_image(built);
//! let container = cloud.run_container(image).unwrap();
//! let plaintext = cloud
//!     .with_runtime(container, |rt| rt.read_file("/data/keys", 0, 16))
//!     .unwrap()
//!     .unwrap();
//! assert_eq!(plaintext, b"secret");
//! ```

pub use securecloud_cluster as cluster;
pub use securecloud_containers as containers;
pub use securecloud_crypto as crypto;
pub use securecloud_eventbus as eventbus;
pub use securecloud_faults as faults;
pub use securecloud_genpack as genpack;
pub use securecloud_kvstore as kvstore;
pub use securecloud_mapreduce as mapreduce;
pub use securecloud_replica as replica;
pub use securecloud_scbr as scbr;
pub use securecloud_scone as scone;
pub use securecloud_sgx as sgx;
pub use securecloud_smartgrid as smartgrid;
pub use securecloud_streaming as streaming;
pub use securecloud_telemetry as telemetry;

use cluster::{ClusterController, PolicyError, ScalingPolicy};
use containers::build::BuiltImage;
use containers::engine::{ContainerHealth, ContainerId, Engine, SupervisionConfig};
use containers::image::ImageId;
use containers::registry::Registry;
use containers::ContainerError;
use eventbus::service::{MicroService, ServiceHost};
use eventbus::TopicKeyService;
use faults::{FaultEvent, FaultInjector, FaultKind};
use kvstore::CounterService;
use parking_lot::RwLock;
use replica::cluster::FaultApplication;
use replica::{ReplicaConfig, ReplicaError, ReplicatedKv};
use scone::runtime::SconeRuntime;
use scone::scf::ConfigService;
use sgx::attest::AttestationService;
use sgx::enclave::Platform;
use std::sync::Arc;
use telemetry::{SloEngine, Telemetry, TraceContext};

/// The assembled SecureCloud control plane.
///
/// Owns one SGX-capable platform, the attestation + configuration trust
/// anchors, an image registry, the container engine, the per-topic key
/// service, and the event bus connecting micro-services.
pub struct SecureCloud {
    platform: Platform,
    registry: Arc<Registry>,
    config_service: Arc<RwLock<ConfigService>>,
    engine: Engine,
    key_service: TopicKeyService,
    host: ServiceHost,
    counter_service: CounterService,
    replicated: Vec<ReplicatedKv>,
    controller: Option<(ReplicatedKvId, ClusterController)>,
    elastic_image: Option<ImageId>,
    elastic_fleet: Vec<ContainerId>,
    sim_now_ms: u64,
    injector: Option<Arc<FaultInjector>>,
    telemetry: Arc<Telemetry>,
    causal_tracing: bool,
    switchless_delivery: bool,
}

/// Handle to a replicated KV deployment owned by the facade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicatedKvId(pub usize);

impl std::fmt::Debug for SecureCloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureCloud").finish_non_exhaustive()
    }
}

impl Default for SecureCloud {
    fn default() -> Self {
        Self::new()
    }
}

impl SecureCloud {
    /// Bootstraps a platform with fresh trust anchors.
    #[must_use]
    pub fn new() -> Self {
        let platform = Platform::new();
        let mut attestation = AttestationService::new();
        attestation.register_platform(&platform);
        let mut key_attestation = AttestationService::new();
        key_attestation.register_platform(&platform);
        let registry = Arc::new(Registry::new());
        let config_service = Arc::new(RwLock::new(ConfigService::new(attestation)));
        let mut engine = Engine::new(
            Arc::clone(&registry),
            platform.clone(),
            Arc::clone(&config_service),
        );
        // One registry + virtual-clock trace buffer for the whole platform:
        // engine supervision, bus delivery, and every bootstrapped secure
        // runtime report into it.
        let telemetry = Arc::new(Telemetry::new());
        engine.set_telemetry(Arc::clone(&telemetry));
        let mut host = ServiceHost::new(1_000);
        host.set_telemetry(Arc::clone(&telemetry));
        SecureCloud {
            platform,
            registry,
            config_service,
            engine,
            key_service: TopicKeyService::new(key_attestation),
            host,
            counter_service: CounterService::new(),
            replicated: Vec::new(),
            controller: None,
            elastic_image: None,
            elastic_fleet: Vec::new(),
            sim_now_ms: 0,
            injector: None,
            telemetry,
            causal_tracing: false,
            switchless_delivery: false,
        }
    }

    /// Seeds the deterministic causal-id minter and switches the facade
    /// into traced mode: injected enclave aborts mint root contexts so the
    /// whole container restart chain joins the fault's trace. Ids depend
    /// only on the seed and minting order, so equal seeds reproduce equal
    /// traces at any parallelism.
    pub fn set_trace_seed(&mut self, seed: u64) {
        self.telemetry.set_trace_seed(seed);
        self.causal_tracing = true;
    }

    /// Hands a declarative SLO engine to the attached cluster controller:
    /// from then on each tick evaluates multi-window burn rates, logs
    /// alerts into the decision log, and treats an active breach as a
    /// scale-up signal. Returns `false` (and drops the engine) when no
    /// controller is attached — attach one first.
    pub fn set_slo_engine(&mut self, engine: SloEngine) -> bool {
        match &mut self.controller {
            Some((_, controller)) => {
                controller.set_slo_engine(engine);
                true
            }
            None => false,
        }
    }

    /// The platform-wide telemetry: shared metrics registry, virtual
    /// clock, and trace buffer.
    #[must_use]
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Attaches a seeded fault injector to the whole platform: the event
    /// bus consults it for message fates, the container engine and service
    /// host record recovery events into its trace, and [`SecureCloud::advance`]
    /// fires its planned faults at their virtual-time points.
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.engine.set_fault_injector(Arc::clone(&injector));
        self.host.set_fault_injector(Arc::clone(&injector));
        self.injector = Some(injector);
    }

    /// The attached fault injector, if any.
    #[must_use]
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// The platform-wide virtual time in milliseconds.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.sim_now_ms
    }

    /// Advances the platform's virtual clock by `ms`: the container engine
    /// restarts containers whose backoff elapsed, the event bus expires
    /// leases (redelivering unacked messages), and any planned faults that
    /// came due are fired — enclave aborts go to the engine, service panics
    /// arm the service host, syscall failures arm the injector itself.
    ///
    /// Returns the fault events that fired so callers can apply the kinds
    /// the facade does not own (e.g. [`FaultKind::BrokerFail`] against an
    /// external [`scbr::broker::Overlay`]).
    pub fn advance(&mut self, ms: u64) -> Vec<FaultEvent> {
        self.sim_now_ms += ms;
        // Stamp the telemetry clock before anything below emits events so
        // every trace entry carries the current virtual time.
        self.telemetry.clock().set_at_least_ms(self.sim_now_ms);
        // Move the injector's clock first so everything the engine and bus
        // record below is stamped with the current virtual time.
        let events = match &self.injector {
            Some(injector) => injector.advance_to(self.sim_now_ms),
            None => Vec::new(),
        };
        self.engine.advance(ms);
        self.host.bus_mut().advance(ms);
        for event in &events {
            match &event.kind {
                // Unknown ids are a plan/deployment mismatch: count the
                // armed-but-unroutable fault instead of dropping it
                // silently (the fired event is already in the trace).
                FaultKind::EnclaveAbort { container } => {
                    // In traced mode each injected abort becomes the root of
                    // its own causal trace, so the restart chain (backoff,
                    // re-attestation, eventual quarantine) points back at
                    // the fault schedule entry that caused it.
                    let cause = if self.causal_tracing {
                        let root = self.telemetry.mint_root();
                        self.telemetry.event_ctx(
                            "faults",
                            "enclave_abort_fired",
                            vec![("container", format!("c{container}"))],
                            root,
                        );
                        root
                    } else {
                        TraceContext::none()
                    };
                    if self
                        .engine
                        .abort_traced(ContainerId(*container), "injected enclave abort", cause)
                        .is_err()
                    {
                        self.record_unroutable(&event.kind);
                    }
                }
                FaultKind::ServicePanic { service } => {
                    self.host.inject_panic_next(service);
                }
                FaultKind::SyscallFail { count } => {
                    // The injector has armed `count` forced failures; every
                    // secure runtime bootstrapped after the injector was
                    // attached reaches its host through a FaultyHost, so
                    // the next syscalls fail at the SCONE shield layer as
                    // host violations. Record the arming so traces show
                    // when the flaky window opened.
                    self.telemetry.event(
                        "faults",
                        "syscall_failures_armed",
                        vec![("count", count.to_string())],
                    );
                }
                // The facade owns no broker overlay; returned to the caller.
                FaultKind::BrokerFail { .. } => {}
                FaultKind::ReplicaKill { .. }
                | FaultKind::ReplicaStall { .. }
                | FaultKind::StorageCorruptBlock { .. }
                | FaultKind::NetworkPartition { .. } => {
                    // Every replicated deployment gets a shot at the event;
                    // the one owning the shard applies it (kill + failover,
                    // stall fencing, or partition until the heal deadline).
                    // Failover errors (e.g. no survivors) are already in
                    // the trace. If no deployment could route the event,
                    // count it: the target no longer exists.
                    let mut applied = false;
                    for kv in &mut self.replicated {
                        if let Ok(FaultApplication::Applied) =
                            kv.apply_fault(&event.kind, self.sim_now_ms)
                        {
                            applied = true;
                        }
                    }
                    if !applied {
                        self.record_unroutable(&event.kind);
                    }
                }
                _ => {}
            }
        }
        // Heal partitions whose deadline passed on the virtual clock.
        for kv in &mut self.replicated {
            kv.advance_to(self.sim_now_ms);
        }
        // Let the elastic controller observe and act, then reconcile the
        // bus-facing service fleet it sized.
        self.tick_controller();
        events
    }

    /// Counts a fault whose target no longer exists on this platform — an
    /// observable no-op instead of a panic or a silent drop.
    fn record_unroutable(&self, kind: &FaultKind) {
        self.telemetry
            .counter_with(
                "securecloud_faults_unroutable_total",
                &[("kind", kind.name())],
            )
            .inc();
        self.telemetry.event(
            "faults",
            "unroutable",
            vec![("kind", kind.name().to_string())],
        );
        if let Some(injector) = &self.injector {
            injector.record(format!("fault unroutable: {kind}"));
        }
    }

    fn tick_controller(&mut self) {
        let Some((target, controller)) = self.controller.as_mut() else {
            return;
        };
        let Some(kv) = self.replicated.get_mut(target.0) else {
            return;
        };
        let report = controller.tick(self.sim_now_ms, kv);
        self.reconcile_elastic_fleet(report.desired_service_replicas);
    }

    /// Converges the elastic service fleet on `desired` replicas.
    /// Containers in restart backoff count as present — the engine's
    /// supervisor owns their recovery, and double-provisioning a replica
    /// that is about to restart is exactly the flapping this avoids.
    /// Quarantined/failed containers are retired and replaced.
    fn reconcile_elastic_fleet(&mut self, desired: u32) {
        let Some(image) = self.elastic_image else {
            return;
        };
        let mut present = Vec::new();
        for id in std::mem::take(&mut self.elastic_fleet) {
            match self
                .engine
                .container(id)
                .map(containers::engine::Container::health)
            {
                Some(ContainerHealth::Running | ContainerHealth::Backoff) => present.push(id),
                _ => self.telemetry.event(
                    "cluster",
                    "service_replica_retired",
                    vec![("container", format!("{id:?}"))],
                ),
            }
        }
        self.elastic_fleet = present;
        while (self.elastic_fleet.len() as u32) < desired {
            match self
                .engine
                .run_supervised(image, SupervisionConfig::default())
            {
                Ok(id) => self.elastic_fleet.push(id),
                Err(_) => break,
            }
        }
        while (self.elastic_fleet.len() as u32) > desired {
            let Some(id) = self.elastic_fleet.pop() else {
                break;
            };
            let _ = self.engine.stop(id);
        }
    }

    /// Attaches the elastic cluster controller: each [`SecureCloud::advance`]
    /// it observes the platform telemetry, repairs and scales `target`'s
    /// shard groups through the attestation-gated membership paths, and
    /// sizes the elastic service fleet (see
    /// [`SecureCloud::set_elastic_service_image`]).
    ///
    /// # Errors
    ///
    /// [`PolicyError`] when the policy fails validation.
    pub fn attach_cluster_controller(
        &mut self,
        target: ReplicatedKvId,
        policy: ScalingPolicy,
        servers: usize,
    ) -> Result<(), PolicyError> {
        let mut controller = ClusterController::new(policy, &self.telemetry, servers)?;
        if let Some(injector) = &self.injector {
            controller.set_fault_injector(Arc::clone(injector));
        }
        self.controller = Some((target, controller));
        Ok(())
    }

    /// The attached elastic controller, if any.
    #[must_use]
    pub fn cluster_controller(&self) -> Option<&ClusterController> {
        self.controller.as_ref().map(|(_, c)| c)
    }

    /// Sets the image the controller-managed service fleet runs. New
    /// replicas start supervised, so abnormal exits restart with backoff.
    pub fn set_elastic_service_image(&mut self, image: ImageId) {
        self.elastic_image = Some(image);
    }

    /// Containers currently in the controller-managed service fleet.
    #[must_use]
    pub fn elastic_fleet(&self) -> &[ContainerId] {
        &self.elastic_fleet
    }

    /// The underlying (simulated) SGX platform.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The image registry.
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The configuration service trust anchor (SCF registration,
    /// attestation policy).
    #[must_use]
    pub fn config_service(&self) -> &Arc<RwLock<ConfigService>> {
        &self.config_service
    }

    /// The per-topic payload key service.
    pub fn key_service_mut(&mut self) -> &mut TopicKeyService {
        &mut self.key_service
    }

    /// Publishes a built secure image: pushes it, registers its SCF, and
    /// allows its measurement.
    pub fn deploy_image(&mut self, built: BuiltImage) -> ImageId {
        self.engine.deploy(built)
    }

    /// Starts a container from a deployed image (secure bootstrap included
    /// for secure images).
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn run_container(&mut self, image: ImageId) -> Result<ContainerId, ContainerError> {
        self.engine.run(image)
    }

    /// Stops a container (destroying its enclave if secure).
    ///
    /// # Errors
    ///
    /// See [`Engine::stop`].
    pub fn stop_container(&mut self, id: ContainerId) -> Result<(), ContainerError> {
        self.engine.stop(id)
    }

    /// Runs `f` with the SCONE runtime of a secure container.
    ///
    /// Returns `None` for unknown ids or plain containers.
    pub fn with_runtime<R>(
        &mut self,
        id: ContainerId,
        f: impl FnOnce(&mut SconeRuntime) -> R,
    ) -> Option<R> {
        self.engine.container_mut(id)?.runtime_mut().map(f)
    }

    /// The container engine (fleet inspection, resource accounting).
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// The platform's trusted monotonic counter service (rollback
    /// protection for KV snapshots and replica-group epochs).
    #[must_use]
    pub fn counter_service(&self) -> &CounterService {
        &self.counter_service
    }

    /// Deploys a sharded, quorum-replicated secure KV store on this
    /// platform: every replica enclave is attested before admission, the
    /// platform counter service backs epoch/version rollback protection,
    /// and the deployment shares the platform telemetry and fault
    /// injector. [`FaultKind::ReplicaKill`] events fired by
    /// [`SecureCloud::advance`] are routed to it automatically.
    ///
    /// # Errors
    ///
    /// See [`ReplicatedKv::deploy_with`].
    pub fn deploy_replicated_kv(
        &mut self,
        config: ReplicaConfig,
    ) -> Result<ReplicatedKvId, ReplicaError> {
        let kv = ReplicatedKv::deploy_with(
            config,
            &self.platform,
            &self.counter_service,
            Some(&self.telemetry),
            self.injector.as_ref(),
        )?;
        self.replicated.push(kv);
        Ok(ReplicatedKvId(self.replicated.len() - 1))
    }

    /// A replicated KV deployment by handle.
    #[must_use]
    pub fn replicated_kv(&self, id: ReplicatedKvId) -> Option<&ReplicatedKv> {
        self.replicated.get(id.0)
    }

    /// Mutable access to a replicated KV deployment (puts/gets/failover).
    pub fn replicated_kv_mut(&mut self, id: ReplicatedKvId) -> Option<&mut ReplicatedKv> {
        self.replicated.get_mut(id.0)
    }

    /// Registers a micro-service on the platform event bus.
    pub fn register_service(&mut self, service: Box<dyn MicroService>) {
        self.host.register(service);
    }

    /// The event-bus service host.
    pub fn services_mut(&mut self) -> &mut ServiceHost {
        &mut self.host
    }

    /// Sets how many bus messages each service may consume per delivery
    /// step (fetched as one lease batch; delivery semantics are unchanged).
    /// See [`ServiceHost::set_delivery_batch`].
    pub fn set_delivery_batch(&mut self, batch: usize) {
        self.host.set_delivery_batch(batch);
    }

    /// Switches [`SecureCloud::run_services`] onto the event-driven
    /// delivery loop ([`ServiceHost::pump_switchless`]): each pass delivers
    /// only to subscribers the bus reports ready instead of scanning every
    /// service × subscription. Delivery outcomes are observably identical;
    /// only the pump's work scales with readiness rather than fleet size.
    pub fn set_switchless_delivery(&mut self, switchless: bool) {
        self.switchless_delivery = switchless;
    }

    /// Whether the event-driven delivery loop is active.
    #[must_use]
    pub fn switchless_delivery(&self) -> bool {
        self.switchless_delivery
    }

    /// Pumps bus deliveries until quiet; returns messages processed.
    pub fn run_services(&mut self, max_steps: usize) -> usize {
        if self.switchless_delivery {
            self.host.pump_switchless(max_steps)
        } else {
            self.host.run_until_quiet(max_steps)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use containers::build::SecureImageBuilder;

    #[test]
    fn facade_deploy_run_read() {
        let mut cloud = SecureCloud::new();
        let built = SecureImageBuilder::new("svc", "v1", b"binary")
            .protect_file("/data/secret", b"42")
            .arg("--run")
            .build()
            .unwrap();
        let image = cloud.deploy_image(built);
        let container = cloud.run_container(image).unwrap();
        let content = cloud
            .with_runtime(container, |rt| rt.read_file("/data/secret", 0, 2))
            .unwrap()
            .unwrap();
        assert_eq!(content, b"42");
        cloud.stop_container(container).unwrap();
    }

    #[test]
    fn replica_kill_events_route_to_replicated_deployments() {
        use faults::FaultPlan;
        use replica::{ReplicaConfig, ReplicationFactor, WriteQuorum};

        let mut cloud = SecureCloud::new();
        let plan = FaultPlan::new().at(50, FaultKind::ReplicaKill { shard: 0, slot: 1 });
        cloud.set_fault_injector(Arc::new(FaultInjector::with_plan(7, plan)));
        let id = cloud
            .deploy_replicated_kv(ReplicaConfig {
                shards: 2,
                replication: ReplicationFactor(3),
                write_quorum: WriteQuorum(2),
                ..ReplicaConfig::default()
            })
            .unwrap();
        cloud
            .replicated_kv_mut(id)
            .unwrap()
            .put(b"acked", b"before fault")
            .unwrap();
        let events = cloud.advance(100);
        assert_eq!(events.len(), 1);
        let kv = cloud.replicated_kv_mut(id).unwrap();
        assert_eq!(kv.stats().replicas_killed, 1);
        assert_eq!(kv.stats().replicas_replaced, 1, "auto-failover ran");
        assert_eq!(kv.get(b"acked").unwrap(), Some(b"before fault".to_vec()));
        assert!(cloud.replicated_kv(ReplicatedKvId(9)).is_none());
    }

    #[test]
    fn storage_corruption_events_route_to_tiered_deployments() {
        use faults::FaultPlan;
        use replica::{ReplicaConfig, ReplicationFactor, StorageConfig, WriteQuorum};

        let mut cloud = SecureCloud::new();
        let plan = FaultPlan::new().at(50, FaultKind::StorageCorruptBlock { shard: 0, slot: 1 });
        cloud.set_fault_injector(Arc::new(FaultInjector::with_plan(11, plan)));
        let id = cloud
            .deploy_replicated_kv(ReplicaConfig {
                shards: 1,
                replication: ReplicationFactor(3),
                write_quorum: WriteQuorum(2),
                storage: Some(StorageConfig {
                    block_bytes: 256,
                    flush_bytes: 1024,
                    cache_blocks: 2,
                    compact_at_segments: 4,
                }),
                ..ReplicaConfig::default()
            })
            .unwrap();
        // Enough writes to flush sealed segments onto the host disk.
        for i in 0..40u32 {
            cloud
                .replicated_kv_mut(id)
                .unwrap()
                .put(format!("reading/{i:03}").as_bytes(), &[0xCD; 40])
                .unwrap();
        }
        let events = cloud.advance(100);
        assert_eq!(events.len(), 1);
        let kv = cloud.replicated_kv_mut(id).unwrap();
        let stats = kv.stats();
        assert!(stats.storage_corruptions >= 1, "scrub saw the bit flip");
        assert_eq!(stats.replicas_killed, 1, "damaged replica retired");
        assert_eq!(stats.replicas_replaced, 1, "auto-failover ran");
        assert!(stats.snapshot_stream_bytes > 0, "incremental catch-up");
        for i in 0..40u32 {
            assert_eq!(
                kv.get(format!("reading/{i:03}").as_bytes()).unwrap(),
                Some(vec![0xCD; 40])
            );
        }
    }

    #[test]
    fn unroutable_faults_are_counted_not_dropped() {
        use faults::FaultPlan;

        let mut cloud = SecureCloud::new();
        // Shard 9 and container 99 never exist: every fault below is armed
        // against a target that is gone by fire time.
        let plan = FaultPlan::new()
            .at(10, FaultKind::ReplicaKill { shard: 9, slot: 0 })
            .at(20, FaultKind::ReplicaStall { shard: 9, slot: 0 })
            .at(
                30,
                FaultKind::NetworkPartition {
                    group: 9,
                    heal_after_ms: 50,
                },
            )
            .at(40, FaultKind::EnclaveAbort { container: 99 });
        let injector = Arc::new(FaultInjector::with_plan(3, plan));
        cloud.set_fault_injector(Arc::clone(&injector));
        cloud
            .deploy_replicated_kv(ReplicaConfig {
                shards: 1,
                ..ReplicaConfig::default()
            })
            .unwrap();
        let events = cloud.advance(100);
        assert_eq!(events.len(), 4, "all four faults fired");
        let telemetry = Arc::clone(cloud.telemetry());
        let count = move |kind: &str| {
            telemetry
                .counter_with("securecloud_faults_unroutable_total", &[("kind", kind)])
                .value()
        };
        assert_eq!(count("replica-kill"), 1);
        assert_eq!(count("replica-stall"), 1);
        assert_eq!(count("network-partition"), 1);
        assert_eq!(count("enclave-abort"), 1);
        assert!(
            injector
                .trace()
                .iter()
                .filter(|line| line.contains("fault unroutable"))
                .count()
                == 4,
            "unroutable faults recorded in the deterministic trace"
        );
        // A routable fault does not touch the counter.
        let kv_id = ReplicatedKvId(0);
        let before = count("replica-kill");
        cloud
            .replicated_kv_mut(kv_id)
            .unwrap()
            .apply_fault(&FaultKind::ReplicaKill { shard: 0, slot: 0 }, 0)
            .unwrap();
        assert_eq!(count("replica-kill"), before);
    }

    #[test]
    fn stall_and_partition_faults_route_through_advance() {
        use faults::FaultPlan;
        use replica::ShardId;

        let mut cloud = SecureCloud::new();
        let plan = FaultPlan::new()
            .at(10, FaultKind::ReplicaStall { shard: 0, slot: 1 })
            .at(
                20,
                FaultKind::NetworkPartition {
                    group: 1,
                    heal_after_ms: 1_000,
                },
            );
        cloud.set_fault_injector(Arc::new(FaultInjector::with_plan(5, plan)));
        let id = cloud
            .deploy_replicated_kv(ReplicaConfig {
                shards: 2,
                ..ReplicaConfig::default()
            })
            .unwrap();
        cloud.advance(50);
        let kv = cloud.replicated_kv(id).unwrap();
        assert_eq!(kv.stats().replicas_stalled, 1);
        assert!(kv.group(ShardId(1)).unwrap().is_partitioned());
        // The heal deadline (t=20 + 1000ms) passes on the virtual clock.
        cloud.advance(1_000);
        let kv = cloud.replicated_kv(id).unwrap();
        assert!(!kv.group(ShardId(1)).unwrap().is_partitioned());
    }

    #[test]
    fn attached_controller_repairs_and_sizes_the_service_fleet() {
        use containers::build::SecureImageBuilder;
        use faults::FaultPlan;

        let mut cloud = SecureCloud::new();
        let plan = FaultPlan::new().at(1_500, FaultKind::ReplicaStall { shard: 0, slot: 0 });
        cloud.set_fault_injector(Arc::new(FaultInjector::with_plan(11, plan)));
        let id = cloud
            .deploy_replicated_kv(ReplicaConfig {
                shards: 1,
                ..ReplicaConfig::default()
            })
            .unwrap();
        let built = SecureImageBuilder::new("elastic-svc", "v1", b"svc code")
            .build()
            .unwrap();
        let image = cloud.deploy_image(built);
        cloud.set_elastic_service_image(image);
        cloud
            .attach_cluster_controller(id, ScalingPolicy::default(), 8)
            .unwrap();
        assert!(cloud.cluster_controller().is_some());
        for _ in 0..4 {
            cloud.advance(1_000);
        }
        // The stalled replica was killed and replaced by the controller.
        let kv = cloud.replicated_kv(id).unwrap();
        assert_eq!(kv.stats().replicas_stalled, 0);
        assert_eq!(kv.live_replicas(), 3);
        // The fleet converged on the policy's service floor.
        assert_eq!(cloud.elastic_fleet().len(), 1);
        let controller = cloud.cluster_controller().unwrap();
        assert!(controller
            .decisions()
            .iter()
            .any(|d| d.contains("killed stalled replica s0/r0")));
    }

    #[test]
    fn switchless_delivery_toggle_routes_run_services() {
        use eventbus::service::{MicroService, ServiceCtx};
        use eventbus::Message;
        use scbr::types::{Publication, Subscription};
        use std::sync::atomic::{AtomicU64, Ordering};

        struct Echo {
            seen: Arc<AtomicU64>,
        }
        impl MicroService for Echo {
            fn name(&self) -> &str {
                "echo"
            }
            fn subscriptions(&self) -> Vec<(String, Option<Subscription>)> {
                vec![("in".into(), None)]
            }
            fn handle(&mut self, _message: &Message, _ctx: &mut ServiceCtx) {
                self.seen.fetch_add(1, Ordering::Relaxed);
            }
        }

        let run = |switchless: bool| {
            let mut cloud = SecureCloud::new();
            cloud.set_switchless_delivery(switchless);
            assert_eq!(cloud.switchless_delivery(), switchless);
            let seen = Arc::new(AtomicU64::new(0));
            cloud.register_service(Box::new(Echo { seen: seen.clone() }));
            for i in 0..5u8 {
                cloud
                    .services_mut()
                    .bus_mut()
                    .publish("in", vec![i], Publication::new());
            }
            let processed = cloud.run_services(100);
            (processed, seen.load(Ordering::Relaxed))
        };
        assert_eq!(run(false), run(true));
        assert_eq!(run(true), (5, 5));
    }

    #[test]
    fn with_runtime_none_for_unknown_or_plain() {
        let mut cloud = SecureCloud::new();
        assert!(cloud.with_runtime(ContainerId(77), |_| ()).is_none());
        let plain = containers::image::Image::new("p", "1", b"bin");
        let id = cloud.registry().push(plain);
        let container = cloud.run_container(id).unwrap();
        assert!(cloud.with_runtime(container, |_| ()).is_none());
    }
}
