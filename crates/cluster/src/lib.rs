//! # securecloud-cluster
//!
//! The elastic cluster controller: telemetry-driven autoscaling of
//! attested replicas that survives fault schedules with zero acked-write
//! loss.
//!
//! The SecureCloud paper assumes an operator sizes the platform by hand.
//! This crate closes the loop instead: a deterministic, virtual-clock
//! [`ClusterController`] watches the platform's own telemetry — event-bus
//! backpressure, dead-letter-queue depth, publish-to-ack p99 latency, and
//! per-shard replication lag — through an explicit [`ScalingPolicy`] with
//! hysteresis bands, breach/calm streaks, and per-direction cooldowns, and
//! acts through the same attestation-gated membership paths clients use:
//!
//! * scale-up admits a replica only through the provisioning service
//!   (quote verified, sealing key over a secure channel) and re-derives
//!   the write quorum as the smallest majority of the new group size;
//! * scale-down *drains before decommission* — the group refuses the
//!   drain outright if the survivors could not sustain the post-drain
//!   majority quorum, so no acknowledged write is ever put at risk;
//! * degraded replicas (killed or stalled by fault injection) are fenced,
//!   killed, and replaced through the ordinary failover path, so a node
//!   kill during a scale-up converges to the desired state instead of
//!   flapping;
//! * every resident replica is placed on the simulated data-center
//!   through a GenPack [`Scheduler`](securecloud_genpack::Scheduler), so
//!   elasticity shows up in the power model (consolidation, parked
//!   servers) and not just in replica counts.
//!
//! Every decision is recorded as a `t=<ms> ...` line in an append-only
//! trace ([`ClusterController::decisions`]). The trace depends only on
//! the seed and the virtual clock — byte-identical across runs and across
//! `--jobs N` parallelism — and is what the E12 benchmark pins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod policy;

pub use controller::{ClusterController, ControllerReport};
pub use policy::{PolicyError, ScalingPolicy};
