//! The scaling policy: thresholds, hysteresis, and cooldowns.
//!
//! A policy turns raw telemetry into a breach/calm verdict per tick. The
//! asymmetry is deliberate and is what keeps the controller from
//! flapping:
//!
//! * a signal **breaches** when it crosses its high threshold; a shard
//!   only scales up after [`ScalingPolicy::up_streak`] consecutive
//!   breaching ticks and an [`ScalingPolicy::up_cooldown_ms`] since the
//!   last scale-up;
//! * a shard is **calm** only when *every* signal sits below *half* its
//!   high threshold — the band between half and high is dead zone where
//!   neither streak advances — and only scales down after the longer
//!   [`ScalingPolicy::down_streak`] and [`ScalingPolicy::down_cooldown_ms`].
//!
//! Scale-down is slower than scale-up on every axis (streak, cooldown)
//! because adding a replica under load is cheap insurance while draining
//! one is only worth doing when the calm is sustained.

use std::error::Error as StdError;
use std::fmt;

/// An invalid [`ScalingPolicy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyError(String);

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scaling policy: {}", self.0)
    }
}

impl StdError for PolicyError {}

/// Thresholds and damping for the elastic controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalingPolicy {
    /// Floor on replicas per shard group (never drained below this).
    pub min_replicas: usize,
    /// Ceiling on replicas per shard group.
    pub max_replicas: usize,
    /// Replication-lag gauge value (versions behind) that breaches.
    pub lag_high: u64,
    /// Publish-to-ack p99 upper bound (ms) that breaches.
    pub p99_high_ms: u64,
    /// Backpressure errors *per tick* (counter delta) that breach.
    pub backpressure_high: u64,
    /// Dead-letter-queue depth that breaches.
    pub dlq_high: i64,
    /// Consecutive breaching ticks required before a scale-up.
    pub up_streak: u32,
    /// Consecutive calm ticks required before a scale-down.
    pub down_streak: u32,
    /// Minimum virtual ms between scale-ups of the same target.
    pub up_cooldown_ms: u64,
    /// Minimum virtual ms between scale-downs of the same target.
    pub down_cooldown_ms: u64,
    /// Floor on bus-facing service replicas.
    pub min_service_replicas: u32,
    /// Ceiling on bus-facing service replicas.
    pub max_service_replicas: u32,
}

impl Default for ScalingPolicy {
    fn default() -> Self {
        ScalingPolicy {
            min_replicas: 3,
            max_replicas: 5,
            lag_high: 8,
            p99_high_ms: 250,
            backpressure_high: 8,
            dlq_high: 4,
            up_streak: 2,
            down_streak: 4,
            up_cooldown_ms: 2_000,
            down_cooldown_ms: 5_000,
            min_service_replicas: 1,
            max_service_replicas: 4,
        }
    }
}

impl ScalingPolicy {
    /// Checks the policy's internal consistency.
    ///
    /// # Errors
    ///
    /// [`PolicyError`] when a bound is inverted, a streak is zero (the
    /// controller would react to single-tick noise), or a threshold is
    /// zero (every tick would breach).
    pub fn validate(&self) -> Result<(), PolicyError> {
        if self.min_replicas == 0 {
            return Err(PolicyError("min_replicas must be >= 1".into()));
        }
        if self.max_replicas < self.min_replicas {
            return Err(PolicyError(format!(
                "max_replicas {} < min_replicas {}",
                self.max_replicas, self.min_replicas
            )));
        }
        if self.up_streak == 0 || self.down_streak == 0 {
            return Err(PolicyError(
                "streaks must be >= 1 (zero reacts to single-tick noise)".into(),
            ));
        }
        if self.lag_high == 0
            || self.p99_high_ms == 0
            || self.backpressure_high == 0
            || self.dlq_high <= 0
        {
            return Err(PolicyError(
                "high thresholds must be positive (zero breaches every tick)".into(),
            ));
        }
        if self.min_service_replicas == 0 {
            return Err(PolicyError("min_service_replicas must be >= 1".into()));
        }
        if self.max_service_replicas < self.min_service_replicas {
            return Err(PolicyError(format!(
                "max_service_replicas {} < min_service_replicas {}",
                self.max_service_replicas, self.min_service_replicas
            )));
        }
        Ok(())
    }
}

/// One tick's observed signals, evaluated against a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signals {
    /// Per-shard replication lag (gauge value, clamped at zero).
    pub lag: u64,
    /// Bus publish-to-ack p99 upper bound, ms. `None` before the first
    /// acked publish — during warmup there is *no measurement*, which must
    /// neither read as a breach (the old `0` sentinel could never breach,
    /// but a future low threshold would have made it one) nor block calm
    /// (a deployment that never publishes must still be able to drain).
    pub p99_ms: Option<u64>,
    /// Bus backpressure errors since the previous tick.
    pub backpressure_delta: u64,
    /// Bus dead-letter-queue depth.
    pub dlq_depth: i64,
    /// Whether the SLO engine reports an objective burning above its
    /// multi-window threshold this tick (an immediate breach that also
    /// vetoes calm).
    pub slo_breach: bool,
}

impl Signals {
    /// Whether any signal crosses its high threshold. An absent p99 can
    /// never breach: no data is not slow data.
    #[must_use]
    pub fn breaches(&self, policy: &ScalingPolicy) -> bool {
        self.lag >= policy.lag_high
            || self.p99_ms.is_some_and(|p99| p99 >= policy.p99_high_ms)
            || self.backpressure_delta >= policy.backpressure_high
            || self.dlq_depth >= policy.dlq_high
            || self.slo_breach
    }

    /// Whether *every* signal sits below half its high threshold — the
    /// hysteresis band between half and high advances neither streak. An
    /// absent p99 does not block calm (absence of traffic is calm), but a
    /// burning SLO always does.
    #[must_use]
    pub fn is_calm(&self, policy: &ScalingPolicy) -> bool {
        self.lag < policy.lag_high / 2
            && self.p99_ms.is_none_or(|p99| p99 < policy.p99_high_ms / 2)
            && self.backpressure_delta < policy.backpressure_high / 2
            && self.dlq_depth < policy.dlq_high / 2
            && !self.slo_breach
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_valid() {
        ScalingPolicy::default().validate().unwrap();
    }

    #[test]
    fn validation_rejects_inverted_and_zero_shapes() {
        let reject = |policy: ScalingPolicy| {
            assert!(policy.validate().is_err(), "{policy:?} should be invalid");
        };
        reject(ScalingPolicy {
            min_replicas: 0,
            ..ScalingPolicy::default()
        });
        reject(ScalingPolicy {
            max_replicas: 2,
            min_replicas: 3,
            ..ScalingPolicy::default()
        });
        reject(ScalingPolicy {
            up_streak: 0,
            ..ScalingPolicy::default()
        });
        reject(ScalingPolicy {
            lag_high: 0,
            ..ScalingPolicy::default()
        });
        reject(ScalingPolicy {
            dlq_high: 0,
            ..ScalingPolicy::default()
        });
        reject(ScalingPolicy {
            max_service_replicas: 0,
            ..ScalingPolicy::default()
        });
    }

    #[test]
    fn hysteresis_band_is_neither_breach_nor_calm() {
        let policy = ScalingPolicy::default();
        let quiet = Signals {
            lag: 0,
            p99_ms: Some(10),
            backpressure_delta: 0,
            dlq_depth: 0,
            slo_breach: false,
        };
        assert!(!quiet.breaches(&policy));
        assert!(quiet.is_calm(&policy));

        let hot = Signals {
            lag: policy.lag_high,
            ..quiet
        };
        assert!(hot.breaches(&policy));
        assert!(!hot.is_calm(&policy));

        // Between half and high: dead zone.
        let warm = Signals {
            p99_ms: Some(policy.p99_high_ms / 2 + 1),
            ..quiet
        };
        assert!(!warm.breaches(&policy));
        assert!(!warm.is_calm(&policy));
    }

    #[test]
    fn absent_p99_neither_breaches_nor_blocks_calm() {
        let policy = ScalingPolicy::default();
        let warmup = Signals {
            lag: 0,
            p99_ms: None,
            backpressure_delta: 0,
            dlq_depth: 0,
            slo_breach: false,
        };
        assert!(!warmup.breaches(&policy), "no data is not slow data");
        assert!(warmup.is_calm(&policy), "no traffic must still drain");
    }

    #[test]
    fn slo_breach_breaches_and_vetoes_calm() {
        let policy = ScalingPolicy::default();
        let burning = Signals {
            lag: 0,
            p99_ms: None,
            backpressure_delta: 0,
            dlq_depth: 0,
            slo_breach: true,
        };
        assert!(burning.breaches(&policy));
        assert!(!burning.is_calm(&policy));
    }
}
