//! The deterministic elastic controller.
//!
//! One [`ClusterController::tick`] per virtual-time step:
//!
//! 1. **Observe** — read the shared telemetry handles (bus backpressure
//!    delta, DLQ depth, publish-to-ack p99) and each shard's
//!    replication-lag gauge;
//! 2. **Repair** — kill stalled replicas (grey failures fenced by the
//!    replica layer) and fail over every degraded group, so a node kill
//!    that lands mid-scale-up converges back to the desired state;
//! 3. **Decide** — advance breach/calm streaks per shard against the
//!    [`ScalingPolicy`] and scale up/down through the attestation-gated
//!    membership paths, honouring cooldowns and the drain-refusal check;
//! 4. **Place** — reconcile every resident replica onto the simulated
//!    data-center through the GenPack scheduler and let it consolidate.
//!
//! Every decision appends one `t=<ms> ...` line to the controller trace.
//! The trace is a pure function of (seed, policy, virtual clock) — the
//! determinism artifact the E12 benchmark pins byte-for-byte.

use crate::policy::{ScalingPolicy, Signals};
use securecloud_eventbus::bus::{
    METRIC_BACKPRESSURED, METRIC_DEAD_LETTER_DEPTH, METRIC_PUBLISH_TO_ACK_MS,
};
use securecloud_faults::FaultInjector;
use securecloud_genpack::cluster::{Cluster, Demand, JobId, ServerSpec};
use securecloud_genpack::schedulers::{GenPackScheduler, Scheduler};
use securecloud_replica::{ReplicaError, ReplicatedKv, ShardId};
use securecloud_telemetry::{Counter, Gauge, Histogram, SloEngine, Telemetry};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// CPU/memory footprint the controller books per replica enclave when
/// placing it on the data-center model (requested vs observed mirrors
/// the paper's finding that enclave services overstate their needs).
const REPLICA_DEMAND: Demand = Demand {
    cpu_requested: 2.0,
    cpu_actual: 1.2,
    mem: 2048,
};

/// Per-shard controller state: the desired replica count plus the
/// hysteresis streaks and cooldown clocks that damp it.
#[derive(Debug, Clone)]
struct ShardState {
    desired: usize,
    breach_streak: u32,
    calm_streak: u32,
    last_up_ms: Option<u64>,
    last_down_ms: Option<u64>,
}

impl ShardState {
    fn new(desired: usize) -> Self {
        ShardState {
            desired,
            breach_streak: 0,
            calm_streak: 0,
            last_up_ms: None,
            last_down_ms: None,
        }
    }
}

/// What one controller tick did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[must_use]
pub struct ControllerReport {
    /// Virtual time of the tick.
    pub now_ms: u64,
    /// Replicas admitted by scale-up this tick.
    pub scaled_up: u32,
    /// Replicas drained and decommissioned this tick.
    pub scaled_down: u32,
    /// Scale-downs refused by the drain check this tick.
    pub drains_refused: u32,
    /// Stalled replicas killed for replacement this tick.
    pub stalled_killed: u32,
    /// Replicas replaced through failover this tick.
    pub failovers: u32,
    /// Bus-facing service replicas the platform should run after this
    /// tick (the facade actuates this through the container engine).
    pub desired_service_replicas: u32,
    /// Placement migrations performed by the GenPack consolidation pass.
    pub migrations: u64,
    /// Servers parked by the consolidation pass.
    pub parked: u64,
}

/// The telemetry-driven elastic controller. See the module docs for the
/// tick pipeline.
pub struct ClusterController {
    policy: ScalingPolicy,
    telemetry: Arc<Telemetry>,
    injector: Option<Arc<FaultInjector>>,
    // Shared bus metric handles (get-or-create returns the adopted
    // originals, so these observe live bus traffic).
    backpressured: Counter,
    dead_letter_depth: Gauge,
    publish_to_ack: Histogram,
    last_backpressured: u64,
    lag_gauges: BTreeMap<u32, Gauge>,
    shards: BTreeMap<u32, ShardState>,
    // Service-fleet hysteresis (bus signals only; no per-shard lag).
    desired_services: u32,
    service_breach_streak: u32,
    service_calm_streak: u32,
    service_last_up_ms: Option<u64>,
    service_last_down_ms: Option<u64>,
    // Data-center placement model.
    placement: Cluster,
    scheduler: GenPackScheduler,
    placed: BTreeSet<u64>,
    // Optional SLO burn-rate engine; when attached, a burning objective is
    // an extra breach signal and each new alert becomes a decision line.
    slo: Option<SloEngine>,
    slo_alerts_seen: usize,
    // Trace + controller metrics.
    decisions: Vec<String>,
    decisions_total: Counter,
    power_watts: Gauge,
    servers_on: Gauge,
}

impl std::fmt::Debug for ClusterController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterController")
            .field("policy", &self.policy)
            .field("decisions", &self.decisions.len())
            .finish_non_exhaustive()
    }
}

impl ClusterController {
    /// Builds a controller over `servers` simulated data-center nodes,
    /// sharing the platform `telemetry` (metric handles are get-or-create,
    /// so the bus's live counters are observed, not copies).
    ///
    /// # Errors
    ///
    /// [`crate::PolicyError`] when the policy fails
    /// [`ScalingPolicy::validate`].
    pub fn new(
        policy: ScalingPolicy,
        telemetry: &Arc<Telemetry>,
        servers: usize,
    ) -> Result<Self, crate::PolicyError> {
        policy.validate()?;
        let desired_services = policy.min_service_replicas;
        Ok(ClusterController {
            backpressured: telemetry.counter(METRIC_BACKPRESSURED),
            dead_letter_depth: telemetry.gauge(METRIC_DEAD_LETTER_DEPTH),
            publish_to_ack: telemetry.histogram(METRIC_PUBLISH_TO_ACK_MS),
            last_backpressured: 0,
            lag_gauges: BTreeMap::new(),
            shards: BTreeMap::new(),
            desired_services,
            service_breach_streak: 0,
            service_calm_streak: 0,
            service_last_up_ms: None,
            service_last_down_ms: None,
            placement: Cluster::new(servers, ServerSpec::typical()),
            scheduler: GenPackScheduler::new(),
            placed: BTreeSet::new(),
            slo: None,
            slo_alerts_seen: 0,
            decisions: Vec::new(),
            decisions_total: telemetry.counter("securecloud_cluster_decisions_total"),
            power_watts: telemetry.gauge("securecloud_cluster_power_watts"),
            servers_on: telemetry.gauge("securecloud_cluster_servers_on"),
            telemetry: Arc::clone(telemetry),
            injector: None,
            policy,
        })
    }

    /// Mirrors every decision line into the fault injector's deterministic
    /// trace, interleaving controller actions with fault firings.
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.injector = Some(injector);
    }

    /// Attaches an SLO burn-rate engine. It is ticked once per controller
    /// tick; while any objective burns, [`Signals::slo_breach`] is raised
    /// (scale-up pressure, calm veto) and every new alert is mirrored into
    /// the decision trace.
    pub fn set_slo_engine(&mut self, engine: SloEngine) {
        self.slo = Some(engine);
    }

    /// The attached SLO engine, if any.
    #[must_use]
    pub fn slo_engine(&self) -> Option<&SloEngine> {
        self.slo.as_ref()
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> &ScalingPolicy {
        &self.policy
    }

    /// Every decision taken so far, in order (`t=<ms> ...` lines). The
    /// byte-identical determinism artifact.
    #[must_use]
    pub fn decisions(&self) -> &[String] {
        &self.decisions
    }

    /// The decision trace as one newline-joined string.
    #[must_use]
    pub fn decision_trace(&self) -> String {
        self.decisions.join("\n")
    }

    /// Bus-facing service replicas the controller currently wants.
    #[must_use]
    pub fn desired_service_replicas(&self) -> u32 {
        self.desired_services
    }

    /// The data-center placement model (power, utilisation, parked nodes).
    #[must_use]
    pub fn placement(&self) -> &Cluster {
        &self.placement
    }

    fn decide(&mut self, now_ms: u64, line: &str) {
        let line = format!("t={now_ms} {line}");
        if let Some(injector) = &self.injector {
            injector.record(line.clone());
        }
        self.telemetry
            .event("cluster", "decision", vec![("line", line.clone())]);
        self.decisions_total.inc();
        self.decisions.push(line);
    }

    fn lag_of(&mut self, shard: ShardId, telemetry: &Arc<Telemetry>) -> u64 {
        let gauge = self.lag_gauges.entry(shard.0).or_insert_with(|| {
            let label = shard.to_string();
            telemetry.gauge_with("securecloud_replica_replication_lag", &[("shard", &label)])
        });
        u64::try_from(gauge.value()).unwrap_or(0)
    }

    /// One control step at virtual time `now_ms` over the replicated
    /// deployment `kv`: observe → repair → decide → place.
    pub fn tick(&mut self, now_ms: u64, kv: &mut ReplicatedKv) -> ControllerReport {
        let mut report = ControllerReport {
            now_ms,
            desired_service_replicas: self.desired_services,
            ..ControllerReport::default()
        };

        // Observe the platform-wide bus signals once per tick.
        let backpressured = self.backpressured.value();
        let backpressure_delta = backpressured.saturating_sub(self.last_backpressured);
        self.last_backpressured = backpressured;
        let dlq_depth = self.dead_letter_depth.value();
        let p99_ms = self.publish_to_ack.percentile_upper_bound(99);

        // Tick the SLO engine (when attached): a burning objective is an
        // extra breach signal, and each new alert enters the decision trace.
        let mut slo_lines = Vec::new();
        let slo_breach = if let Some(engine) = self.slo.as_mut() {
            let burning = engine.tick(now_ms);
            for alert in &engine.alerts()[self.slo_alerts_seen..] {
                slo_lines.push(format!(
                    "slo-alert {}: fast_burn={}.{:02}x slow_burn={}.{:02}x",
                    alert.slo,
                    alert.fast_burn_x100 / 100,
                    alert.fast_burn_x100 % 100,
                    alert.slow_burn_x100 / 100,
                    alert.slow_burn_x100 % 100
                ));
            }
            self.slo_alerts_seen = engine.alerts().len();
            burning
        } else {
            false
        };
        for line in &slo_lines {
            self.decide(now_ms, line);
        }

        let shard_count = kv.shard_map().shards();

        // Repair first: kill stalled replicas so the failover below
        // replaces them, then fail over every degraded group in one pass.
        for index in 0..shard_count {
            let shard = ShardId(index);
            let stalled = kv
                .group(shard)
                .map(|group| group.stalled_replicas())
                .unwrap_or_default();
            for replica in stalled {
                if kv.kill_replica(shard, replica.slot).is_some() {
                    report.stalled_killed += 1;
                    self.decide(
                        now_ms,
                        &format!("repair shard {shard}: killed stalled replica {replica}"),
                    );
                }
            }
        }
        let degraded =
            (0..shard_count).any(|index| kv.group(ShardId(index)).is_some_and(|g| g.is_degraded()));
        if degraded {
            match kv.fail_over() {
                Ok(replaced) if replaced > 0 => {
                    report.failovers += replaced;
                    self.decide(
                        now_ms,
                        &format!("repair: failover re-attested {replaced} replacement(s)"),
                    );
                }
                Ok(_) => {}
                Err(err) => {
                    self.decide(now_ms, &format!("repair: failover failed: {err}"));
                }
            }
        }

        // Per-shard scaling decisions.
        for index in 0..shard_count {
            self.tick_shard(
                now_ms,
                kv,
                ShardId(index),
                p99_ms,
                backpressure_delta,
                dlq_depth,
                slo_breach,
                &mut report,
            );
        }

        // Service-fleet sizing from the bus signals alone.
        self.tick_services(
            now_ms,
            p99_ms,
            backpressure_delta,
            dlq_depth,
            slo_breach,
            &mut report,
        );
        report.desired_service_replicas = self.desired_services;

        // Reconcile placement and let GenPack consolidate.
        self.reconcile_placement(now_ms, kv, shard_count, &mut report);

        report
    }

    /// Renders an observed p99 for a decision line; an absent measurement
    /// renders as `-`, never as a fake zero.
    fn fmt_p99(p99_ms: Option<u64>) -> String {
        p99_ms.map_or_else(|| "-".to_string(), |p99| format!("{p99}ms"))
    }

    /// Emits the causal chain behind a scale-up: the heaviest recently
    /// acked publish traces (exemplars) are the requests whose latency
    /// tripped the signal, so the decision event points straight at them.
    fn note_scale_up_cause(&self, target: &str) {
        let causes = self.telemetry.exemplars("publish_to_ack");
        if causes.is_empty() {
            return;
        }
        let traces = causes
            .iter()
            .map(|id| format!("{id:016x}"))
            .collect::<Vec<_>>()
            .join(",");
        self.telemetry.event(
            "cluster",
            "scale_up_cause",
            vec![("target", target.to_string()), ("traces", traces)],
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn tick_shard(
        &mut self,
        now_ms: u64,
        kv: &mut ReplicatedKv,
        shard: ShardId,
        p99_ms: Option<u64>,
        backpressure_delta: u64,
        dlq_depth: i64,
        slo_breach: bool,
        report: &mut ControllerReport,
    ) {
        let Some(group) = kv.group(shard) else {
            return;
        };
        if group.is_partitioned() {
            // A partitioned group refuses quorum traffic anyway; scaling
            // it would only churn membership while clients cannot see it.
            self.decide(
                now_ms,
                &format!("hold shard {shard}: partitioned, deferring scaling"),
            );
            return;
        }
        let observed = group.replication_factor();
        let telemetry = Arc::clone(&self.telemetry);
        let lag = self.lag_of(shard, &telemetry);
        let signals = Signals {
            lag,
            p99_ms,
            backpressure_delta,
            dlq_depth,
            slo_breach,
        };
        let policy = self.policy.clone();
        let state = self.shards.entry(shard.0).or_insert_with(|| {
            ShardState::new(observed.clamp(policy.min_replicas, policy.max_replicas))
        });

        if signals.breaches(&policy) {
            state.breach_streak += 1;
            state.calm_streak = 0;
        } else if signals.is_calm(&policy) {
            state.calm_streak += 1;
            state.breach_streak = 0;
        } else {
            state.breach_streak = 0;
            state.calm_streak = 0;
        }

        // Desired-state reconciliation first: if a previous scale-up was
        // undone by a fault (kill mid-scale-up leaves a vacancy that
        // failover repairs, but an errored expand leaves observed <
        // desired), converge toward desired without consuming a streak.
        if observed < state.desired {
            let want = state.desired;
            match kv.scale_up(shard) {
                Ok(replica) => {
                    report.scaled_up += 1;
                    self.decide(
                        now_ms,
                        &format!(
                            "reconcile shard {shard}: admitted {replica} toward desired n={want}"
                        ),
                    );
                }
                Err(err) => {
                    self.decide(
                        now_ms,
                        &format!("reconcile shard {shard} failed (desired n={want}): {err}"),
                    );
                }
            }
            return;
        }

        let up_ready = state
            .last_up_ms
            .is_none_or(|last| now_ms.saturating_sub(last) >= policy.up_cooldown_ms);
        let down_ready = state
            .last_down_ms
            .is_none_or(|last| now_ms.saturating_sub(last) >= policy.down_cooldown_ms);

        if state.breach_streak >= policy.up_streak
            && state.desired < policy.max_replicas
            && up_ready
        {
            state.desired += 1;
            let want = state.desired;
            state.breach_streak = 0;
            state.last_up_ms = Some(now_ms);
            match kv.scale_up(shard) {
                Ok(replica) => {
                    report.scaled_up += 1;
                    let p99 = Self::fmt_p99(p99_ms);
                    self.decide(
                        now_ms,
                        &format!(
                            "scale-up shard {shard} -> n={want} (lag={lag} p99={p99} \
                             bp={backpressure_delta} dlq={dlq_depth}): admitted {replica}"
                        ),
                    );
                    self.note_scale_up_cause(&format!("shard {shard}"));
                }
                Err(err) => {
                    if let Some(state) = self.shards.get_mut(&shard.0) {
                        state.desired -= 1;
                    }
                    self.decide(now_ms, &format!("scale-up shard {shard} failed: {err}"));
                }
            }
        } else if state.calm_streak >= policy.down_streak
            && state.desired > policy.min_replicas
            && down_ready
        {
            state.desired -= 1;
            let want = state.desired;
            state.calm_streak = 0;
            state.last_down_ms = Some(now_ms);
            match kv.scale_down(shard) {
                Ok(drained) => {
                    report.scaled_down += 1;
                    let who = drained.map_or_else(
                        || "a vacant slot".to_string(),
                        |replica| replica.to_string(),
                    );
                    self.decide(
                        now_ms,
                        &format!("scale-down shard {shard} -> n={want}: drained {who}"),
                    );
                }
                Err(err @ ReplicaError::DrainRefused { .. }) => {
                    report.drains_refused += 1;
                    if let Some(state) = self.shards.get_mut(&shard.0) {
                        state.desired += 1;
                    }
                    self.decide(now_ms, &format!("scale-down shard {shard} refused: {err}"));
                }
                Err(err) => {
                    if let Some(state) = self.shards.get_mut(&shard.0) {
                        state.desired += 1;
                    }
                    self.decide(now_ms, &format!("scale-down shard {shard} failed: {err}"));
                }
            }
        }
    }

    fn tick_services(
        &mut self,
        now_ms: u64,
        p99_ms: Option<u64>,
        backpressure_delta: u64,
        dlq_depth: i64,
        slo_breach: bool,
        _report: &mut ControllerReport,
    ) {
        let signals = Signals {
            lag: 0,
            p99_ms,
            backpressure_delta,
            dlq_depth,
            slo_breach,
        };
        if signals.breaches(&self.policy) {
            self.service_breach_streak += 1;
            self.service_calm_streak = 0;
        } else if signals.is_calm(&self.policy) {
            self.service_calm_streak += 1;
            self.service_breach_streak = 0;
        } else {
            self.service_breach_streak = 0;
            self.service_calm_streak = 0;
        }
        let up_ready = self
            .service_last_up_ms
            .is_none_or(|last| now_ms.saturating_sub(last) >= self.policy.up_cooldown_ms);
        let down_ready = self
            .service_last_down_ms
            .is_none_or(|last| now_ms.saturating_sub(last) >= self.policy.down_cooldown_ms);
        if self.service_breach_streak >= self.policy.up_streak
            && self.desired_services < self.policy.max_service_replicas
            && up_ready
        {
            self.desired_services += 1;
            self.service_breach_streak = 0;
            self.service_last_up_ms = Some(now_ms);
            let want = self.desired_services;
            let p99 = Self::fmt_p99(p99_ms);
            self.decide(
                now_ms,
                &format!(
                    "scale-up services -> {want} (p99={p99} \
                     bp={backpressure_delta} dlq={dlq_depth})"
                ),
            );
            self.note_scale_up_cause("services");
        } else if self.service_calm_streak >= self.policy.down_streak
            && self.desired_services > self.policy.min_service_replicas
            && down_ready
        {
            self.desired_services -= 1;
            self.service_calm_streak = 0;
            self.service_last_down_ms = Some(now_ms);
            let want = self.desired_services;
            self.decide(now_ms, &format!("scale-down services -> {want}"));
        }
    }

    /// Stable job id for a replica slot on the placement model.
    fn job_of(shard: u32, slot: u32) -> JobId {
        JobId((u64::from(shard) << 16) | u64::from(slot))
    }

    fn reconcile_placement(
        &mut self,
        now_ms: u64,
        kv: &ReplicatedKv,
        shard_count: u32,
        report: &mut ControllerReport,
    ) {
        let mut resident = BTreeSet::new();
        for index in 0..shard_count {
            if let Some(group) = kv.group(ShardId(index)) {
                for replica in group.live_replica_ids() {
                    resident.insert(Self::job_of(index, replica.slot));
                }
            }
        }
        // Departures: decommissioned/killed replicas free their slots.
        let departed: Vec<JobId> = self
            .placed
            .iter()
            .copied()
            .map(JobId)
            .filter(|job| !resident.contains(job))
            .collect();
        for job in departed {
            let _ = self.placement.remove(job);
            self.scheduler.on_departure(job);
            self.placed.remove(&job.0);
        }
        // Arrivals: place newly admitted replicas through GenPack.
        for &job in &resident {
            if self.placed.contains(&job.0) {
                continue;
            }
            match self
                .scheduler
                .place(&mut self.placement, job, REPLICA_DEMAND, now_ms)
            {
                Some(server) => {
                    self.placement.place(job, server, REPLICA_DEMAND);
                    self.placed.insert(job.0);
                    self.decide(
                        now_ms,
                        &format!(
                            "place job {}/{} on server {}",
                            job.0 >> 16,
                            job.0 & 0xffff,
                            server.0
                        ),
                    );
                }
                None => {
                    self.decide(
                        now_ms,
                        &format!(
                            "place job {}/{} parked: no capacity",
                            job.0 >> 16,
                            job.0 & 0xffff
                        ),
                    );
                }
            }
        }
        // Consolidation pass: promotions + migrations + server parking.
        let tick = self.scheduler.tick(&mut self.placement, now_ms);
        report.migrations = tick.migrations;
        report.parked = tick.parked;
        if tick.migrations > 0 || tick.parked > 0 {
            self.decide(
                now_ms,
                &format!(
                    "consolidate: {} migration(s), {} server(s) parked",
                    tick.migrations, tick.parked
                ),
            );
        }
        self.power_watts.set(self.placement.total_power() as i64);
        self.servers_on
            .set(i64::try_from(self.placement.servers_on()).unwrap_or(i64::MAX));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use securecloud_kvstore::CounterService;
    use securecloud_replica::{ReplicaConfig, ReplicationFactor, WriteQuorum};
    use securecloud_sgx::enclave::Platform;

    fn deploy(telemetry: &Arc<Telemetry>) -> ReplicatedKv {
        ReplicatedKv::deploy_with(
            ReplicaConfig {
                shards: 2,
                replication: ReplicationFactor(3),
                write_quorum: WriteQuorum(2),
                virtual_nodes: 8,
                ..ReplicaConfig::default()
            },
            &Platform::new(),
            &CounterService::new(),
            Some(telemetry),
            None,
        )
        .unwrap()
    }

    fn controller(telemetry: &Arc<Telemetry>) -> ClusterController {
        ClusterController::new(ScalingPolicy::default(), telemetry, 8).unwrap()
    }

    #[test]
    fn invalid_policy_is_rejected() {
        let telemetry = Arc::new(Telemetry::new());
        let err = ClusterController::new(
            ScalingPolicy {
                up_streak: 0,
                ..ScalingPolicy::default()
            },
            &telemetry,
            4,
        )
        .unwrap_err();
        assert!(err.to_string().contains("streak"));
    }

    #[test]
    fn quiet_cluster_takes_no_scaling_decisions() {
        let telemetry = Arc::new(Telemetry::new());
        let mut kv = deploy(&telemetry);
        let mut controller = controller(&telemetry);
        for step in 0..10u64 {
            let report = controller.tick(step * 1_000, &mut kv);
            assert_eq!(report.scaled_up, 0);
            assert_eq!(report.scaled_down, 0);
        }
        // Placement decisions exist (initial replicas placed), but no
        // scale-up/scale-down lines.
        assert!(controller.decisions().iter().all(|d| !d.contains("scale-")));
        assert_eq!(kv.stats().scale_ups, 0);
    }

    #[test]
    fn sustained_backpressure_scales_up_with_cooldown() {
        let telemetry = Arc::new(Telemetry::new());
        let mut kv = deploy(&telemetry);
        let mut controller = controller(&telemetry);
        let backpressured = telemetry.counter(METRIC_BACKPRESSURED);
        let mut admitted = 0;
        for step in 0..6u64 {
            // 20 backpressure errors per tick: breach every tick.
            backpressured.add(20);
            let report = controller.tick(step * 1_000, &mut kv);
            admitted += report.scaled_up;
        }
        assert!(admitted >= 1, "breach streak triggered a scale-up");
        let group = kv.group(ShardId(0)).unwrap();
        assert!(group.replication_factor() > 3);
        assert!(
            group.write_quorum() > group.replication_factor() / 2,
            "majority quorum maintained at the new size"
        );
        // Cooldown bounds the ramp: at most one scale-up per shard per
        // 2 s cooldown window within the 6 s run.
        assert!(admitted <= 6, "cooldown damped the ramp, got {admitted}");
        assert!(controller
            .decisions()
            .iter()
            .any(|d| d.contains("scale-up shard s0")));
    }

    #[test]
    fn calm_after_load_scales_back_down_and_never_below_min() {
        let telemetry = Arc::new(Telemetry::new());
        let mut kv = deploy(&telemetry);
        let mut controller = controller(&telemetry);
        let backpressured = telemetry.counter(METRIC_BACKPRESSURED);
        let mut now = 0;
        for _ in 0..6u64 {
            backpressured.add(20);
            let _ = controller.tick(now, &mut kv);
            now += 1_000;
        }
        let peak = kv.group(ShardId(0)).unwrap().replication_factor();
        assert!(peak > 3);
        // Long calm stretch: controller drains back to the floor.
        for _ in 0..40u64 {
            let _ = controller.tick(now, &mut kv);
            now += 1_000;
        }
        let settled = kv.group(ShardId(0)).unwrap().replication_factor();
        assert_eq!(settled, 3, "drained back to min_replicas");
        assert!(kv.stats().scale_downs >= 1);
        // Data still there is checked by the replica layer's own tests;
        // here we pin that the controller never drained below the floor.
        for state in controller.shards.values() {
            assert!(state.desired >= controller.policy.min_replicas);
        }
    }

    #[test]
    fn stalled_replica_is_killed_and_replaced_next_tick() {
        let telemetry = Arc::new(Telemetry::new());
        let mut kv = deploy(&telemetry);
        let mut controller = controller(&telemetry);
        let _ = controller.tick(0, &mut kv);
        kv.stall_replica(ShardId(0), 1).unwrap();
        let report = controller.tick(1_000, &mut kv);
        assert_eq!(report.stalled_killed, 1);
        assert_eq!(report.failovers, 1, "replacement admitted same tick");
        assert_eq!(kv.stats().replicas_stalled, 0);
        assert!(controller
            .decisions()
            .iter()
            .any(|d| d.contains("killed stalled replica s0/r1")));
    }

    #[test]
    fn partitioned_shard_defers_scaling() {
        let telemetry = Arc::new(Telemetry::new());
        let mut kv = deploy(&telemetry);
        let mut controller = controller(&telemetry);
        kv.partition_shard(ShardId(0), 10_000);
        let backpressured = telemetry.counter(METRIC_BACKPRESSURED);
        for step in 0..4u64 {
            backpressured.add(20);
            let _ = controller.tick(step * 1_000, &mut kv);
        }
        // Shard 0 held; shard 1 scaled on the same bus signals.
        assert_eq!(kv.group(ShardId(0)).unwrap().replication_factor(), 3);
        assert!(kv.group(ShardId(1)).unwrap().replication_factor() > 3);
        assert!(controller
            .decisions()
            .iter()
            .any(|d| d.contains("hold shard s0: partitioned")));
    }

    #[test]
    fn decision_trace_is_deterministic_for_equal_inputs() {
        let run = || {
            let telemetry = Arc::new(Telemetry::new());
            let mut kv = deploy(&telemetry);
            let mut controller = controller(&telemetry);
            let backpressured = telemetry.counter(METRIC_BACKPRESSURED);
            for step in 0..12u64 {
                if step % 3 == 0 {
                    backpressured.add(20);
                }
                if step == 5 {
                    kv.stall_replica(ShardId(1), 0);
                }
                let _ = controller.tick(step * 500, &mut kv);
            }
            controller.decision_trace()
        };
        let first = run();
        assert_eq!(first, run(), "same inputs, byte-identical trace");
        assert!(!first.is_empty());
    }

    #[test]
    fn placement_tracks_membership_and_powers_the_model() {
        let telemetry = Arc::new(Telemetry::new());
        let mut kv = deploy(&telemetry);
        let mut controller = controller(&telemetry);
        let _ = controller.tick(0, &mut kv);
        assert_eq!(controller.placement().jobs_placed(), 6, "2 shards x 3");
        assert!(controller.placement().total_power() > 0.0);
        // Scale up one shard: a new job lands on the model.
        kv.scale_up(ShardId(0)).unwrap();
        let _ = controller.tick(1_000, &mut kv);
        assert_eq!(controller.placement().jobs_placed(), 7);
        // Scale it back down: the job departs.
        kv.scale_down(ShardId(0)).unwrap();
        let _ = controller.tick(2_000, &mut kv);
        assert_eq!(controller.placement().jobs_placed(), 6);
    }
}
