//! Pins the on-host wire layout byte-for-byte: plaintext record encoding,
//! sealed segment blocks, sealed WAL records, and the sealed manifest.
//!
//! These blobs live on the untrusted host and must stay readable across
//! releases (a restarted enclave replays them). If any assertion here
//! fails, the format changed: either revert the change or bump the format
//! version in the `StoreKeys` HKDF salt *and* re-pin these constants with
//! an explicit migration note.

use securecloud_crypto::gcm::AesGcm;
use securecloud_crypto::wire::Wire;
use securecloud_storage::layout::{
    block_tag, open_block, open_manifest, open_wal_record, seal_block, seal_manifest,
    seal_wal_record, wal_tag, BlockMeta, Manifest, Record, SegmentMeta, WAL_GENESIS_TAG,
};
use securecloud_storage::StoreKeys;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn keys() -> StoreKeys {
    StoreKeys::new([0x42; 16])
}

fn sample_records() -> Vec<Record> {
    vec![
        Record::Put {
            key: b"meter/001".to_vec(),
            value: b"1337 W".to_vec(),
        },
        Record::Tombstone {
            key: b"meter/002".to_vec(),
        },
    ]
}

fn sample_manifest() -> Manifest {
    Manifest {
        version: 7,
        epoch: 3,
        wal_start_seq: 5,
        wal_anchor_tag: [0xAA; 16],
        segments: vec![SegmentMeta {
            id: 2,
            root: [0x5C; 32],
            records: 2,
            bytes: 96,
            blocks: vec![BlockMeta {
                first_key: b"meter/001".to_vec(),
                last_key: b"meter/002".to_vec(),
                records: 2,
            }],
        }],
    }
}

/// The plaintext record encoding: tag byte, then `u32`-LE length-prefixed
/// byte strings. This is what sits inside sealed blocks and WAL records.
#[test]
fn record_encoding_is_pinned() {
    let [put, tomb]: [Record; 2] = sample_records().try_into().unwrap();
    assert_eq!(
        hex(&put.to_wire()),
        concat!(
            "00",                 // tag 0 = Put
            "09000000",           // key length, u32 LE
            "6d657465722f303031", // "meter/001"
            "06000000",           // value length
            "313333372057",       // "1337 W"
        )
    );
    assert_eq!(
        hex(&tomb.to_wire()),
        concat!(
            "01",                 // tag 1 = Tombstone
            "09000000",           // key length
            "6d657465722f303032", // "meter/002"
        )
    );
}

/// A sealed segment block: AES-128-GCM over the record vector, nonce
/// derived from the block index, `(segment, index)` bound via AAD, tag
/// appended. Stored as `ct || tag` — the nonce is never written.
#[test]
fn sealed_block_is_pinned() {
    let cipher = AesGcm::new(&keys().segment_key(2));
    let sealed = seal_block(&cipher, 2, 0, &sample_records());
    assert_eq!(hex(&sealed), SEALED_BLOCK_HEX);
    // The trailing 16 bytes are the GCM tag — the integrity-tree leaf.
    assert_eq!(
        hex(&block_tag(&sealed).unwrap()),
        &SEALED_BLOCK_HEX[SEALED_BLOCK_HEX.len() - 32..]
    );
    assert_eq!(
        open_block(&cipher, 2, 0, &sealed).unwrap(),
        sample_records()
    );
}

/// A sealed WAL record: AES-128-GCM over one record, nonce derived from
/// the WAL sequence number, predecessor tag chained through the AAD.
#[test]
fn sealed_wal_records_are_pinned() {
    let cipher = AesGcm::new(&keys().wal_key());
    let records = sample_records();
    let s0 = seal_wal_record(&cipher, 0, &WAL_GENESIS_TAG, &records[0]);
    let t0 = wal_tag(&s0).unwrap();
    let s1 = seal_wal_record(&cipher, 1, &t0, &records[1]);
    assert_eq!(hex(&s0), SEALED_WAL_0_HEX);
    assert_eq!(hex(&s1), SEALED_WAL_1_HEX);
    assert_eq!(
        open_wal_record(&cipher, 0, &WAL_GENESIS_TAG, &s0).unwrap(),
        records[0]
    );
    assert_eq!(open_wal_record(&cipher, 1, &t0, &s1).unwrap(), records[1]);
}

/// The sealed manifest: `nonce || ct || tag`, nonce derived from the
/// commit epoch (the only sealed structure that stores its nonce).
#[test]
fn sealed_manifest_is_pinned() {
    let sealed = seal_manifest(&keys(), &sample_manifest());
    assert_eq!(hex(&sealed), SEALED_MANIFEST_HEX);
    assert_eq!(open_manifest(&keys(), &sealed).unwrap(), sample_manifest());
}

/// Key derivation is pinned transitively by the sealed blobs above, but a
/// direct check localises a regression to HKDF rather than GCM.
#[test]
fn derived_keys_are_pinned() {
    let k = keys();
    assert_eq!(hex(&k.segment_key(2)), SEGMENT_KEY_2_HEX);
    assert_eq!(hex(&k.wal_key()), WAL_KEY_HEX);
    assert_eq!(hex(&k.manifest_key()), MANIFEST_KEY_HEX);
    // Distinct domains: no derived key collides with another.
    assert_ne!(k.segment_key(2), k.segment_key(3));
    assert_ne!(k.wal_key(), k.manifest_key());
}

#[test]
#[ignore = "generator: run with --ignored --nocapture to re-pin constants"]
fn print_constants() {
    let cipher = AesGcm::new(&keys().segment_key(2));
    println!(
        "SEALED_BLOCK_HEX = {}",
        hex(&seal_block(&cipher, 2, 0, &sample_records()))
    );
    let wal = AesGcm::new(&keys().wal_key());
    let records = sample_records();
    let s0 = seal_wal_record(&wal, 0, &WAL_GENESIS_TAG, &records[0]);
    println!("SEALED_WAL_0_HEX = {}", hex(&s0));
    let t0 = wal_tag(&s0).unwrap();
    println!(
        "SEALED_WAL_1_HEX = {}",
        hex(&seal_wal_record(&wal, 1, &t0, &records[1]))
    );
    println!(
        "SEALED_MANIFEST_HEX = {}",
        hex(&seal_manifest(&keys(), &sample_manifest()))
    );
    let k = keys();
    println!("SEGMENT_KEY_2_HEX = {}", hex(&k.segment_key(2)));
    println!("WAL_KEY_HEX = {}", hex(&k.wal_key()));
    println!("MANIFEST_KEY_HEX = {}", hex(&k.manifest_key()));
}

const SEALED_BLOCK_HEX: &str = "b13298a9b187e893350bd12f8582d8596bd4fe4b4f5a85b722497c94f66b478ba60a67f0ef14550bef1985c997cad87f4329b768dfcefe88b61a";
const SEALED_WAL_0_HEX: &str =
    "9e55c10bd18baf7414c0277f5a208778b0cf5e1ce4e06e7b1ba8ac5905ee5b0736a7e6a6c685aa06";
const SEALED_WAL_1_HEX: &str = "5f1d24f5c11fc16ece80849f4c1ed4f63a50ac34fe80af4241abb8452736";
const SEALED_MANIFEST_HEX: &str = "53434203000000000000000374898986ef14c1c8c2e53227456d0a7867f034b266289031f8d671b28d84b91bb7d986e628b67da544b81f99b65dcf8769401cd5dc581cee9d679b049d55e1f5a31a309f9b7178a9eb332a248261a9ebeead9901007ac8f9c3147615ab30149aaa7a615b392f357dce063170c19a92fd59e976c7d9263cff3c9af2898c99ed7709f303a6f0c6634698e6ee82a1d683097ac4df764251";
const SEGMENT_KEY_2_HEX: &str = "4a4e3562c3879f1cd56feabaf6420ae5";
const WAL_KEY_HEX: &str = "80756328ab6a165ac1b8dc4b8a4c7ca3";
const MANIFEST_KEY_HEX: &str = "d6afbd575c8be8b5c256838242c7a15d";
