//! The simulated untrusted host block device.
//!
//! A [`HostDisk`] is plain host memory outside the enclave: everything in
//! it is sealed, and nothing in it is believed without verification. It is
//! `Clone` so tests and failover can model "the bytes that survive a
//! crash" by snapshotting it, and so an adversary (or fault injector) can
//! serve an *older* clone to exercise the rollback checks.

use securecloud_crypto::impl_wire_struct;
use std::collections::BTreeMap;

/// One sealed WAL record as the host stores it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedWalRecord {
    /// WAL sequence number (also the nonce sequence).
    pub seq: u64,
    /// `ct || tag` of the record, chained via AAD to its predecessor.
    pub sealed: Vec<u8>,
}

impl_wire_struct!(SealedWalRecord { seq, sealed });

/// One immutable segment: a run of sealed blocks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostSegment {
    /// Sealed blocks (`ct || tag` each), in block-index order.
    pub blocks: Vec<Vec<u8>>,
}

impl HostSegment {
    /// Total sealed bytes in the segment.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.blocks.iter().map(|b| b.len() as u64).sum()
    }
}

/// The untrusted host's view of one store: segments, the WAL tail, and
/// the sealed manifest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostDisk {
    /// Sealed segments by id.
    pub segments: BTreeMap<u64, HostSegment>,
    /// Sealed WAL records not yet folded into a segment, in seq order.
    pub wal: Vec<SealedWalRecord>,
    /// The sealed manifest blob (`None` before the first commit).
    pub manifest: Option<Vec<u8>>,
}

impl HostDisk {
    /// An empty disk.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total sealed bytes held on the host.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        let segments: u64 = self.segments.values().map(HostSegment::bytes).sum();
        let wal: u64 = self.wal.iter().map(|r| 8 + r.sealed.len() as u64).sum();
        let manifest = self.manifest.as_ref().map_or(0, |m| m.len() as u64);
        segments + wal + manifest
    }

    /// Bytes that must travel through a *trusted* channel to hand this
    /// store to a new replica: the manifest plus the WAL tail. Sealed
    /// segments are immutable and self-authenticating against the
    /// manifest's integrity roots, so a replacement can fetch them from
    /// any untrusted mirror.
    #[must_use]
    pub fn trusted_stream_bytes(&self) -> u64 {
        let wal: u64 = self.wal.iter().map(|r| 8 + r.sealed.len() as u64).sum();
        let manifest = self.manifest.as_ref().map_or(0, |m| m.len() as u64);
        wal + manifest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting() {
        let mut disk = HostDisk::new();
        assert_eq!(disk.bytes(), 0);
        disk.segments.insert(
            1,
            HostSegment {
                blocks: vec![vec![0u8; 100], vec![0u8; 50]],
            },
        );
        disk.wal.push(SealedWalRecord {
            seq: 0,
            sealed: vec![0u8; 30],
        });
        disk.manifest = Some(vec![0u8; 40]);
        assert_eq!(disk.bytes(), 150 + 38 + 40);
        assert_eq!(disk.trusted_stream_bytes(), 38 + 40);
    }
}
