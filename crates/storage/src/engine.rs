//! The log-structured storage engine.
//!
//! A [`StorageEngine`] owns one store's untrusted [`HostDisk`] plus the
//! small amount of trusted state needed to use it safely: the live
//! segment metadata (from the last sealed manifest), the WAL chain head,
//! and a block cache in enclave memory. All host transfers are charged
//! through [`MemorySim::charge_host_read`]/[`MemorySim::charge_host_write`]
//! and all enclave-side staging through `touch`, so the EPC-vs-host-IO
//! trade-off is visible in cycles and telemetry.
//!
//! # Crash safety
//!
//! Host writes happen in a fixed order (WAL append; segment blocks; then
//! the manifest as the single atomic commit point; then WAL truncation
//! and segment GC). A crash at any point leaves either the old manifest
//! (plus a longer WAL and possibly orphan segments, both handled at
//! [`StorageEngine::open`]) or the new manifest (plus stale WAL records
//! below `wal_start_seq`, which open skips). The test hook
//! [`StorageEngine::fail_after_host_writes`] fires a deterministic
//! [`StorageError::CrashInjected`] before the Nth host write to drive the
//! crash-recovery property tests.

use crate::disk::{HostDisk, HostSegment, SealedWalRecord};
use crate::layout::{
    block_tag, open_block, open_manifest, open_wal_record, seal_block, seal_manifest,
    seal_wal_record, wal_tag, BlockMeta, Manifest, Record, SegmentMeta, WAL_GENESIS_TAG,
};
use crate::tree::merkle_root;
use crate::{CounterService, StorageConfig, StorageError, StoreKeys};
use securecloud_crypto::gcm::{AesGcm, TAG_LEN};
use securecloud_sgx::mem::{MemorySim, Region};
use std::collections::{BTreeMap, BTreeSet};

/// Counters accumulated by a [`StorageEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Records appended to the WAL.
    pub wal_appends: u64,
    /// WAL records replayed at the last [`StorageEngine::open`].
    pub wal_replayed: u64,
    /// Memtable flushes committed.
    pub flushes: u64,
    /// Compactions committed.
    pub compactions: u64,
    /// Segments written (flush + compaction).
    pub segments_written: u64,
    /// Blocks sealed and written to the host.
    pub blocks_written: u64,
    /// Blocks paged in from the host.
    pub blocks_read: u64,
    /// Lookups served from the in-enclave block cache.
    pub cache_hits: u64,
    /// Segments quarantined after integrity failures.
    pub quarantined_segments: u64,
}

/// What [`StorageEngine::open`] recovered.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// The WAL tail, in append order — the memtable delta the owner must
    /// re-apply to reconstruct its in-EPC state.
    pub tail: Vec<Record>,
    /// Number of WAL records replayed (only the tail, never the world).
    pub wal_replayed: u64,
    /// Store version after replay, already checked against the trusted
    /// version floor.
    pub recovered_version: u64,
}

/// A consistent copy of the store for streaming to a new replica.
///
/// Only [`IncrementalSnapshot::trusted_bytes`] (manifest + WAL tail) must
/// cross a trusted channel; the sealed segments are self-authenticating
/// against the manifest's integrity roots and can come from any untrusted
/// mirror. Exporting advances the trusted version floor so an older
/// export can no longer be adopted.
#[derive(Debug, Clone)]
pub struct IncrementalSnapshot {
    /// Store version captured by the snapshot.
    pub version: u64,
    /// The host disk image (sealed segments + WAL tail + manifest).
    pub disk: HostDisk,
}

impl IncrementalSnapshot {
    /// Bytes that must travel through a trusted, ordered channel.
    #[must_use]
    pub fn trusted_bytes(&self) -> u64 {
        self.disk.trusted_stream_bytes()
    }

    /// Total sealed bytes including segments.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.disk.bytes()
    }
}

/// One live segment: manifest metadata plus the sealing cipher and, once
/// the integrity tree has been checked, the verified block tags.
#[derive(Debug)]
struct LiveSegment {
    meta: SegmentMeta,
    cipher: AesGcm,
    /// Block tags verified against `meta.root`; `None` until first use
    /// (or after the host bytes may have changed).
    tags: Option<Vec<[u8; TAG_LEN]>>,
}

/// A decrypted block held in enclave memory.
#[derive(Debug)]
struct CachedBlock {
    segment: u64,
    index: u32,
    /// Which slot of the cache region this block occupies (for `touch`).
    slot: usize,
    records: Vec<Record>,
}

/// The log-structured segment store under one `SecureKv`.
#[derive(Debug)]
pub struct StorageEngine {
    config: StorageConfig,
    keys: StoreKeys,
    wal_cipher: AesGcm,
    counters: CounterService,
    counter_base: String,
    disk: HostDisk,
    /// Live segments, oldest first (manifest order).
    segments: Vec<LiveSegment>,
    manifest_version: u64,
    manifest_epoch: u64,
    wal_start_seq: u64,
    wal_next_seq: u64,
    /// Chain tag of the last appended WAL record.
    wal_prev_tag: [u8; TAG_LEN],
    /// Chain anchor for `wal_start_seq` (tag of the last *folded* record).
    wal_anchor_tag: [u8; TAG_LEN],
    /// Decrypted-block cache, least recently used first.
    cache: Vec<CachedBlock>,
    free_slots: Vec<usize>,
    cache_region: Option<Region>,
    stats: StorageStats,
    /// Test hook: `Some(n)` makes the (n+1)-th host write fail with
    /// [`StorageError::CrashInjected`] before any bytes land.
    fail_after_host_writes: Option<u64>,
}

impl StorageEngine {
    /// Creates a fresh, empty store. For recovery from existing host
    /// bytes use [`StorageEngine::open`], which performs the rollback and
    /// integrity checks a fresh create skips.
    #[must_use]
    pub fn create(
        config: StorageConfig,
        keys: StoreKeys,
        counters: CounterService,
        counter_base: impl Into<String>,
    ) -> Self {
        let cap = config.cache_blocks.max(1);
        StorageEngine {
            wal_cipher: AesGcm::new(&keys.wal_key()),
            config,
            keys,
            counters,
            counter_base: counter_base.into(),
            disk: HostDisk::new(),
            segments: Vec::new(),
            manifest_version: 0,
            manifest_epoch: 0,
            wal_start_seq: 0,
            wal_next_seq: 0,
            wal_prev_tag: WAL_GENESIS_TAG,
            wal_anchor_tag: WAL_GENESIS_TAG,
            cache: Vec::new(),
            free_slots: (0..cap).rev().collect(),
            cache_region: None,
            stats: StorageStats::default(),
            fail_after_host_writes: None,
        }
    }

    /// Recovers a store from untrusted host bytes: opens the sealed
    /// manifest, discards orphan segments and stale WAL records from
    /// interrupted commits, replays (only) the WAL tail along its MAC
    /// chain, and checks the recovered version against the trusted floor.
    ///
    /// # Errors
    ///
    /// [`StorageError::Rollback`] if the host served older state than the
    /// trusted counter has seen; [`StorageError::Corrupt`] /
    /// [`StorageError::Crypto`] if the structure is malformed or fails
    /// authentication.
    pub fn open(
        mem: &mut MemorySim,
        config: StorageConfig,
        keys: StoreKeys,
        counters: CounterService,
        counter_base: impl Into<String>,
        mut disk: HostDisk,
    ) -> Result<(Self, ReplayReport), StorageError> {
        let counter_base = counter_base.into();
        let version_floor = counters.read(&format!("{counter_base}/storage-version"));
        let commit_floor = counters.read(&format!("{counter_base}/storage-commit"));

        let manifest = match &disk.manifest {
            None => Manifest {
                version: 0,
                epoch: 0,
                wal_start_seq: 0,
                wal_anchor_tag: WAL_GENESIS_TAG,
                segments: Vec::new(),
            },
            Some(sealed) => {
                mem.charge_host_read(sealed.len() as u64);
                let manifest = open_manifest(&keys, sealed)?;
                if manifest.epoch > commit_floor {
                    return Err(StorageError::Corrupt(format!(
                        "manifest epoch {} ahead of trusted commit counter {commit_floor}",
                        manifest.epoch
                    )));
                }
                manifest
            }
        };

        // Discard orphan segments from interrupted flushes/compactions.
        let live: BTreeSet<u64> = manifest.segments.iter().map(|s| s.id).collect();
        disk.segments.retain(|id, _| live.contains(id));

        let mut segments = Vec::with_capacity(manifest.segments.len());
        for meta in &manifest.segments {
            let host = disk.segments.get(&meta.id).ok_or_else(|| {
                StorageError::Corrupt(format!(
                    "manifest lists segment {} but host lacks it",
                    meta.id
                ))
            })?;
            if host.blocks.len() != meta.blocks.len() {
                return Err(StorageError::Corrupt(format!(
                    "segment {}: host has {} blocks, manifest {}",
                    meta.id,
                    host.blocks.len(),
                    meta.blocks.len()
                )));
            }
            segments.push(LiveSegment {
                cipher: AesGcm::new(&keys.segment_key(meta.id)),
                meta: meta.clone(),
                tags: None,
            });
        }

        // Replay the WAL tail along its MAC chain. Records below
        // `wal_start_seq` are leftovers of a commit that crashed before
        // truncation; skip them.
        let wal_cipher = AesGcm::new(&keys.wal_key());
        let mut tail = Vec::new();
        let mut prev_tag = manifest.wal_anchor_tag;
        let mut next_seq = manifest.wal_start_seq;
        for rec in &disk.wal {
            if rec.seq < manifest.wal_start_seq {
                continue;
            }
            if rec.seq != next_seq {
                return Err(StorageError::Corrupt(format!(
                    "WAL gap: expected seq {next_seq}, found {}",
                    rec.seq
                )));
            }
            mem.charge_host_read(8 + rec.sealed.len() as u64);
            mem.charge_ops(2 + rec.sealed.len() as u64 / 64);
            let record = open_wal_record(&wal_cipher, rec.seq, &prev_tag, &rec.sealed)?;
            prev_tag = wal_tag(&rec.sealed)?;
            tail.push(record);
            next_seq += 1;
        }
        disk.wal.retain(|r| r.seq >= manifest.wal_start_seq);

        let recovered_version = manifest.version + tail.len() as u64;
        if recovered_version < version_floor {
            return Err(StorageError::Rollback {
                recovered_version,
                counter_version: version_floor,
            });
        }
        // Re-advance counters that may lag the host after a crash between
        // a host write and the corresponding counter bump.
        counters.advance_to(
            &format!("{counter_base}/storage-version"),
            recovered_version,
        );

        let cap = config.cache_blocks.max(1);
        let wal_replayed = tail.len() as u64;
        let engine = StorageEngine {
            wal_cipher,
            config,
            keys,
            counters,
            counter_base,
            disk,
            segments,
            manifest_version: manifest.version,
            manifest_epoch: manifest.epoch,
            wal_start_seq: manifest.wal_start_seq,
            wal_next_seq: next_seq,
            wal_prev_tag: prev_tag,
            wal_anchor_tag: manifest.wal_anchor_tag,
            cache: Vec::new(),
            free_slots: (0..cap).rev().collect(),
            cache_region: None,
            stats: StorageStats {
                wal_replayed,
                ..StorageStats::default()
            },
            fail_after_host_writes: None,
        };
        Ok((
            engine,
            ReplayReport {
                tail,
                wal_replayed,
                recovered_version,
            },
        ))
    }

    /// Store version: mutations folded into segments plus the WAL tail.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.manifest_version + (self.wal_next_seq - self.wal_start_seq)
    }

    /// WAL records not yet folded into a segment.
    #[must_use]
    pub fn wal_pending(&self) -> u64 {
        self.wal_next_seq - self.wal_start_seq
    }

    /// Live segment count.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total sealed blocks across live segments.
    #[must_use]
    pub fn block_count(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| s.meta.blocks.len() as u64)
            .sum()
    }

    /// Engine counters.
    #[must_use]
    pub fn stats(&self) -> StorageStats {
        self.stats
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &StorageConfig {
        &self.config
    }

    /// The untrusted host disk (for persistence across a simulated
    /// restart: clone it, drop the engine, [`StorageEngine::open`]).
    #[must_use]
    pub fn disk(&self) -> &HostDisk {
        &self.disk
    }

    /// The trusted counter service backing rollback protection. A restart
    /// must reopen against the same service (or a replica of it) for the
    /// version and epoch floors to mean anything.
    #[must_use]
    pub fn counters(&self) -> &CounterService {
        &self.counters
    }

    /// Arms (or disarms) the crash hook: with `Some(n)`, the `n+1`-th
    /// subsequent host write fails with [`StorageError::CrashInjected`]
    /// before any bytes land. After a crash fires the engine must be
    /// discarded and reopened from a clone of the disk.
    pub fn fail_after_host_writes(&mut self, writes: Option<u64>) {
        self.fail_after_host_writes = writes;
    }

    fn version_counter(&self) -> String {
        format!("{}/storage-version", self.counter_base)
    }

    fn commit_counter(&self) -> String {
        format!("{}/storage-commit", self.counter_base)
    }

    fn segment_counter(&self) -> String {
        format!("{}/storage-segment", self.counter_base)
    }

    fn maybe_crash(&mut self) -> Result<(), StorageError> {
        if let Some(n) = &mut self.fail_after_host_writes {
            if *n == 0 {
                return Err(StorageError::CrashInjected);
            }
            *n -= 1;
        }
        Ok(())
    }

    /// Appends one mutation to the sealed WAL (the durability point of a
    /// put/delete) and advances the trusted version floor.
    ///
    /// # Errors
    ///
    /// [`StorageError::CrashInjected`] if the crash hook fires.
    pub fn append(&mut self, mem: &mut MemorySim, record: &Record) -> Result<(), StorageError> {
        let seq = self.wal_next_seq;
        let sealed = seal_wal_record(&self.wal_cipher, seq, &self.wal_prev_tag, record);
        let tag = wal_tag(&sealed)?;
        mem.charge_ops(2 + sealed.len() as u64 / 64);
        self.maybe_crash()?;
        mem.charge_host_write(8 + sealed.len() as u64);
        self.disk.wal.push(SealedWalRecord { seq, sealed });
        self.wal_next_seq = seq + 1;
        self.wal_prev_tag = tag;
        self.stats.wal_appends += 1;
        self.counters
            .advance_to(&self.version_counter(), self.version());
        Ok(())
    }

    /// Seals `records` (the drained memtable: sorted, unique keys, with
    /// tombstones) into a new segment, commits a manifest folding in the
    /// WAL, then compacts if the segment count crossed the threshold.
    ///
    /// # Errors
    ///
    /// [`StorageError::CrashInjected`] mid-commit (the engine must then
    /// be discarded), or an integrity error surfaced by a triggered
    /// compaction.
    ///
    /// # Panics
    ///
    /// Panics (debug only) if `records` is not sorted by unique key.
    pub fn flush(&mut self, mem: &mut MemorySim, records: &[Record]) -> Result<(), StorageError> {
        debug_assert!(
            records.windows(2).all(|w| w[0].key() < w[1].key()),
            "flush records must be sorted by unique key"
        );
        if records.is_empty() {
            return Ok(());
        }
        let new_segment = self.write_segment(mem, records)?;
        let mut segments: Vec<SegmentMeta> = self.segments.iter().map(|s| s.meta.clone()).collect();
        segments.push(new_segment.meta.clone());
        self.segments.push(new_segment);
        self.commit_manifest(
            mem,
            segments,
            self.version(),
            self.wal_next_seq,
            self.wal_prev_tag,
        )?;
        self.stats.flushes += 1;
        if self.segments.len() >= self.config.compact_at_segments.max(2) {
            self.compact(mem)?;
        }
        Ok(())
    }

    /// Deterministically merges every live segment into one, dropping
    /// shadowed records and tombstones. A segment that fails its
    /// integrity check during the merge is quarantined (its records are
    /// lost) rather than wedging the store.
    ///
    /// # Errors
    ///
    /// [`StorageError::CrashInjected`] mid-commit, or a non-integrity
    /// error reading the host.
    pub fn compact(&mut self, mem: &mut MemorySim) -> Result<(), StorageError> {
        if self.segments.len() < 2 {
            return Ok(());
        }
        let mut merged: BTreeMap<Vec<u8>, Record> = BTreeMap::new();
        for si in 0..self.segments.len() {
            match self.read_segment_records(mem, si) {
                Ok(records) => {
                    for record in records {
                        merged.insert(record.key().to_vec(), record);
                    }
                }
                Err(StorageError::Integrity { .. }) => {
                    self.stats.quarantined_segments += 1;
                }
                Err(e) => return Err(e),
            }
        }
        merged.retain(|_, r| matches!(r, Record::Put { .. }));
        let records: Vec<Record> = merged.into_values().collect();
        let mut segments = Vec::new();
        let mut metas = Vec::new();
        if !records.is_empty() {
            let segment = self.write_segment(mem, &records)?;
            metas.push(segment.meta.clone());
            segments.push(segment);
        }
        self.segments = segments;
        self.commit_manifest(
            mem,
            metas,
            self.manifest_version,
            self.wal_start_seq,
            self.wal_anchor_tag,
        )?;
        self.stats.compactions += 1;
        Ok(())
    }

    /// Seals `records` into a fresh segment on the host. The segment id
    /// comes from a trusted counter and is never reused, so per-block
    /// nonces stay unique even across crash-discarded attempts.
    fn write_segment(
        &mut self,
        mem: &mut MemorySim,
        records: &[Record],
    ) -> Result<LiveSegment, StorageError> {
        let seg_id = self.counters.increment(&self.segment_counter());
        let cipher = AesGcm::new(&self.keys.segment_key(seg_id));
        self.disk.segments.insert(seg_id, HostSegment::default());
        let mut tags = Vec::new();
        let mut blocks = Vec::new();
        let mut bytes = 0u64;
        for (index, chunk) in pack_blocks(records, self.config.block_bytes)
            .into_iter()
            .enumerate()
        {
            let chunk = &records[chunk.0..chunk.1];
            let sealed = seal_block(&cipher, seg_id, index as u32, chunk);
            mem.charge_ops(2 + sealed.len() as u64 / 64);
            self.maybe_crash()?;
            mem.charge_host_write(sealed.len() as u64);
            bytes += sealed.len() as u64;
            tags.push(block_tag(&sealed)?);
            blocks.push(BlockMeta {
                first_key: chunk[0].key().to_vec(),
                last_key: chunk[chunk.len() - 1].key().to_vec(),
                records: chunk.len() as u32,
            });
            self.disk
                .segments
                .get_mut(&seg_id)
                .expect("segment entry created above")
                .blocks
                .push(sealed);
            self.stats.blocks_written += 1;
        }
        self.stats.segments_written += 1;
        Ok(LiveSegment {
            meta: SegmentMeta {
                id: seg_id,
                root: merkle_root(&tags),
                records: records.len() as u64,
                bytes,
                blocks,
            },
            cipher,
            tags: Some(tags),
        })
    }

    /// Seals and writes a manifest — the atomic commit point — then
    /// truncates folded WAL records and GCs unreferenced host segments.
    /// `self.segments` must already reflect `segments`.
    fn commit_manifest(
        &mut self,
        mem: &mut MemorySim,
        segments: Vec<SegmentMeta>,
        version: u64,
        wal_start_seq: u64,
        wal_anchor_tag: [u8; TAG_LEN],
    ) -> Result<(), StorageError> {
        let epoch = self.counters.increment(&self.commit_counter());
        let manifest = Manifest {
            version,
            epoch,
            wal_start_seq,
            wal_anchor_tag,
            segments,
        };
        let sealed = seal_manifest(&self.keys, &manifest);
        mem.charge_ops(2 + sealed.len() as u64 / 64);
        self.maybe_crash()?;
        mem.charge_host_write(sealed.len() as u64);
        self.disk.manifest = Some(sealed);
        self.manifest_version = version;
        self.manifest_epoch = epoch;
        self.wal_start_seq = wal_start_seq;
        self.wal_anchor_tag = wal_anchor_tag;
        self.counters
            .advance_to(&self.version_counter(), self.version());
        // Post-commit cleanup; a crash here only leaves garbage that the
        // next open discards.
        let live: BTreeSet<u64> = manifest.segments.iter().map(|s| s.id).collect();
        self.maybe_crash()?;
        mem.charge_host_write(8);
        self.disk.wal.retain(|r| r.seq >= wal_start_seq);
        self.disk.segments.retain(|id, _| live.contains(id));
        self.purge_cache(|c| live.contains(&c.segment));
        Ok(())
    }

    /// Drops cache entries failing `keep`, returning their slots.
    fn purge_cache(&mut self, keep: impl Fn(&CachedBlock) -> bool) {
        let mut kept = Vec::with_capacity(self.cache.len());
        for block in self.cache.drain(..) {
            if keep(&block) {
                kept.push(block);
            } else {
                self.free_slots.push(block.slot);
            }
        }
        self.cache = kept;
    }

    /// Looks up `key` in the sealed segments, newest first. Returns
    /// `None` if no segment holds the key, `Some(None)` for a tombstone,
    /// and `Some(Some(value))` for a live record (borrowed from the
    /// in-enclave block cache).
    ///
    /// # Errors
    ///
    /// [`StorageError::Integrity`] if a required block fails
    /// verification; [`StorageError::Corrupt`] if the host lost it.
    pub fn lookup_ref(
        &mut self,
        mem: &mut MemorySim,
        key: &[u8],
    ) -> Result<Option<Option<&[u8]>>, StorageError> {
        let Some((cache_pos, record_pos)) = self.locate(mem, key)? else {
            return Ok(None);
        };
        match &self.cache[cache_pos].records[record_pos] {
            Record::Put { value, .. } => Ok(Some(Some(value.as_slice()))),
            Record::Tombstone { .. } => Ok(Some(None)),
        }
    }

    /// Owned-value variant of [`StorageEngine::lookup_ref`].
    ///
    /// # Errors
    ///
    /// As [`StorageEngine::lookup_ref`].
    pub fn lookup(
        &mut self,
        mem: &mut MemorySim,
        key: &[u8],
    ) -> Result<Option<Option<Vec<u8>>>, StorageError> {
        Ok(self.lookup_ref(mem, key)?.map(|v| v.map(<[u8]>::to_vec)))
    }

    /// Finds `key`'s newest record as (cache position, record position).
    fn locate(
        &mut self,
        mem: &mut MemorySim,
        key: &[u8],
    ) -> Result<Option<(usize, usize)>, StorageError> {
        for si in (0..self.segments.len()).rev() {
            let Some(bi) = block_for_key(&self.segments[si].meta, key) else {
                continue;
            };
            let cache_pos = self.ensure_cached(mem, si, bi)?;
            let records = &self.cache[cache_pos].records;
            if let Ok(ri) = records.binary_search_by(|r| r.key().cmp(key)) {
                return Ok(Some((cache_pos, ri)));
            }
        }
        Ok(None)
    }

    /// Merges segment records in `[lo, hi)` (unbounded above when `hi` is
    /// `None`) into `out`, newest record winning; tombstones surface as
    /// `None` values so the caller can mask deleted keys.
    ///
    /// # Errors
    ///
    /// As [`StorageEngine::lookup_ref`], for any block in range.
    pub fn scan_into(
        &mut self,
        mem: &mut MemorySim,
        lo: &[u8],
        hi: Option<&[u8]>,
        out: &mut BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    ) -> Result<(), StorageError> {
        for si in 0..self.segments.len() {
            let candidates: Vec<usize> = self.segments[si]
                .meta
                .blocks
                .iter()
                .enumerate()
                .filter(|(_, b)| {
                    b.last_key.as_slice() >= lo && hi.is_none_or(|h| b.first_key.as_slice() < h)
                })
                .map(|(i, _)| i)
                .collect();
            for bi in candidates {
                let cache_pos = self.ensure_cached(mem, si, bi)?;
                for record in &self.cache[cache_pos].records {
                    let key = record.key();
                    if key >= lo && hi.is_none_or(|h| key < h) {
                        out.insert(key.to_vec(), record.value().map(<[u8]>::to_vec));
                    }
                }
            }
        }
        Ok(())
    }

    /// Verifies segment `si`'s integrity tree against the host's current
    /// block tags, caching the verified tag list.
    fn ensure_verified(&mut self, mem: &mut MemorySim, si: usize) -> Result<(), StorageError> {
        if self.segments[si].tags.is_some() {
            return Ok(());
        }
        let seg_id = self.segments[si].meta.id;
        let expected_root = self.segments[si].meta.root;
        let expected_blocks = self.segments[si].meta.blocks.len();
        let host = self
            .disk
            .segments
            .get(&seg_id)
            .ok_or_else(|| StorageError::Corrupt(format!("host lost segment {seg_id}")))?;
        if host.blocks.len() != expected_blocks {
            return Err(StorageError::Corrupt(format!(
                "segment {seg_id}: host has {} blocks, manifest {expected_blocks}",
                host.blocks.len()
            )));
        }
        // One pass over 16 bytes per block, not the blocks themselves.
        mem.charge_host_read((TAG_LEN * host.blocks.len()) as u64);
        let tags = host
            .blocks
            .iter()
            .map(|b| block_tag(b))
            .collect::<Result<Vec<_>, _>>()?;
        mem.charge_ops(1 + tags.len() as u64);
        if merkle_root(&tags) != expected_root {
            return Err(StorageError::Integrity {
                segment: seg_id,
                block: None,
            });
        }
        self.segments[si].tags = Some(tags);
        Ok(())
    }

    /// Ensures block `bi` of segment `si` is decrypted in the cache,
    /// paging it in (with verification) on a miss. Returns its position
    /// in `self.cache`.
    fn ensure_cached(
        &mut self,
        mem: &mut MemorySim,
        si: usize,
        bi: usize,
    ) -> Result<usize, StorageError> {
        let seg_id = self.segments[si].meta.id;
        if let Some(pos) = self
            .cache
            .iter()
            .position(|c| c.segment == seg_id && c.index == bi as u32)
        {
            // Move to most-recently-used; charge the staging touch.
            let block = self.cache.remove(pos);
            let slot = block.slot;
            self.cache.push(block);
            self.stats.cache_hits += 1;
            mem.charge_ops(1);
            self.touch_slot(mem, slot);
            return Ok(self.cache.len() - 1);
        }
        self.ensure_verified(mem, si)?;
        let sealed = self
            .disk
            .segments
            .get(&seg_id)
            .and_then(|s| s.blocks.get(bi))
            .ok_or_else(|| StorageError::Corrupt(format!("host lost segment {seg_id} block {bi}")))?
            .clone();
        mem.charge_host_read(sealed.len() as u64);
        let verified = self.segments[si].tags.as_ref().expect("verified above");
        if block_tag(&sealed)? != verified[bi] {
            return Err(StorageError::Integrity {
                segment: seg_id,
                block: Some(bi as u32),
            });
        }
        mem.charge_ops(2 + sealed.len() as u64 / 64);
        let records = open_block(&self.segments[si].cipher, seg_id, bi as u32, &sealed)?;
        let cap = self.config.cache_blocks.max(1);
        if self.cache.len() >= cap {
            let evicted = self.cache.remove(0);
            self.free_slots.push(evicted.slot);
        }
        let slot = self.free_slots.pop().expect("slot freed or available");
        self.touch_slot(mem, slot);
        self.cache.push(CachedBlock {
            segment: seg_id,
            index: bi as u32,
            slot,
            records,
        });
        self.stats.blocks_read += 1;
        Ok(self.cache.len() - 1)
    }

    /// Charges the enclave-memory cost of staging a block in cache slot
    /// `slot` (the cache competes with the memtable for EPC).
    fn touch_slot(&mut self, mem: &mut MemorySim, slot: usize) {
        let cap = self.config.cache_blocks.max(1);
        let region = match self.cache_region {
            Some(region) => region,
            None => {
                let region = mem.alloc((cap * self.config.block_bytes) as u64);
                self.cache_region = Some(region);
                region
            }
        };
        mem.touch_region(
            region,
            (slot * self.config.block_bytes) as u64,
            self.config.block_bytes,
        );
    }

    /// Reads and authenticates every record of segment `si` (used by
    /// compaction and scrubbing; bypasses the cache).
    fn read_segment_records(
        &mut self,
        mem: &mut MemorySim,
        si: usize,
    ) -> Result<Vec<Record>, StorageError> {
        self.ensure_verified(mem, si)?;
        let seg_id = self.segments[si].meta.id;
        let nblocks = self.segments[si].meta.blocks.len();
        let mut out = Vec::new();
        for bi in 0..nblocks {
            let sealed = self
                .disk
                .segments
                .get(&seg_id)
                .and_then(|s| s.blocks.get(bi))
                .ok_or_else(|| {
                    StorageError::Corrupt(format!("host lost segment {seg_id} block {bi}"))
                })?
                .clone();
            mem.charge_host_read(sealed.len() as u64);
            let verified = self.segments[si].tags.as_ref().expect("verified above");
            if block_tag(&sealed)? != verified[bi] {
                return Err(StorageError::Integrity {
                    segment: seg_id,
                    block: Some(bi as u32),
                });
            }
            mem.charge_ops(2 + sealed.len() as u64 / 64);
            out.extend(open_block(
                &self.segments[si].cipher,
                seg_id,
                bi as u32,
                &sealed,
            )?);
        }
        Ok(out)
    }

    /// Re-verifies every live segment against the host's *current* bytes
    /// (integrity tree plus full per-block authentication), quarantines
    /// any that fail, and commits a manifest without them. Returns the
    /// quarantined segment ids — their records are lost locally and must
    /// be recovered from a replica.
    ///
    /// # Errors
    ///
    /// [`StorageError::CrashInjected`] mid-commit, or a non-integrity
    /// host error.
    pub fn scrub(&mut self, mem: &mut MemorySim) -> Result<Vec<u64>, StorageError> {
        let mut quarantined = Vec::new();
        for si in 0..self.segments.len() {
            self.segments[si].tags = None;
            match self.read_segment_records(mem, si) {
                Ok(_) => {}
                Err(StorageError::Integrity { segment, .. }) => quarantined.push(segment),
                Err(e) => return Err(e),
            }
        }
        if quarantined.is_empty() {
            return Ok(quarantined);
        }
        self.stats.quarantined_segments += quarantined.len() as u64;
        self.segments.retain(|s| !quarantined.contains(&s.meta.id));
        let metas: Vec<SegmentMeta> = self.segments.iter().map(|s| s.meta.clone()).collect();
        self.commit_manifest(
            mem,
            metas,
            self.manifest_version,
            self.wal_start_seq,
            self.wal_anchor_tag,
        )?;
        Ok(quarantined)
    }

    /// Deterministically flips one bit of one sealed block on the host
    /// (fault injection: `pick` selects block and bit). Returns the
    /// `(segment, block)` hit, or `None` if no blocks exist. The damage
    /// is to *untrusted* bytes only; the next verified access or
    /// [`StorageEngine::scrub`] detects it.
    pub fn corrupt_block(&mut self, pick: u64) -> Option<(u64, u32)> {
        let total = self.block_count();
        if total == 0 {
            return None;
        }
        let mut idx = pick % total;
        let mut target = None;
        for (si, seg) in self.segments.iter().enumerate() {
            let n = seg.meta.blocks.len() as u64;
            if idx < n {
                target = Some((si, seg.meta.id, idx as u32));
                break;
            }
            idx -= n;
        }
        let (si, seg_id, bi) = target?;
        let block = self
            .disk
            .segments
            .get_mut(&seg_id)?
            .blocks
            .get_mut(bi as usize)?;
        let pos = (pick as usize) % block.len();
        block[pos] ^= 1 << (pick % 8);
        // Invalidate trusted copies of the now-stale host bytes so the
        // corruption is observable.
        self.segments[si].tags = None;
        self.purge_cache(|c| c.segment != seg_id);
        Some((seg_id, bi))
    }

    /// Captures a consistent copy of the store for streaming to a new
    /// replica and advances the trusted version floor to fence out any
    /// older export.
    #[must_use]
    pub fn export(&self) -> IncrementalSnapshot {
        self.counters
            .advance_to(&self.version_counter(), self.version());
        IncrementalSnapshot {
            version: self.version(),
            disk: self.disk.clone(),
        }
    }
}

/// Greedily packs sorted records into `(start, end)` runs whose encoded
/// size fits `block_bytes` (always at least one record per block).
fn pack_blocks(records: &[Record], block_bytes: usize) -> Vec<(usize, usize)> {
    let mut chunks = Vec::new();
    let mut start = 0;
    let mut used = 0usize;
    for (i, record) in records.iter().enumerate() {
        let len = record.encoded_len();
        if i > start && used + len > block_bytes {
            chunks.push((start, i));
            start = i;
            used = 0;
        }
        used += len;
    }
    if start < records.len() {
        chunks.push((start, records.len()));
    }
    chunks
}

/// Binary-searches a segment's block index for the block whose key range
/// could contain `key`.
fn block_for_key(meta: &SegmentMeta, key: &[u8]) -> Option<usize> {
    let idx = meta.blocks.partition_point(|b| b.last_key.as_slice() < key);
    (idx < meta.blocks.len() && meta.blocks[idx].first_key.as_slice() <= key).then_some(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use securecloud_sgx::costs::{CostModel, MemoryGeometry};

    fn mem() -> MemorySim {
        MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::sgx_v1())
    }

    fn engine(counters: &CounterService, base: &str) -> StorageEngine {
        StorageEngine::create(
            StorageConfig {
                block_bytes: 256,
                flush_bytes: 1 << 10,
                cache_blocks: 2,
                compact_at_segments: 4,
            },
            StoreKeys::new([1u8; 16]),
            counters.clone(),
            base,
        )
    }

    fn put(i: u32) -> Record {
        Record::Put {
            key: format!("key{i:04}").into_bytes(),
            value: vec![i as u8; 40],
        }
    }

    fn sorted_puts(range: std::ops::Range<u32>) -> Vec<Record> {
        range.map(put).collect()
    }

    #[test]
    fn flush_then_lookup_pages_blocks_in() {
        let counters = CounterService::new();
        let mut e = engine(&counters, "t1");
        let mut m = mem();
        for i in 0..50 {
            e.append(&mut m, &put(i)).unwrap();
        }
        e.flush(&mut m, &sorted_puts(0..50)).unwrap();
        assert_eq!(e.version(), 50);
        assert_eq!(e.wal_pending(), 0);
        assert_eq!(e.segment_count(), 1);
        assert!(e.block_count() > 1, "multiple blocks at 256 B blocks");
        let host_reads_before = m.stats().host_reads;
        assert_eq!(
            e.lookup(&mut m, b"key0007").unwrap(),
            Some(Some(vec![7u8; 40]))
        );
        assert!(m.stats().host_reads > host_reads_before, "paged from host");
        assert_eq!(e.lookup(&mut m, b"nope").unwrap(), None);
        // Cache hit on re-read.
        let reads = e.stats().blocks_read;
        assert_eq!(
            e.lookup(&mut m, b"key0007").unwrap(),
            Some(Some(vec![7u8; 40]))
        );
        assert_eq!(e.stats().blocks_read, reads);
        assert!(e.stats().cache_hits >= 1);
    }

    #[test]
    fn newest_segment_wins_and_tombstones_shadow() {
        let counters = CounterService::new();
        let mut e = engine(&counters, "t2");
        let mut m = mem();
        e.flush(&mut m, &sorted_puts(0..10)).unwrap();
        let newer = vec![
            Record::Put {
                key: b"key0003".to_vec(),
                value: b"new".to_vec(),
            },
            Record::Tombstone {
                key: b"key0004".to_vec(),
            },
        ];
        e.flush(&mut m, &newer).unwrap();
        assert_eq!(
            e.lookup(&mut m, b"key0003").unwrap(),
            Some(Some(b"new".to_vec()))
        );
        assert_eq!(e.lookup(&mut m, b"key0004").unwrap(), Some(None));
        assert_eq!(
            e.lookup(&mut m, b"key0005").unwrap(),
            Some(Some(vec![5u8; 40]))
        );
    }

    #[test]
    fn compaction_merges_and_drops_tombstones() {
        let counters = CounterService::new();
        let mut e = engine(&counters, "t3");
        let mut m = mem();
        e.flush(&mut m, &sorted_puts(0..10)).unwrap();
        e.flush(
            &mut m,
            &[Record::Tombstone {
                key: b"key0001".to_vec(),
            }],
        )
        .unwrap();
        e.compact(&mut m).unwrap();
        assert_eq!(e.segment_count(), 1);
        // The tombstone is gone entirely, not just shadowing.
        assert_eq!(e.lookup(&mut m, b"key0001").unwrap(), None);
        assert_eq!(
            e.lookup(&mut m, b"key0002").unwrap(),
            Some(Some(vec![2u8; 40]))
        );
        assert_eq!(e.stats().compactions, 1);
        // Old segments were GCed from the host.
        assert_eq!(e.disk().segments.len(), 1);
    }

    #[test]
    fn auto_compaction_bounds_segment_count() {
        let counters = CounterService::new();
        let mut e = engine(&counters, "t4");
        let mut m = mem();
        for round in 0..10u32 {
            let batch = sorted_puts(round * 5..round * 5 + 5);
            for r in &batch {
                e.append(&mut m, r).unwrap();
            }
            e.flush(&mut m, &batch).unwrap();
        }
        assert!(
            e.segment_count() < 4,
            "auto-compaction kept segments bounded"
        );
        assert!(e.stats().compactions >= 1);
        assert_eq!(e.version(), 50);
        for i in [0u32, 17, 49] {
            assert_eq!(
                e.lookup(&mut m, format!("key{i:04}").as_bytes()).unwrap(),
                Some(Some(vec![i as u8; 40]))
            );
        }
    }

    #[test]
    fn reopen_replays_only_wal_tail() {
        let counters = CounterService::new();
        let mut e = engine(&counters, "t5");
        let mut m = mem();
        for i in 0..30 {
            e.append(&mut m, &put(i)).unwrap();
        }
        e.flush(&mut m, &sorted_puts(0..30)).unwrap();
        for i in 30..33 {
            e.append(&mut m, &put(i)).unwrap();
        }
        let disk = e.disk().clone();
        drop(e);
        let mut m2 = mem();
        let (mut e2, report) = StorageEngine::open(
            &mut m2,
            StorageConfig {
                block_bytes: 256,
                flush_bytes: 1 << 10,
                cache_blocks: 2,
                compact_at_segments: 4,
            },
            StoreKeys::new([1u8; 16]),
            counters.clone(),
            "t5",
            disk,
        )
        .unwrap();
        assert_eq!(report.wal_replayed, 3, "only the tail, not all 33");
        assert_eq!(report.recovered_version, 33);
        assert_eq!(report.tail.len(), 3);
        assert_eq!(report.tail[0], put(30));
        assert_eq!(
            e2.lookup(&mut m2, b"key0012").unwrap(),
            Some(Some(vec![12u8; 40]))
        );
    }

    #[test]
    fn stale_disk_is_rejected_as_rollback() {
        let counters = CounterService::new();
        let mut e = engine(&counters, "t6");
        let mut m = mem();
        for i in 0..10 {
            e.append(&mut m, &put(i)).unwrap();
        }
        e.flush(&mut m, &sorted_puts(0..10)).unwrap();
        let stale = e.disk().clone(); // version 10
        for i in 10..15 {
            e.append(&mut m, &put(i)).unwrap();
        }
        drop(e); // version floor is now 15
        let err = StorageEngine::open(
            &mut mem(),
            StorageConfig::default(),
            StoreKeys::new([1u8; 16]),
            counters.clone(),
            "t6",
            stale,
        )
        .unwrap_err();
        assert_eq!(
            err,
            StorageError::Rollback {
                recovered_version: 10,
                counter_version: 15
            }
        );
        // An empty disk (host "lost" everything) is also a rollback.
        let err = StorageEngine::open(
            &mut mem(),
            StorageConfig::default(),
            StoreKeys::new([1u8; 16]),
            counters.clone(),
            "t6",
            HostDisk::new(),
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::Rollback { .. }));
    }

    #[test]
    fn corrupt_block_is_detected_and_quarantined() {
        let counters = CounterService::new();
        let mut e = engine(&counters, "t7");
        let mut m = mem();
        e.flush(&mut m, &sorted_puts(0..40)).unwrap();
        let blocks = e.block_count();
        let (seg, _block) = e.corrupt_block(12345).unwrap();
        let quarantined = e.scrub(&mut m).unwrap();
        assert_eq!(quarantined, vec![seg]);
        assert_eq!(e.segment_count(), 0);
        assert_eq!(e.stats().quarantined_segments, 1);
        assert!(blocks > 0);
        // The store still works after quarantine (data lost locally).
        assert_eq!(e.lookup(&mut m, b"key0001").unwrap(), None);
        e.flush(&mut m, &sorted_puts(0..5)).unwrap();
        assert_eq!(
            e.lookup(&mut m, b"key0001").unwrap(),
            Some(Some(vec![1u8; 40]))
        );
    }

    #[test]
    fn lookup_detects_corruption_without_scrub() {
        let counters = CounterService::new();
        let mut e = engine(&counters, "t8");
        let mut m = mem();
        e.flush(&mut m, &sorted_puts(0..40)).unwrap();
        e.corrupt_block(7).unwrap();
        // Some key in the corrupted segment must fail with Integrity.
        let mut saw_integrity = false;
        for i in 0..40 {
            match e.lookup(&mut m, format!("key{i:04}").as_bytes()) {
                Ok(_) => {}
                Err(StorageError::Integrity { .. }) => {
                    saw_integrity = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(saw_integrity);
    }

    #[test]
    fn scan_merges_segments_newest_wins() {
        let counters = CounterService::new();
        let mut e = engine(&counters, "t9");
        let mut m = mem();
        e.flush(&mut m, &sorted_puts(0..10)).unwrap();
        e.flush(
            &mut m,
            &[
                Record::Put {
                    key: b"key0002".to_vec(),
                    value: b"v2".to_vec(),
                },
                Record::Tombstone {
                    key: b"key0003".to_vec(),
                },
            ],
        )
        .unwrap();
        let mut out = BTreeMap::new();
        e.scan_into(&mut m, b"key0001", Some(b"key0005"), &mut out)
            .unwrap();
        assert_eq!(out.len(), 4); // key0001..key0004
        assert_eq!(out[&b"key0002".to_vec()], Some(b"v2".to_vec()));
        assert_eq!(out[&b"key0003".to_vec()], None, "tombstone surfaces");
        assert_eq!(out[&b"key0001".to_vec()], Some(vec![1u8; 40]));
    }

    #[test]
    fn export_fences_older_snapshots() {
        let counters = CounterService::new();
        let mut e = engine(&counters, "t10");
        let mut m = mem();
        for i in 0..8 {
            e.append(&mut m, &put(i)).unwrap();
        }
        e.flush(&mut m, &sorted_puts(0..8)).unwrap();
        let old = e.export();
        for i in 8..12 {
            e.append(&mut m, &put(i)).unwrap();
        }
        let new = e.export();
        assert!(new.version > old.version);
        assert!(new.trusted_bytes() < new.total_bytes());
        // The old export is now below the floor.
        let err = StorageEngine::open(
            &mut mem(),
            StorageConfig::default(),
            StoreKeys::new([1u8; 16]),
            counters.clone(),
            "t10",
            old.disk,
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::Rollback { .. }));
        // The fresh export adopts cleanly.
        let (e2, report) = StorageEngine::open(
            &mut mem(),
            StorageConfig::default(),
            StoreKeys::new([1u8; 16]),
            counters.clone(),
            "t10",
            new.disk,
        )
        .unwrap();
        assert_eq!(report.recovered_version, 12);
        assert_eq!(e2.version(), 12);
    }

    #[test]
    fn crash_hook_fires_before_the_write() {
        let counters = CounterService::new();
        let mut e = engine(&counters, "t11");
        let mut m = mem();
        e.fail_after_host_writes(Some(0));
        let err = e.append(&mut m, &put(0)).unwrap_err();
        assert_eq!(err, StorageError::CrashInjected);
        assert!(e.disk().wal.is_empty(), "crash fires before bytes land");
        // Recovery from the (empty) disk sees version 0, floor 0: clean.
        let (e2, report) = StorageEngine::open(
            &mut mem(),
            StorageConfig::default(),
            StoreKeys::new([1u8; 16]),
            counters.clone(),
            "t11",
            e.disk().clone(),
        )
        .unwrap();
        assert_eq!(report.recovered_version, 0);
        assert_eq!(e2.version(), 0);
    }

    #[test]
    fn pack_blocks_respects_budget() {
        let records = sorted_puts(0..20);
        let chunks = pack_blocks(&records, 128);
        assert!(chunks.len() > 1);
        assert_eq!(chunks[0].0, 0);
        assert_eq!(chunks.last().unwrap().1, 20);
        for w in chunks.windows(2) {
            assert_eq!(w[0].1, w[1].0, "contiguous");
        }
        // A record larger than the budget still lands alone.
        let big = vec![Record::Put {
            key: b"k".to_vec(),
            value: vec![0u8; 4096],
        }];
        assert_eq!(pack_blocks(&big, 128), vec![(0, 1)]);
    }
}
