//! The integrity tree: a binary Merkle tree over a segment's block MACs.
//!
//! Each sealed block already carries a GCM tag that authenticates its
//! contents *given* the tag is trusted; the tree compresses all of a
//! segment's tags into one 32-byte root stored in the sealed manifest.
//! Verifying a segment therefore costs one pass over 16 bytes per block
//! (not the blocks themselves), after which individual tags can be
//! trusted for page-in checks.
//!
//! Leaves and interior nodes are domain-separated (`0x00` / `0x01`
//! prefixes) so an interior node can never be confused for a leaf; an odd
//! node at any level is promoted unchanged, and the empty tree has the
//! all-zero root.

use securecloud_crypto::gcm::TAG_LEN;
use securecloud_crypto::sha256::Sha256;

/// Root of the integrity tree over `tags`, in block order.
#[must_use]
pub fn merkle_root(tags: &[[u8; TAG_LEN]]) -> [u8; 32] {
    if tags.is_empty() {
        return [0u8; 32];
    }
    let mut level: Vec<[u8; 32]> = tags
        .iter()
        .map(|tag| {
            let mut leaf = [0u8; 1 + TAG_LEN];
            leaf[1..].copy_from_slice(tag);
            Sha256::digest(&leaf)
        })
        .collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if let [left, right] = pair {
                let mut node = [0u8; 1 + 64];
                node[0] = 0x01;
                node[1..33].copy_from_slice(left);
                node[33..].copy_from_slice(right);
                next.push(Sha256::digest(&node));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_sensitive_to_every_leaf() {
        let tags: Vec<[u8; 16]> = (0..5u8).map(|i| [i; 16]).collect();
        let root = merkle_root(&tags);
        for i in 0..tags.len() {
            let mut tampered = tags.clone();
            tampered[i][3] ^= 1;
            assert_ne!(merkle_root(&tampered), root, "leaf {i}");
        }
        // Order matters.
        let mut swapped = tags.clone();
        swapped.swap(0, 4);
        assert_ne!(merkle_root(&swapped), root);
        // Deterministic.
        assert_eq!(merkle_root(&tags), root);
    }

    #[test]
    fn edge_shapes() {
        assert_eq!(merkle_root(&[]), [0u8; 32]);
        let one = merkle_root(&[[7u8; 16]]);
        assert_ne!(one, [0u8; 32]);
        // A single leaf's root differs from the raw tag hashed without the
        // leaf prefix (domain separation is in effect).
        assert_ne!(one[..16], [7u8; 16]);
        // Truncating the leaf set changes the root.
        let tags: Vec<[u8; 16]> = (0..4u8).map(|i| [i; 16]).collect();
        assert_ne!(merkle_root(&tags[..3]), merkle_root(&tags));
    }
}
