//! On-host wire layout: records, block/segment metadata, the manifest,
//! and the sealing helpers that pin how each structure is encrypted.
//!
//! Everything the host stores is sealed AES-128-GCM. Nonces are derived
//! deterministically from trusted, never-reused sequence numbers
//! ([`nonce_from_seq`] with a per-structure domain), so no randomness is
//! needed on the write path and results stay byte-identical across runs.
//! The exact layouts are pinned by `tests/wire_layout.rs` — change them
//! only with a format-version bump in [`crate::StoreKeys`]'s salt.

use crate::{StorageError, StoreKeys};
use securecloud_crypto::gcm::{nonce_from_seq, AesGcm, NONCE_LEN, TAG_LEN};
use securecloud_crypto::impl_wire_struct;
use securecloud_crypto::wire::{Reader, Wire};
use securecloud_crypto::CryptoError;

/// Nonce domain for sealed segment blocks (`seq` = block index; uniqueness
/// comes from the per-segment key).
pub const BLOCK_NONCE_DOMAIN: u32 = 0x5343_4201; // "SCB" 1
/// Nonce domain for sealed WAL records (`seq` = WAL sequence number).
pub const WAL_NONCE_DOMAIN: u32 = 0x5343_4202;
/// Nonce domain for sealed manifests (`seq` = manifest epoch).
pub const MANIFEST_NONCE_DOMAIN: u32 = 0x5343_4203;

/// AAD prefix for sealed blocks (followed by the `(segment, block)` wire
/// tuple so a block can't be replayed at another position).
pub const BLOCK_AAD: &[u8] = b"securecloud storage block";
/// AAD prefix for sealed WAL records (followed by the sequence number and
/// the previous record's tag, forming a MAC chain).
pub const WAL_AAD: &[u8] = b"securecloud storage wal";
/// AAD for sealed manifests.
pub const MANIFEST_AAD: &[u8] = b"securecloud storage manifest";

/// The MAC-chain anchor before any WAL record exists.
pub const WAL_GENESIS_TAG: [u8; TAG_LEN] = [0u8; TAG_LEN];

/// One logical mutation, as stored in WAL records and segment blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// Bind `key` to `value`.
    Put {
        /// The key.
        key: Vec<u8>,
        /// The value.
        value: Vec<u8>,
    },
    /// Delete `key`, shadowing any older segment holding it.
    Tombstone {
        /// The key.
        key: Vec<u8>,
    },
}

impl Record {
    /// The record's key.
    #[must_use]
    pub fn key(&self) -> &[u8] {
        match self {
            Record::Put { key, .. } | Record::Tombstone { key } => key,
        }
    }

    /// The record's value (`None` for a tombstone).
    #[must_use]
    pub fn value(&self) -> Option<&[u8]> {
        match self {
            Record::Put { value, .. } => Some(value),
            Record::Tombstone { .. } => None,
        }
    }

    /// Approximate in-memory footprint, used for block packing.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        // tag byte + one or two length-prefixed byte strings.
        match self {
            Record::Put { key, value } => 1 + 4 + key.len() + 4 + value.len(),
            Record::Tombstone { key } => 1 + 4 + key.len(),
        }
    }
}

impl Wire for Record {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Record::Put { key, value } => {
                out.push(0);
                key.encode(out);
                value.encode(out);
            }
            Record::Tombstone { key } => {
                out.push(1);
                key.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        match u8::decode(r)? {
            0 => Ok(Record::Put {
                key: Vec::<u8>::decode(r)?,
                value: Vec::<u8>::decode(r)?,
            }),
            1 => Ok(Record::Tombstone {
                key: Vec::<u8>::decode(r)?,
            }),
            other => Err(CryptoError::Malformed(format!("record tag {other}"))),
        }
    }
}

/// Key range and cardinality of one sealed block, kept in the manifest so
/// lookups can binary-search without touching the host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMeta {
    /// Smallest key in the block.
    pub first_key: Vec<u8>,
    /// Largest key in the block.
    pub last_key: Vec<u8>,
    /// Records in the block.
    pub records: u32,
}

impl_wire_struct!(BlockMeta {
    first_key,
    last_key,
    records
});

/// One immutable sealed segment as described by the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Segment id: drawn from a trusted counter, never reused (this is
    /// what makes per-block nonces safe across crash-discarded flushes).
    pub id: u64,
    /// Merkle root over the segment's block MACs (the integrity tree).
    pub root: [u8; 32],
    /// Records across all blocks.
    pub records: u64,
    /// Sealed bytes across all blocks.
    pub bytes: u64,
    /// Per-block key ranges, in key order.
    pub blocks: Vec<BlockMeta>,
}

impl_wire_struct!(SegmentMeta {
    id,
    root,
    records,
    bytes,
    blocks
});

/// The store's root of trust on the host: which segments are live, how far
/// the WAL had been folded in, and where the WAL MAC chain resumes. Sealed
/// under the manifest key with its epoch bound into the nonce, and the
/// epoch + version floor checked against [`crate::CounterService`] at open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Store version as of this manifest (mutations folded into segments).
    pub version: u64,
    /// Commit epoch from the trusted commit counter; strictly increasing,
    /// also the manifest nonce sequence.
    pub epoch: u64,
    /// First WAL sequence number NOT folded into the segments.
    pub wal_start_seq: u64,
    /// GCM tag of the last folded WAL record: the MAC-chain anchor for the
    /// live WAL tail ([`WAL_GENESIS_TAG`] if none was ever folded).
    pub wal_anchor_tag: [u8; TAG_LEN],
    /// Live segments, oldest first.
    pub segments: Vec<SegmentMeta>,
}

impl_wire_struct!(Manifest {
    version,
    epoch,
    wal_start_seq,
    wal_anchor_tag,
    segments
});

/// AAD binding a block to its `(segment, index)` position.
#[must_use]
pub fn block_aad(segment: u64, index: u32) -> Vec<u8> {
    let mut aad = BLOCK_AAD.to_vec();
    (segment, index).encode(&mut aad);
    aad
}

/// Seals one block of records under the segment key. The ciphertext is
/// `ct || tag` — the nonce is derived from the block index, not stored.
#[must_use]
pub fn seal_block(cipher: &AesGcm, segment: u64, index: u32, records: &[Record]) -> Vec<u8> {
    let mut buf = records.to_vec().to_wire();
    let nonce = nonce_from_seq(BLOCK_NONCE_DOMAIN, u64::from(index));
    cipher.seal_in_place(&nonce, &mut buf, &block_aad(segment, index));
    buf
}

/// Opens a sealed block. Auth failure maps to [`StorageError::Integrity`]:
/// the bytes on the host do not match what was sealed at this position.
pub fn open_block(
    cipher: &AesGcm,
    segment: u64,
    index: u32,
    sealed: &[u8],
) -> Result<Vec<Record>, StorageError> {
    let nonce = nonce_from_seq(BLOCK_NONCE_DOMAIN, u64::from(index));
    let mut buf = sealed.to_vec();
    cipher
        .open_in_place(&nonce, &mut buf, &block_aad(segment, index))
        .map_err(|_| StorageError::Integrity {
            segment,
            block: Some(index),
        })?;
    Vec::<Record>::from_wire(&buf).map_err(StorageError::Crypto)
}

/// The GCM tag of a sealed block (its trailing [`TAG_LEN`] bytes) — the
/// leaf the integrity tree is built over.
pub fn block_tag(sealed: &[u8]) -> Result<[u8; TAG_LEN], StorageError> {
    if sealed.len() < TAG_LEN {
        return Err(StorageError::Corrupt(
            "sealed block shorter than tag".into(),
        ));
    }
    Ok(sealed[sealed.len() - TAG_LEN..]
        .try_into()
        .expect("sized slice"))
}

/// AAD chaining a WAL record to its predecessor's tag.
#[must_use]
pub fn wal_aad(seq: u64, prev_tag: &[u8; TAG_LEN]) -> Vec<u8> {
    let mut aad = WAL_AAD.to_vec();
    aad.extend_from_slice(&seq.to_le_bytes());
    aad.extend_from_slice(prev_tag);
    aad
}

/// Seals one WAL record, returning `ct || tag`. The trailing tag is the
/// next record's chain link.
#[must_use]
pub fn seal_wal_record(
    cipher: &AesGcm,
    seq: u64,
    prev_tag: &[u8; TAG_LEN],
    record: &Record,
) -> Vec<u8> {
    let mut buf = record.to_wire();
    let nonce = nonce_from_seq(WAL_NONCE_DOMAIN, seq);
    cipher.seal_in_place(&nonce, &mut buf, &wal_aad(seq, prev_tag));
    buf
}

/// Opens one WAL record against the expected chain tag. A record that was
/// reordered, replaced, or spliced from another history fails here.
pub fn open_wal_record(
    cipher: &AesGcm,
    seq: u64,
    prev_tag: &[u8; TAG_LEN],
    sealed: &[u8],
) -> Result<Record, StorageError> {
    let nonce = nonce_from_seq(WAL_NONCE_DOMAIN, seq);
    let mut buf = sealed.to_vec();
    cipher
        .open_in_place(&nonce, &mut buf, &wal_aad(seq, prev_tag))
        .map_err(|_| StorageError::Corrupt(format!("WAL record {seq} fails its chain check")))?;
    Record::from_wire(&buf).map_err(StorageError::Crypto)
}

/// The chain tag of a sealed WAL record (its trailing [`TAG_LEN`] bytes).
pub fn wal_tag(sealed: &[u8]) -> Result<[u8; TAG_LEN], StorageError> {
    if sealed.len() < TAG_LEN {
        return Err(StorageError::Corrupt(
            "sealed WAL record shorter than tag".into(),
        ));
    }
    Ok(sealed[sealed.len() - TAG_LEN..]
        .try_into()
        .expect("sized slice"))
}

/// Seals the manifest under the manifest key: `nonce || ct || tag`, with
/// the nonce derived from the (never reused) commit epoch.
#[must_use]
pub fn seal_manifest(keys: &StoreKeys, manifest: &Manifest) -> Vec<u8> {
    let cipher = AesGcm::new(&keys.manifest_key());
    let nonce = nonce_from_seq(MANIFEST_NONCE_DOMAIN, manifest.epoch);
    let mut out = nonce.to_vec();
    let mut body = manifest.to_wire();
    cipher.seal_in_place(&nonce, &mut body, MANIFEST_AAD);
    out.extend_from_slice(&body);
    out
}

/// Opens a sealed manifest blob.
pub fn open_manifest(keys: &StoreKeys, sealed: &[u8]) -> Result<Manifest, StorageError> {
    if sealed.len() < NONCE_LEN + TAG_LEN {
        return Err(StorageError::Corrupt("manifest blob too short".into()));
    }
    let cipher = AesGcm::new(&keys.manifest_key());
    let nonce: [u8; NONCE_LEN] = sealed[..NONCE_LEN].try_into().expect("sized slice");
    let mut body = sealed[NONCE_LEN..].to_vec();
    cipher.open_in_place(&nonce, &mut body, MANIFEST_AAD)?;
    Manifest::from_wire(&body).map_err(StorageError::Crypto)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> StoreKeys {
        StoreKeys::new([7u8; 16])
    }

    #[test]
    fn record_roundtrip_and_tags() {
        let put = Record::Put {
            key: b"k".to_vec(),
            value: b"v".to_vec(),
        };
        let tomb = Record::Tombstone { key: b"k".to_vec() };
        assert_eq!(Record::from_wire(&put.to_wire()).unwrap(), put);
        assert_eq!(Record::from_wire(&tomb.to_wire()).unwrap(), tomb);
        assert_eq!(put.encoded_len(), put.to_wire().len());
        assert_eq!(tomb.encoded_len(), tomb.to_wire().len());
        assert!(Record::from_wire(&[2]).is_err(), "unknown tag rejected");
        assert_eq!(put.value(), Some(&b"v"[..]));
        assert_eq!(tomb.value(), None);
    }

    #[test]
    fn block_binds_position() {
        let cipher = AesGcm::new(&keys().segment_key(3));
        let records = vec![Record::Put {
            key: b"a".to_vec(),
            value: b"1".to_vec(),
        }];
        let sealed = seal_block(&cipher, 3, 0, &records);
        assert_eq!(open_block(&cipher, 3, 0, &sealed).unwrap(), records);
        // Same bytes at a different index or segment fail.
        assert!(matches!(
            open_block(&cipher, 3, 1, &sealed),
            Err(StorageError::Integrity {
                segment: 3,
                block: Some(1)
            })
        ));
        assert!(open_block(&cipher, 4, 0, &sealed).is_err());
        // A flipped ciphertext bit fails.
        let mut bad = sealed.clone();
        bad[0] ^= 1;
        assert!(open_block(&cipher, 3, 0, &bad).is_err());
    }

    #[test]
    fn wal_chain_rejects_splices() {
        let cipher = AesGcm::new(&keys().wal_key());
        let r0 = Record::Put {
            key: b"a".to_vec(),
            value: b"1".to_vec(),
        };
        let r1 = Record::Tombstone { key: b"a".to_vec() };
        let s0 = seal_wal_record(&cipher, 0, &WAL_GENESIS_TAG, &r0);
        let t0 = wal_tag(&s0).unwrap();
        let s1 = seal_wal_record(&cipher, 1, &t0, &r1);
        assert_eq!(
            open_wal_record(&cipher, 0, &WAL_GENESIS_TAG, &s0).unwrap(),
            r0
        );
        assert_eq!(open_wal_record(&cipher, 1, &t0, &s1).unwrap(), r1);
        // Replaying record 1 without its predecessor's tag fails.
        assert!(open_wal_record(&cipher, 1, &WAL_GENESIS_TAG, &s1).is_err());
        // Reordering fails: record 0 does not chain after record 1.
        let t1 = wal_tag(&s1).unwrap();
        assert!(open_wal_record(&cipher, 2, &t1, &s0).is_err());
    }

    #[test]
    fn manifest_seals_and_detects_tamper() {
        let m = Manifest {
            version: 5,
            epoch: 2,
            wal_start_seq: 5,
            wal_anchor_tag: [9u8; 16],
            segments: vec![SegmentMeta {
                id: 1,
                root: [3u8; 32],
                records: 10,
                bytes: 400,
                blocks: vec![BlockMeta {
                    first_key: b"a".to_vec(),
                    last_key: b"z".to_vec(),
                    records: 10,
                }],
            }],
        };
        let sealed = seal_manifest(&keys(), &m);
        assert_eq!(open_manifest(&keys(), &sealed).unwrap(), m);
        let mut bad = sealed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x80;
        assert!(open_manifest(&keys(), &bad).is_err());
        assert!(open_manifest(&keys(), &sealed[..10]).is_err());
    }
}
