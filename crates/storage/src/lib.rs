//! Encrypted persistent storage beyond the EPC: sealed log-structured
//! segments on the untrusted host.
//!
//! The paper's secure stores must serve working sets far larger than the
//! ~128 MiB EPC, so hot state lives in enclave memory while the bulk is
//! spilled to *host* storage the enclave does not trust. This crate is
//! that bottom tier, shaped after Occlum's encrypted FS image
//! (integrity-protected + encrypted layers) and tgcryptfs's key hierarchy
//! (per-chunk keys derived from one master key):
//!
//! * [`engine::StorageEngine`] — an append-only, log-structured segment
//!   store. Writes land in a sealed write-ahead log; a flush packs them
//!   into fixed-size blocks, seals each block with AES-GCM under a
//!   per-segment key ([`StoreKeys`]), and commits a sealed manifest.
//! * **Integrity tree** — a Merkle root over each segment's block MACs
//!   lives in the manifest; paging a block in verifies it against the
//!   root, so a flipped bit anywhere on the host is detected
//!   ([`StorageError::Integrity`]) and the segment can be quarantined.
//! * **Rollback protection** — the manifest's version is floored by a
//!   trusted monotonic counter ([`CounterService`]); every WAL append
//!   advances the same floor, so serving a stale manifest *or* dropping
//!   the WAL tail surfaces as [`StorageError::Rollback`].
//! * **Cost accounting** — every host transfer is charged through
//!   [`MemorySim`](securecloud_sgx::mem::MemorySim)'s host-IO cost domain,
//!   so EPC-paging vs host-IO trade-offs show up in cycles and telemetry.

pub mod disk;
pub mod engine;
pub mod layout;
pub mod tree;

pub use disk::{HostDisk, HostSegment, SealedWalRecord};
pub use engine::{IncrementalSnapshot, ReplayReport, StorageEngine, StorageStats};
pub use layout::{BlockMeta, Manifest, Record, SegmentMeta};

use parking_lot::Mutex;
use securecloud_crypto::hmac::hkdf;
use securecloud_crypto::CryptoError;
use std::collections::HashMap;
use std::error::Error as StdError;
use std::fmt;
use std::sync::Arc;

/// Errors from the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StorageError {
    /// A sealed block, WAL record, or manifest failed to decrypt or decode.
    Crypto(CryptoError),
    /// The recovered state is older than the trusted counter: the host
    /// served a stale manifest or dropped the WAL tail.
    Rollback {
        /// Version reconstructed from the manifest plus the WAL tail.
        recovered_version: u64,
        /// Version floor recorded by the trusted counter.
        counter_version: u64,
    },
    /// A segment's on-host bytes disagree with the integrity tree root
    /// recorded in the manifest.
    Integrity {
        /// Segment whose verification failed.
        segment: u64,
        /// Block index, when the failure localises to one block.
        block: Option<u32>,
    },
    /// The on-host structure is malformed (truncated WAL, missing segment,
    /// out-of-order sequence numbers).
    Corrupt(String),
    /// A test-armed crash point fired mid-operation (see
    /// [`StorageEngine::fail_after_host_writes`]); the in-memory store must
    /// be discarded and reopened from the host disk.
    CrashInjected,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Crypto(e) => write!(f, "storage cryptographic failure: {e}"),
            StorageError::Rollback {
                recovered_version,
                counter_version,
            } => write!(
                f,
                "storage rollback detected: recovered v{recovered_version} older than \
                 counter v{counter_version}"
            ),
            StorageError::Integrity { segment, block } => match block {
                Some(b) => write!(f, "integrity failure in segment {segment} block {b}"),
                None => write!(f, "integrity-tree mismatch over segment {segment}"),
            },
            StorageError::Corrupt(what) => write!(f, "corrupt host structure: {what}"),
            StorageError::CrashInjected => write!(f, "injected crash point fired"),
        }
    }
}

impl StdError for StorageError {}

impl From<CryptoError> for StorageError {
    fn from(e: CryptoError) -> Self {
        StorageError::Crypto(e)
    }
}

/// A trusted monotonic counter service (stands in for SGX monotonic
/// counters / a replicated counter service). Shared between store
/// instances via `Clone`.
#[derive(Debug, Clone, Default)]
pub struct CounterService {
    counters: Arc<Mutex<HashMap<String, u64>>>,
}

impl CounterService {
    /// Creates an empty counter service.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a counter (0 if never bumped).
    #[must_use]
    pub fn read(&self, name: &str) -> u64 {
        *self.counters.lock().get(name).unwrap_or(&0)
    }

    /// Increments and returns the new value.
    pub fn increment(&self, name: &str) -> u64 {
        let mut counters = self.counters.lock();
        let v = counters.entry(name.to_string()).or_insert(0);
        *v += 1;
        *v
    }

    /// Advances a counter to `value` if that moves it forward, returning
    /// the resulting value. Monotone: a lagging writer (e.g. a replica
    /// sealing an older snapshot than a sibling already recorded) can
    /// never roll the counter back.
    pub fn advance_to(&self, name: &str, value: u64) -> u64 {
        let mut counters = self.counters.lock();
        let v = counters.entry(name.to_string()).or_insert(0);
        *v = (*v).max(value);
        *v
    }
}

/// The tgcryptfs-style key hierarchy: one 128-bit store master key, with
/// per-segment, WAL, and manifest keys derived from it by HKDF under
/// distinct info strings. Compromise of any derived key exposes only its
/// own domain; the master key never touches the host.
#[derive(Debug, Clone)]
pub struct StoreKeys {
    master: [u8; 16],
}

/// HKDF salt binding every derivation to this engine's format version.
const KEY_SALT: &[u8] = b"securecloud-storage-v1";

impl StoreKeys {
    /// Wraps a store master key.
    #[must_use]
    pub fn new(master: [u8; 16]) -> Self {
        StoreKeys { master }
    }

    /// The per-segment sealing key. Segment ids come from a trusted
    /// counter and are never reused, so (key, block-nonce) pairs are
    /// unique even across crash-discarded flush attempts.
    #[must_use]
    pub fn segment_key(&self, segment: u64) -> [u8; 16] {
        let mut info = Vec::with_capacity(16);
        info.extend_from_slice(b"segment\0");
        info.extend_from_slice(&segment.to_le_bytes());
        hkdf(KEY_SALT, &self.master, &info)
    }

    /// The write-ahead-log sealing key.
    #[must_use]
    pub fn wal_key(&self) -> [u8; 16] {
        hkdf(KEY_SALT, &self.master, b"wal")
    }

    /// The manifest sealing key.
    #[must_use]
    pub fn manifest_key(&self) -> [u8; 16] {
        hkdf(KEY_SALT, &self.master, b"manifest")
    }
}

/// Shape of the on-host tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageConfig {
    /// Plaintext capacity of one sealed block, in bytes.
    pub block_bytes: usize,
    /// Memtable size at which the owning store flushes a segment, in
    /// bytes of live key+value data.
    pub flush_bytes: u64,
    /// Decrypted blocks cached in enclave memory (small by design: the
    /// cache competes with the memtable for EPC).
    pub cache_blocks: usize,
    /// Live segment count that triggers a full deterministic compaction
    /// (merge every segment, drop shadowed records and tombstones).
    pub compact_at_segments: usize,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            block_bytes: 4096,
            flush_bytes: 256 << 10,
            cache_blocks: 8,
            compact_at_segments: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_service_behaviour() {
        let counters = CounterService::new();
        assert_eq!(counters.read("x"), 0);
        assert_eq!(counters.increment("x"), 1);
        assert_eq!(counters.increment("x"), 2);
        assert_eq!(counters.read("x"), 2);
        assert_eq!(counters.read("y"), 0);
        // Clones share state.
        let clone = counters.clone();
        clone.increment("x");
        assert_eq!(counters.read("x"), 3);
        // advance_to is monotone in both directions of use.
        assert_eq!(counters.advance_to("x", 10), 10);
        assert_eq!(counters.advance_to("x", 5), 10);
    }

    #[test]
    fn key_hierarchy_is_domain_separated() {
        let keys = StoreKeys::new([9u8; 16]);
        let s0 = keys.segment_key(0);
        let s1 = keys.segment_key(1);
        assert_ne!(s0, s1, "per-segment keys differ");
        assert_ne!(keys.wal_key(), keys.manifest_key());
        assert_ne!(keys.wal_key(), s0);
        // Deterministic: the same master re-derives the same keys.
        assert_eq!(StoreKeys::new([9u8; 16]).segment_key(1), s1);
        // A different master yields an unrelated hierarchy.
        assert_ne!(StoreKeys::new([10u8; 16]).segment_key(1), s1);
    }
}
