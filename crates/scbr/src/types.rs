//! The subscription language: typed attributes, predicates, publications,
//! and the containment (covering) relation the SCBR index exploits.

use securecloud_crypto::wire::{Reader, Wire};
use securecloud_crypto::{impl_wire_struct, CryptoError};
use std::collections::BTreeMap;

/// An attribute value in a publication or predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Wire for Value {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(v) => {
                out.push(0);
                v.encode(out);
            }
            Value::Float(v) => {
                out.push(1);
                v.encode(out);
            }
            Value::Str(v) => {
                out.push(2);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        match u8::decode(r)? {
            0 => Ok(Value::Int(i64::decode(r)?)),
            1 => Ok(Value::Float(f64::decode(r)?)),
            2 => Ok(Value::Str(String::decode(r)?)),
            tag => Err(CryptoError::Malformed(format!("value tag {tag}"))),
        }
    }
}

/// Comparison operator in a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Equal.
    Eq,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl Wire for Op {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Op::Eq => 0,
            Op::Lt => 1,
            Op::Le => 2,
            Op::Gt => 3,
            Op::Ge => 4,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        match u8::decode(r)? {
            0 => Ok(Op::Eq),
            1 => Ok(Op::Lt),
            2 => Ok(Op::Le),
            3 => Ok(Op::Gt),
            4 => Ok(Op::Ge),
            tag => Err(CryptoError::Malformed(format!("op tag {tag}"))),
        }
    }
}

/// One predicate: `attr op value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Attribute name.
    pub attr: String,
    /// Comparison operator.
    pub op: Op,
    /// Comparison value.
    pub value: Value,
}

impl_wire_struct!(Predicate { attr, op, value });

impl Predicate {
    /// Builds a predicate.
    #[must_use]
    pub fn new(attr: &str, op: Op, value: Value) -> Self {
        Predicate {
            attr: attr.to_string(),
            op,
            value,
        }
    }

    /// Evaluates the predicate against a publication value.
    #[must_use]
    pub fn eval(&self, actual: &Value) -> bool {
        match (&self.value, actual) {
            (Value::Int(want), Value::Int(have)) => compare(self.op, *have as f64, *want as f64),
            (Value::Float(want), Value::Float(have)) => compare(self.op, *have, *want),
            (Value::Int(want), Value::Float(have)) => compare(self.op, *have, *want as f64),
            (Value::Float(want), Value::Int(have)) => compare(self.op, *have as f64, *want),
            (Value::Str(want), Value::Str(have)) => match self.op {
                Op::Eq => have == want,
                Op::Lt => have < want,
                Op::Le => have <= want,
                Op::Gt => have > want,
                Op::Ge => have >= want,
            },
            _ => false, // type mismatch never matches
        }
    }
}

fn compare(op: Op, have: f64, want: f64) -> bool {
    match op {
        Op::Eq => have == want,
        Op::Lt => have < want,
        Op::Le => have <= want,
        Op::Gt => have > want,
        Op::Ge => have >= want,
    }
}

/// Subscription identifier assigned by the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubId(pub u64);

/// A subscription: a conjunction of predicates plus opaque subscriber
/// metadata (delivery address, credentials — routed but not interpreted).
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    /// Conjunctive predicates.
    pub predicates: Vec<Predicate>,
    /// Opaque subscriber payload (contributes to the router's memory
    /// footprint, as real subscriber state does).
    pub payload: Vec<u8>,
}

impl_wire_struct!(Subscription {
    predicates,
    payload
});

impl Subscription {
    /// Builds a subscription from predicates with an empty payload.
    #[must_use]
    pub fn new(predicates: Vec<Predicate>) -> Self {
        Subscription {
            predicates,
            payload: Vec::new(),
        }
    }

    /// Attaches subscriber metadata (builder style).
    #[must_use]
    pub fn with_payload(mut self, payload: Vec<u8>) -> Self {
        self.payload = payload;
        self
    }

    /// Whether `publication` satisfies every predicate.
    #[must_use]
    pub fn matches(&self, publication: &Publication) -> bool {
        self.predicates.iter().all(|p| {
            publication
                .attrs
                .get(&p.attr)
                .is_some_and(|actual| p.eval(actual))
        })
    }

    /// The subscription's footprint in router memory, in bytes: predicates
    /// plus payload plus per-node bookkeeping. Drives the simulated memory
    /// layout of the match engine.
    #[must_use]
    pub fn footprint(&self) -> usize {
        48 + self
            .predicates
            .iter()
            .map(|p| 32 + p.attr.len())
            .sum::<usize>()
            + self.payload.len()
    }

    /// Conservative covering check: `self` covers `other` if every
    /// publication matching `other` also matches `self`.
    ///
    /// Decided per attribute on normalised intervals; returns `false` when
    /// coverage cannot be established (sound for index correctness: a
    /// missed covering only costs comparisons, never correctness).
    #[must_use]
    pub fn covers(&self, other: &Subscription) -> bool {
        covers_normalised(&self.normalised(), &other.normalised())
    }

    /// Pre-computes the normalised per-attribute constraints of this
    /// subscription (`None` = unsatisfiable). Indexes cache this to avoid
    /// re-normalising on every covering check.
    #[must_use]
    pub fn normalised(&self) -> Normalised {
        Normalised(normalise(&self.predicates))
    }
}

/// Cached normalised form of a subscription's predicates.
///
/// `Normalised(None)` means the conjunction is unsatisfiable.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalised(Option<BTreeMap<String, Constraint>>);

/// Covering decision on normalised forms: `a` covers `b` when every
/// publication matching `b` matches `a` (conservative).
#[must_use]
pub fn covers_normalised(a: &Normalised, b: &Normalised) -> bool {
    let (Some(mine), Some(theirs)) = (&a.0, &b.0) else {
        // Unsatisfiable `b` is covered by anything; unsatisfiable `a`
        // covers only unsatisfiable others.
        return b.0.is_none();
    };
    for (attr, my_constraint) in mine {
        match theirs.get(attr) {
            None => return false,
            Some(their_constraint) => {
                if !my_constraint.contains(their_constraint) {
                    return false;
                }
            }
        }
    }
    true
}

/// A publication: attribute → value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Publication {
    /// The attributes of this event.
    pub attrs: BTreeMap<String, Value>,
}

impl_wire_struct!(Publication { attrs });

impl Publication {
    /// Creates an empty publication.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an attribute (builder style).
    #[must_use]
    pub fn with(mut self, attr: &str, value: Value) -> Self {
        self.attrs.insert(attr.to_string(), value);
        self
    }
}

/// Normalised constraint on one attribute.
#[derive(Debug, Clone, PartialEq)]
enum Constraint {
    /// Numeric interval with inclusive/exclusive bounds.
    Interval {
        lo: f64,
        lo_incl: bool,
        hi: f64,
        hi_incl: bool,
    },
    /// Exact string.
    StrEq(String),
    /// String range (only from explicit ordering predicates; kept opaque —
    /// contains() is conservative).
    StrOther,
}

impl Constraint {
    /// Whether every value satisfying `other` satisfies `self`.
    fn contains(&self, other: &Constraint) -> bool {
        match (self, other) {
            (
                Constraint::Interval {
                    lo: alo,
                    lo_incl: aloi,
                    hi: ahi,
                    hi_incl: ahii,
                },
                Constraint::Interval {
                    lo: blo,
                    lo_incl: bloi,
                    hi: bhi,
                    hi_incl: bhii,
                },
            ) => {
                let lo_ok = alo < blo || (alo == blo && (*aloi || !bloi));
                let hi_ok = ahi > bhi || (ahi == bhi && (*ahii || !bhii));
                lo_ok && hi_ok
            }
            (Constraint::StrEq(a), Constraint::StrEq(b)) => a == b,
            _ => false,
        }
    }
}

/// Normalises a conjunction into per-attribute constraints; `None` if the
/// conjunction is unsatisfiable (empty interval).
fn normalise(predicates: &[Predicate]) -> Option<BTreeMap<String, Constraint>> {
    let mut out: BTreeMap<String, Constraint> = BTreeMap::new();
    for p in predicates {
        let constraint = match (&p.value, p.op) {
            (Value::Str(s), Op::Eq) => Constraint::StrEq(s.clone()),
            (Value::Str(_), _) => Constraint::StrOther,
            (v, op) => {
                let x = match v {
                    Value::Int(i) => *i as f64,
                    Value::Float(f) => *f,
                    Value::Str(_) => unreachable!("handled above"),
                };
                let (lo, lo_incl, hi, hi_incl) = match op {
                    Op::Eq => (x, true, x, true),
                    Op::Lt => (f64::NEG_INFINITY, false, x, false),
                    Op::Le => (f64::NEG_INFINITY, false, x, true),
                    Op::Gt => (x, false, f64::INFINITY, false),
                    Op::Ge => (x, true, f64::INFINITY, false),
                };
                Constraint::Interval {
                    lo,
                    lo_incl,
                    hi,
                    hi_incl,
                }
            }
        };
        match out.remove(&p.attr) {
            None => {
                out.insert(p.attr.clone(), constraint);
            }
            Some(existing) => {
                let merged = intersect(existing, constraint)?;
                out.insert(p.attr.clone(), merged);
            }
        }
    }
    Some(out)
}

fn intersect(a: Constraint, b: Constraint) -> Option<Constraint> {
    match (a, b) {
        (
            Constraint::Interval {
                lo: alo,
                lo_incl: aloi,
                hi: ahi,
                hi_incl: ahii,
            },
            Constraint::Interval {
                lo: blo,
                lo_incl: bloi,
                hi: bhi,
                hi_incl: bhii,
            },
        ) => {
            let (lo, lo_incl) = if alo > blo {
                (alo, aloi)
            } else if blo > alo {
                (blo, bloi)
            } else {
                (alo, aloi && bloi)
            };
            let (hi, hi_incl) = if ahi < bhi {
                (ahi, ahii)
            } else if bhi < ahi {
                (bhi, bhii)
            } else {
                (ahi, ahii && bhii)
            };
            if lo > hi || (lo == hi && !(lo_incl && hi_incl)) {
                return None;
            }
            Some(Constraint::Interval {
                lo,
                lo_incl,
                hi,
                hi_incl,
            })
        }
        (Constraint::StrEq(a), Constraint::StrEq(b)) => {
            if a == b {
                Some(Constraint::StrEq(a))
            } else {
                None
            }
        }
        (a, _) => Some(a), // conservative: keep the first, never claim empty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(attr: &str, op: Op, v: i64) -> Predicate {
        Predicate::new(attr, op, Value::Int(v))
    }

    #[test]
    fn predicate_eval() {
        let p = pred("temp", Op::Ge, 20);
        assert!(p.eval(&Value::Int(20)));
        assert!(p.eval(&Value::Int(25)));
        assert!(!p.eval(&Value::Int(19)));
        assert!(p.eval(&Value::Float(20.5)));
        assert!(!p.eval(&Value::Str("20".into())), "type mismatch");
        let s = Predicate::new("region", Op::Eq, Value::Str("eu".into()));
        assert!(s.eval(&Value::Str("eu".into())));
        assert!(!s.eval(&Value::Str("us".into())));
    }

    #[test]
    fn subscription_matching_is_conjunctive() {
        let sub = Subscription::new(vec![pred("a", Op::Ge, 10), pred("b", Op::Lt, 5)]);
        let hit = Publication::new()
            .with("a", Value::Int(10))
            .with("b", Value::Int(4))
            .with("c", Value::Int(99));
        let miss_value = Publication::new()
            .with("a", Value::Int(10))
            .with("b", Value::Int(5));
        let miss_attr = Publication::new().with("a", Value::Int(10));
        assert!(sub.matches(&hit));
        assert!(!sub.matches(&miss_value));
        assert!(!sub.matches(&miss_attr), "missing attribute never matches");
    }

    #[test]
    fn covering_basic() {
        let broad = Subscription::new(vec![pred("x", Op::Ge, 0)]);
        let narrow = Subscription::new(vec![pred("x", Op::Ge, 10)]);
        assert!(broad.covers(&narrow));
        assert!(!narrow.covers(&broad));
        // Covering is reflexive.
        assert!(broad.covers(&broad));
    }

    #[test]
    fn covering_requires_all_attrs_constrained_by_other() {
        let broad = Subscription::new(vec![pred("x", Op::Ge, 0)]);
        let other_attr = Subscription::new(vec![pred("y", Op::Ge, 100)]);
        assert!(!broad.covers(&other_attr));
        // Fewer constraints cover more: {} covers everything.
        let top = Subscription::new(vec![]);
        assert!(top.covers(&broad));
        assert!(!broad.covers(&top));
    }

    #[test]
    fn covering_intervals_with_bounds() {
        let le = Subscription::new(vec![pred("x", Op::Le, 10)]);
        let lt = Subscription::new(vec![pred("x", Op::Lt, 10)]);
        assert!(le.covers(&lt));
        assert!(!lt.covers(&le));
        let eq = Subscription::new(vec![pred("x", Op::Eq, 10)]);
        assert!(le.covers(&eq));
        assert!(!lt.covers(&eq));
        let range = Subscription::new(vec![pred("x", Op::Ge, 0), pred("x", Op::Le, 100)]);
        let point = Subscription::new(vec![pred("x", Op::Eq, 50)]);
        assert!(range.covers(&point));
        assert!(!point.covers(&range));
    }

    #[test]
    fn covering_strings() {
        let eu = Subscription::new(vec![Predicate::new("r", Op::Eq, Value::Str("eu".into()))]);
        let eu2 = Subscription::new(vec![Predicate::new("r", Op::Eq, Value::Str("eu".into()))]);
        let us = Subscription::new(vec![Predicate::new("r", Op::Eq, Value::Str("us".into()))]);
        assert!(eu.covers(&eu2));
        assert!(!eu.covers(&us));
    }

    #[test]
    fn covering_semantics_spot_check() {
        // If covers() says yes, matching must agree on sampled publications.
        let broad = Subscription::new(vec![pred("x", Op::Ge, 0), pred("y", Op::Lt, 100)]);
        let narrow = Subscription::new(vec![
            pred("x", Op::Ge, 5),
            pred("y", Op::Lt, 50),
            pred("z", Op::Eq, 1),
        ]);
        assert!(broad.covers(&narrow));
        for x in [-10i64, 0, 5, 7] {
            for y in [0i64, 49, 50, 100] {
                let p = Publication::new()
                    .with("x", Value::Int(x))
                    .with("y", Value::Int(y))
                    .with("z", Value::Int(1));
                if narrow.matches(&p) {
                    assert!(broad.matches(&p), "containment violated at x={x} y={y}");
                }
            }
        }
    }

    #[test]
    fn unsatisfiable_subscription() {
        let impossible = Subscription::new(vec![pred("x", Op::Lt, 0), pred("x", Op::Gt, 10)]);
        let anything = Subscription::new(vec![pred("x", Op::Eq, 5)]);
        // Anything covers the unsatisfiable subscription.
        assert!(anything.covers(&impossible));
        assert!(!impossible.covers(&anything));
    }

    #[test]
    fn wire_roundtrips() {
        let sub = Subscription::new(vec![
            pred("a", Op::Ge, 1),
            Predicate::new("b", Op::Eq, Value::Str("s".into())),
            Predicate::new("c", Op::Lt, Value::Float(2.5)),
        ])
        .with_payload(vec![1, 2, 3]);
        assert_eq!(Subscription::from_wire(&sub.to_wire()).unwrap(), sub);
        let publication = Publication::new()
            .with("a", Value::Int(1))
            .with("b", Value::Str("s".into()));
        assert_eq!(
            Publication::from_wire(&publication.to_wire()).unwrap(),
            publication
        );
    }

    #[test]
    fn footprint_grows_with_content() {
        let small = Subscription::new(vec![pred("a", Op::Eq, 1)]);
        let big = Subscription::new(vec![pred("a", Op::Eq, 1); 4]).with_payload(vec![0; 100]);
        assert!(big.footprint() > small.footprint());
    }
}
