//! Secure content-based routing (SCBR, paper §V-B).
//!
//! Content-based routing decouples producers from consumers and routes
//! messages on their *content*; doing this efficiently requires the router
//! to see plaintext, which SCBR solves by matching inside an SGX enclave:
//!
//! * [`types`] — the subscription language (typed predicates, publications,
//!   and the containment/covering relation),
//! * [`index`] — the containment-forest index exploiting covering relations
//!   plus a naive linear-scan baseline,
//! * [`engine`] — the matching engine with a simulated memory layout (the
//!   substrate of the Figure 3 reproduction),
//! * [`secure`] — the enclave-hosted router with encrypted subscriptions,
//!   publications, and per-subscriber notifications,
//! * [`workload`] — deterministic workload generation for the benchmarks.
//!
//! # Example
//!
//! ```
//! use securecloud_scbr::engine::MatchEngine;
//! use securecloud_scbr::index::PosetIndex;
//! use securecloud_scbr::types::{Op, Predicate, Publication, Subscription, Value};
//! use securecloud_sgx::costs::{CostModel, MemoryGeometry};
//! use securecloud_sgx::mem::MemorySim;
//!
//! let mut mem = MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::sgx_v1());
//! let mut engine = MatchEngine::new(PosetIndex::with_partition_attr("topic"));
//! let sub = Subscription::new(vec![
//!     Predicate::new("topic", Op::Eq, Value::Int(7)),
//!     Predicate::new("load", Op::Ge, Value::Int(100)),
//! ]);
//! let id = engine.subscribe(&mut mem, sub);
//! let event = Publication::new()
//!     .with("topic", Value::Int(7))
//!     .with("load", Value::Int(250));
//! assert_eq!(engine.publish(&mut mem, &event), vec![id]);
//! ```

pub mod broker;
pub mod engine;
pub mod index;
pub mod secure;
pub mod types;
pub mod workload;

use secure::ClientId;
use securecloud_crypto::CryptoError;
use securecloud_sgx::SgxError;
use std::error::Error as StdError;
use std::fmt;

/// Errors from the SCBR router.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScbrError {
    /// The client id is not registered with the router.
    UnknownClient(ClientId),
    /// The client has not completed the key exchange.
    ExchangeIncomplete,
    /// Decryption/authentication failure (tampering or replay).
    Crypto(CryptoError),
    /// The router's enclave refused the call (destroyed/aborted).
    Enclave(SgxError),
}

impl fmt::Display for ScbrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScbrError::UnknownClient(id) => write!(f, "unknown client {}", id.0),
            ScbrError::ExchangeIncomplete => write!(f, "key exchange not completed"),
            ScbrError::Crypto(e) => write!(f, "cryptographic failure: {e}"),
            ScbrError::Enclave(e) => write!(f, "enclave failure: {e}"),
        }
    }
}

impl StdError for ScbrError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ScbrError::Crypto(e) => Some(e),
            ScbrError::Enclave(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for ScbrError {
    fn from(e: CryptoError) -> Self {
        ScbrError::Crypto(e)
    }
}

impl From<SgxError> for ScbrError {
    fn from(e: SgxError) -> Self {
        ScbrError::Enclave(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(!ScbrError::UnknownClient(ClientId(3)).to_string().is_empty());
        assert!(!ScbrError::ExchangeIncomplete.to_string().is_empty());
        let e: ScbrError = CryptoError::AuthenticationFailed.into();
        assert!(!e.to_string().is_empty());
    }
}
