//! Deterministic workload generation for the SCBR experiments.
//!
//! The paper evaluates SCBR "with several workloads to observe the sources
//! of performance overheads" (§V-B); Figure 3 sweeps the subscription
//! database from small sizes past the 128 MiB EPC. This module generates
//! reproducible subscription databases of a target byte size and matching
//! publication streams.

use crate::types::{Op, Predicate, Publication, Subscription, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a generated workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Cardinality of the `topic` partition attribute.
    pub topics: i64,
    /// Numeric attributes (beyond `topic`) predicates may constrain.
    pub extra_attrs: u32,
    /// Probability that a subscription constrains a given extra attribute.
    pub predicate_density: f64,
    /// Values are drawn uniformly from `0..value_range`.
    pub value_range: i64,
    /// Opaque subscriber payload bytes attached to each subscription.
    pub payload_bytes: usize,
    /// RNG seed (workloads are fully deterministic given the spec).
    pub seed: u64,
}

impl WorkloadSpec {
    /// The spec used to regenerate Figure 3: ~256-byte subscriptions,
    /// 64 topics, three numeric attributes.
    #[must_use]
    pub fn fig3() -> Self {
        WorkloadSpec {
            topics: 64,
            extra_attrs: 3,
            predicate_density: 0.75,
            value_range: 1000,
            payload_bytes: 160,
            seed: 42,
        }
    }

    fn attr_name(i: u32) -> String {
        format!("a{i}")
    }

    fn generate_subscription(&self, rng: &mut StdRng) -> Subscription {
        let mut predicates = vec![Predicate::new(
            "topic",
            Op::Eq,
            Value::Int(rng.gen_range(0..self.topics)),
        )];
        for i in 0..self.extra_attrs {
            if rng.gen_bool(self.predicate_density) {
                let op = if rng.gen_bool(0.5) { Op::Ge } else { Op::Le };
                predicates.push(Predicate::new(
                    &Self::attr_name(i),
                    op,
                    Value::Int(rng.gen_range(0..self.value_range)),
                ));
            }
        }
        Subscription::new(predicates).with_payload(vec![0xa5; self.payload_bytes])
    }

    /// Generates exactly `n` subscriptions.
    #[must_use]
    pub fn subscriptions(&self, n: usize) -> Vec<Subscription> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..n)
            .map(|_| self.generate_subscription(&mut rng))
            .collect()
    }

    /// Generates subscriptions until their combined footprint reaches
    /// `target_bytes` (the Figure 3 x-axis).
    #[must_use]
    pub fn subscriptions_for_db_size(&self, target_bytes: u64) -> Vec<Subscription> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        let mut total = 0u64;
        while total < target_bytes {
            let sub = self.generate_subscription(&mut rng);
            total += sub.footprint() as u64;
            out.push(sub);
        }
        out
    }

    /// Generates `n` publications carrying every attribute (a different
    /// seed stream from the subscriptions).
    #[must_use]
    pub fn publications(&self, n: usize) -> Vec<Publication> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        (0..n)
            .map(|_| {
                let mut publication =
                    Publication::new().with("topic", Value::Int(rng.gen_range(0..self.topics)));
                for i in 0..self.extra_attrs {
                    publication = publication.with(
                        &Self::attr_name(i),
                        Value::Int(rng.gen_range(0..self.value_range)),
                    );
                }
                publication
            })
            .collect()
    }

    /// Mean subscription footprint in bytes (diagnostics; sampled).
    #[must_use]
    pub fn mean_footprint(&self) -> f64 {
        let sample = self.subscriptions(256);
        sample.iter().map(|s| s.footprint() as f64).sum::<f64>() / sample.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let spec = WorkloadSpec::fig3();
        assert_eq!(spec.subscriptions(50), spec.subscriptions(50));
        assert_eq!(spec.publications(50), spec.publications(50));
        let other = WorkloadSpec {
            seed: 43,
            ..WorkloadSpec::fig3()
        };
        assert_ne!(spec.subscriptions(50), other.subscriptions(50));
    }

    #[test]
    fn db_size_targeting() {
        let spec = WorkloadSpec::fig3();
        let target = 1 << 20;
        let subs = spec.subscriptions_for_db_size(target);
        let total: u64 = subs.iter().map(|s| s.footprint() as u64).sum();
        assert!(total >= target);
        assert!(total < target + 1024, "overshoot bounded by one sub");
    }

    #[test]
    fn every_subscription_has_a_topic() {
        let spec = WorkloadSpec::fig3();
        for sub in spec.subscriptions(100) {
            assert!(sub
                .predicates
                .iter()
                .any(|p| p.attr == "topic" && p.op == Op::Eq));
        }
    }

    #[test]
    fn publications_carry_all_attrs() {
        let spec = WorkloadSpec::fig3();
        for publication in spec.publications(20) {
            assert!(publication.attrs.contains_key("topic"));
            for i in 0..spec.extra_attrs {
                assert!(publication.attrs.contains_key(&format!("a{i}")));
            }
        }
    }

    #[test]
    fn workload_produces_matches() {
        use crate::index::{NaiveIndex, SubscriptionIndex};
        use crate::types::SubId;
        let spec = WorkloadSpec::fig3();
        let mut index = NaiveIndex::new();
        for (i, sub) in spec.subscriptions(2000).into_iter().enumerate() {
            index.insert(SubId(i as u64), sub, i as u64 * 256);
        }
        let mut total_matches = 0usize;
        for publication in spec.publications(50) {
            total_matches += index.match_publication(&publication, &mut |_| {}).len();
        }
        // ~2000/64 subs per topic, ~30-50% match within topic.
        assert!(
            total_matches > 100,
            "workload too sparse: {total_matches} matches"
        );
    }

    #[test]
    fn mean_footprint_reasonable() {
        let spec = WorkloadSpec::fig3();
        let mean = spec.mean_footprint();
        assert!(mean > 200.0 && mean < 400.0, "mean footprint {mean}");
    }
}
