//! The matching engine with a simulated memory layout.
//!
//! The engine stores subscriptions in a bump-allocated arena of simulated
//! memory and reports every node visit to the [`MemorySim`], which charges
//! cache, MEE, and EPC-paging costs. Running the *same* engine code against
//! a native-domain and an enclave-domain simulator is how benchmark E1
//! regenerates the paper's Figure 3.
//!
//! Two [`Layout`] policies are available. [`Layout::ArrivalOrder`] packs
//! subscriptions in arrival order — a topic's subscribers end up scattered
//! across the whole arena, so a matching pass touches many pages.
//! [`Layout::Clustered`] implements the paper's stated future work ("we
//! intend to optimise our data structures to avoid paging and cache
//! misses"): subscriptions sharing an equality value on the cluster
//! attribute are packed into dedicated chunks, so a matching pass touches
//! a compact page range. Benchmark E8 quantifies the effect.

use crate::index::SubscriptionIndex;
use crate::types::{Op, Publication, SubId, Subscription, Value};
use securecloud_sgx::mem::{MemorySim, Region};
use securecloud_telemetry::{Counter, Telemetry};
use std::collections::HashMap;

/// Arena chunk size: subscriptions are packed into these.
const ARENA_CHUNK_BYTES: u64 = 1 << 20;

/// Per-cluster arena chunk size (smaller, to bound waste across many
/// clusters).
const CLUSTER_CHUNK_BYTES: u64 = 128 << 10;

/// Memory layout policy for the subscription arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Layout {
    /// Pack subscriptions in arrival order (the baseline the paper
    /// measured).
    ArrivalOrder,
    /// Pack subscriptions clustered by their equality predicate on the
    /// given attribute (the paper's proposed paging optimisation).
    Clustered(String),
}

/// Bytes of a node actually read while evaluating its predicates (header +
/// predicate block; the payload is not touched during matching).
const MATCH_READ_BYTES: u32 = 128;

/// Counters accumulated by a [`MatchEngine`] (snapshot; the live handles
/// saturate rather than wrap).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Publications processed.
    pub publications: u64,
    /// Total subscription matches produced.
    pub matches: u64,
    /// Index nodes visited.
    pub nodes_visited: u64,
    /// Predicates evaluated.
    pub predicates_evaluated: u64,
}

/// Live metric handles behind [`EngineStats`].
#[derive(Debug, Clone, Default)]
struct EngineMetrics {
    publications: Counter,
    matches: Counter,
    nodes_visited: Counter,
    predicates_evaluated: Counter,
}

/// A content-based matching engine over an index `I`.
///
/// The engine does not own a memory simulator; callers pass the domain they
/// run in (`MemorySim::native` baseline or an enclave's memory).
#[derive(Debug)]
pub struct MatchEngine<I> {
    index: I,
    layout: Layout,
    chunks: Vec<Region>,
    chunk_used: u64,
    cluster_arenas: HashMap<ClusterKey, (u64, u64)>, // (next offset, end)
    db_bytes: u64,
    next_id: u64,
    metrics: EngineMetrics,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ClusterKey {
    Int(i64),
    Str(String),
    General,
}

impl<I: SubscriptionIndex> MatchEngine<I> {
    /// Creates an engine over `index` with arrival-order layout.
    #[must_use]
    pub fn new(index: I) -> Self {
        Self::with_layout(index, Layout::ArrivalOrder)
    }

    /// Creates an engine with an explicit arena [`Layout`].
    #[must_use]
    pub fn with_layout(index: I, layout: Layout) -> Self {
        MatchEngine {
            index,
            layout,
            chunks: Vec::new(),
            chunk_used: 0,
            cluster_arenas: HashMap::new(),
            db_bytes: 0,
            next_id: 0,
            metrics: EngineMetrics::default(),
        }
    }

    /// Adopts this engine's counters into the shared registry, labeled with
    /// the memory `domain` it runs against (`"native"` / `"enclave"`), so a
    /// Figure 3 run exports both sides distinctly.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry, domain: &str) {
        let labels: [(&str, &str); 1] = [("domain", domain)];
        let registry = telemetry.registry();
        registry.adopt_counter(
            "securecloud_scbr_publications_total",
            &labels,
            &self.metrics.publications,
        );
        registry.adopt_counter(
            "securecloud_scbr_matches_total",
            &labels,
            &self.metrics.matches,
        );
        registry.adopt_counter(
            "securecloud_scbr_nodes_visited_total",
            &labels,
            &self.metrics.nodes_visited,
        );
        registry.adopt_counter(
            "securecloud_scbr_predicates_evaluated_total",
            &labels,
            &self.metrics.predicates_evaluated,
        );
    }

    fn cluster_key(&self, sub: &Subscription) -> ClusterKey {
        let Layout::Clustered(attr) = &self.layout else {
            return ClusterKey::General;
        };
        for p in &sub.predicates {
            if &p.attr == attr && p.op == Op::Eq {
                match &p.value {
                    Value::Int(v) => return ClusterKey::Int(*v),
                    Value::Str(s) => return ClusterKey::Str(s.clone()),
                    Value::Float(_) => {}
                }
            }
        }
        ClusterKey::General
    }

    fn alloc_clustered(&mut self, mem: &mut MemorySim, key: ClusterKey, bytes: u64) -> u64 {
        let need = bytes.min(CLUSTER_CHUNK_BYTES);
        match self.cluster_arenas.get_mut(&key) {
            Some((next, end)) if *next + need <= *end => {
                let offset = *next;
                *next += bytes.min(*end - *next);
                offset
            }
            _ => {
                let region = mem.alloc(CLUSTER_CHUNK_BYTES);
                let offset = region.base();
                self.cluster_arenas.insert(
                    key,
                    (
                        offset + bytes.min(CLUSTER_CHUNK_BYTES),
                        offset + region.len(),
                    ),
                );
                offset
            }
        }
    }

    /// The subscription database footprint in bytes.
    #[must_use]
    pub fn db_bytes(&self) -> u64 {
        self.db_bytes
    }

    /// Number of stored subscriptions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the engine holds no subscriptions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Accumulated counters, snapshotted from the live metric handles.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            publications: self.metrics.publications.value(),
            matches: self.metrics.matches.value(),
            nodes_visited: self.metrics.nodes_visited.value(),
            predicates_evaluated: self.metrics.predicates_evaluated.value(),
        }
    }

    /// The underlying index (diagnostics).
    #[must_use]
    pub fn index(&self) -> &I {
        &self.index
    }

    fn alloc(&mut self, mem: &mut MemorySim, bytes: u64) -> u64 {
        let need = bytes.min(ARENA_CHUNK_BYTES);
        if self
            .chunks
            .last()
            .is_none_or(|c| self.chunk_used + need > c.len())
        {
            self.chunks.push(mem.alloc(ARENA_CHUNK_BYTES));
            self.chunk_used = 0;
        }
        let chunk = self.chunks.last().expect("chunk pushed above");
        let offset = chunk.base() + self.chunk_used;
        self.chunk_used += bytes.min(ARENA_CHUNK_BYTES - (self.chunk_used % ARENA_CHUNK_BYTES));
        offset
    }

    /// Stores a subscription, charging the write into the arena.
    pub fn subscribe(&mut self, mem: &mut MemorySim, sub: Subscription) -> SubId {
        let bytes = sub.footprint() as u64;
        let offset = match self.layout {
            Layout::ArrivalOrder => self.alloc(mem, bytes),
            Layout::Clustered(_) => {
                let key = self.cluster_key(&sub);
                self.alloc_clustered(mem, key, bytes)
            }
        };
        mem.touch(offset, bytes as usize);
        mem.charge_ops(sub.predicates.len() as u64 + 4);
        self.db_bytes += bytes;
        let id = SubId(self.next_id);
        self.next_id += 1;
        self.index.insert(id, sub, offset);
        id
    }

    /// Matches a publication against the database, charging every node
    /// visit (memory reads and predicate evaluations).
    pub fn publish(&mut self, mem: &mut MemorySim, publication: &Publication) -> Vec<SubId> {
        let mut nodes_visited = 0u64;
        let mut predicates = 0u64;
        let matches = self.index.match_publication(publication, &mut |v| {
            nodes_visited += 1;
            predicates += u64::from(v.predicates_evaluated);
            mem.touch(v.offset, v.size.min(MATCH_READ_BYTES) as usize);
        });
        mem.charge_ops(predicates);
        self.metrics.publications.inc();
        self.metrics.matches.add(matches.len() as u64);
        self.metrics.nodes_visited.add(nodes_visited);
        self.metrics.predicates_evaluated.add(predicates);
        matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{NaiveIndex, PosetIndex};
    use crate::types::{Op, Predicate, Value};
    use securecloud_sgx::costs::{CostModel, MemoryGeometry};

    fn native_mem() -> MemorySim {
        MemorySim::native(MemoryGeometry::sgx_v1(), CostModel::sgx_v1())
    }

    fn enclave_mem() -> MemorySim {
        MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::sgx_v1())
    }

    fn sub(topic: i64, lo: i64) -> Subscription {
        Subscription::new(vec![
            Predicate::new("topic", Op::Eq, Value::Int(topic)),
            Predicate::new("v", Op::Ge, Value::Int(lo)),
        ])
        .with_payload(vec![0u8; 128])
    }

    #[test]
    fn subscribe_and_publish() {
        let mut mem = native_mem();
        let mut engine = MatchEngine::new(PosetIndex::with_partition_attr("topic"));
        let id1 = engine.subscribe(&mut mem, sub(1, 10));
        let id2 = engine.subscribe(&mut mem, sub(1, 50));
        let _id3 = engine.subscribe(&mut mem, sub(2, 0));
        let p = Publication::new()
            .with("topic", Value::Int(1))
            .with("v", Value::Int(30));
        let mut matches = engine.publish(&mut mem, &p);
        matches.sort();
        assert_eq!(matches, vec![id1]);
        let p2 = Publication::new()
            .with("topic", Value::Int(1))
            .with("v", Value::Int(60));
        let mut matches = engine.publish(&mut mem, &p2);
        matches.sort();
        assert_eq!(matches, vec![id1, id2]);
        let s = engine.stats();
        assert_eq!(s.publications, 2);
        assert_eq!(s.matches, 3);
        assert!(s.nodes_visited >= 3);
        assert!(s.predicates_evaluated > 0);
        assert_eq!(engine.len(), 3);
    }

    #[test]
    fn db_bytes_tracks_footprints() {
        let mut mem = native_mem();
        let mut engine = MatchEngine::new(NaiveIndex::new());
        assert!(engine.is_empty());
        let s = sub(0, 0);
        let expected = s.footprint() as u64;
        engine.subscribe(&mut mem, s);
        assert_eq!(engine.db_bytes(), expected);
    }

    #[test]
    fn arena_spans_chunks() {
        let mut mem = native_mem();
        let mut engine = MatchEngine::new(NaiveIndex::new());
        // ~2.5 MiB of subscriptions across 1 MiB chunks.
        for i in 0..1000 {
            engine.subscribe(
                &mut mem,
                Subscription::new(vec![Predicate::new("v", Op::Ge, Value::Int(i))])
                    .with_payload(vec![0u8; 2500]),
            );
        }
        assert!(engine.db_bytes() > 2 << 20);
        // All offsets distinct and non-overlapping: match everything and
        // check visit count equals subscription count.
        let p = Publication::new().with("v", Value::Int(1_000_000));
        let matches = engine.publish(&mut mem, &p);
        assert_eq!(matches.len(), 1000);
    }

    #[test]
    fn clustered_layout_matches_same_results() {
        let mut mem_a = native_mem();
        let mut mem_b = native_mem();
        let mut arrival = MatchEngine::new(PosetIndex::with_partition_attr("topic"));
        let mut clustered = MatchEngine::with_layout(
            PosetIndex::with_partition_attr("topic"),
            Layout::Clustered("topic".into()),
        );
        for i in 0..300 {
            arrival.subscribe(&mut mem_a, sub(i % 7, i));
            clustered.subscribe(&mut mem_b, sub(i % 7, i));
        }
        for v in [5i64, 100, 250] {
            let p = Publication::new()
                .with("topic", Value::Int(2))
                .with("v", Value::Int(v));
            let mut a = arrival.publish(&mut mem_a, &p);
            let mut b = clustered.publish(&mut mem_b, &p);
            a.sort();
            b.sort();
            assert_eq!(a, b, "layout must not change matching semantics");
        }
    }

    #[test]
    fn clustered_layout_reduces_epc_faults() {
        // A DB larger than a tiny EPC: matching one topic touches scattered
        // pages under arrival order but a compact range under clustering.
        let geometry = securecloud_sgx::costs::MemoryGeometry {
            line_bytes: 64,
            llc_bytes: 64 << 10,
            page_bytes: 4096,
            epc_total_bytes: 1 << 20,
            epc_reserved_bytes: 256 << 10,
        };
        let run = |layout: Layout| -> u64 {
            let mut mem = MemorySim::enclave(geometry, CostModel::sgx_v1());
            let mut engine =
                MatchEngine::with_layout(PosetIndex::with_partition_attr("topic"), layout);
            for i in 0..8_000i64 {
                engine.subscribe(&mut mem, sub(i % 16, i));
            }
            // High values match (and therefore traverse) the entire
            // containment chain of the topic.
            let pubs: Vec<Publication> = (0..24)
                .map(|i| {
                    Publication::new()
                        .with("topic", Value::Int(i % 16))
                        .with("v", Value::Int(1_000_000))
                })
                .collect();
            for p in &pubs {
                engine.publish(&mut mem, p);
            }
            mem.reset_metrics();
            for p in &pubs {
                engine.publish(&mut mem, p);
            }
            mem.stats().epc_faults
        };
        let arrival_faults = run(Layout::ArrivalOrder);
        let clustered_faults = run(Layout::Clustered("topic".into()));
        assert!(
            clustered_faults * 3 < arrival_faults,
            "clustering should cut faults: arrival {arrival_faults}, clustered {clustered_faults}"
        );
    }

    #[test]
    fn enclave_costs_exceed_native_for_identical_workload() {
        let mut native = native_mem();
        let mut enclave = enclave_mem();
        let mut engine_native = MatchEngine::new(PosetIndex::with_partition_attr("topic"));
        let mut engine_enclave = MatchEngine::new(PosetIndex::with_partition_attr("topic"));
        for i in 0..500 {
            engine_native.subscribe(&mut native, sub(i % 10, i));
            engine_enclave.subscribe(&mut enclave, sub(i % 10, i));
        }
        let p = Publication::new()
            .with("topic", Value::Int(3))
            .with("v", Value::Int(1_000));
        let native_before = native.cycles();
        let enclave_before = enclave.cycles();
        let m1 = engine_native.publish(&mut native, &p);
        let m2 = engine_enclave.publish(&mut enclave, &p);
        assert_eq!(m1, m2, "domains must agree on matching results");
        let native_cost = native.cycles() - native_before;
        let enclave_cost = enclave.cycles() - enclave_before;
        assert!(enclave_cost >= native_cost);
    }
}
