//! A multi-broker routing overlay.
//!
//! SCBR routers are deployed as an overlay of brokers; subscriptions
//! propagate toward the root and publications are routed along the reverse
//! paths. The covering relation earns its keep here: a broker forwards a
//! subscription upstream **only if no already-forwarded subscription
//! covers it** — covered subscriptions ride on existing routing state, so
//! control traffic shrinks (the classic Siena/SCBR optimisation).
//!
//! The overlay is a tree (each broker has at most one parent). A
//! publication may enter at any broker: it is delivered to local matching
//! subscribers, routed down into every child subtree whose forwarded
//! interests match, and routed up to the parent (which repeats the
//! process, excluding the subtree it came from).

use crate::types::{covers_normalised, Normalised, Publication, SubId, Subscription};
use std::collections::HashMap;

/// Identifier of a broker in the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BrokerId(pub usize);

/// Overlay-wide statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverlayStats {
    /// Subscription-forward messages sent between brokers.
    pub subscription_forwards: u64,
    /// Subscription forwards suppressed because a covering subscription
    /// had already been forwarded.
    pub forwards_suppressed: u64,
    /// Publication messages sent between brokers.
    pub publication_hops: u64,
}

#[derive(Debug)]
struct Interest {
    sub: Subscription,
    norm: Normalised,
}

#[derive(Debug)]
struct BrokerNode {
    parent: Option<usize>,
    children: Vec<usize>,
    /// Subscriptions registered by local clients.
    local: Vec<(SubId, Interest)>,
    /// Interests forwarded to us by each child (aggregate of its subtree).
    child_interest: HashMap<usize, Vec<Interest>>,
    /// Interests we forwarded to our parent.
    forwarded_up: Vec<Interest>,
}

/// A tree overlay of content-based routers.
#[derive(Debug)]
pub struct Overlay {
    brokers: Vec<BrokerNode>,
    next_sub: u64,
    stats: OverlayStats,
}

impl Overlay {
    /// Builds an overlay from a parent vector. `parent_of[i]` is the parent
    /// of broker `i` (`None` for the root).
    ///
    /// # Panics
    ///
    /// Panics if a parent index is out of range or a broker is its own
    /// parent.
    #[must_use]
    pub fn new(parent_of: &[Option<usize>]) -> Self {
        let mut brokers: Vec<BrokerNode> = parent_of
            .iter()
            .enumerate()
            .map(|(i, &parent)| {
                if let Some(p) = parent {
                    assert!(p < parent_of.len(), "parent {p} out of range");
                    assert_ne!(p, i, "broker {i} cannot be its own parent");
                }
                BrokerNode {
                    parent,
                    children: Vec::new(),
                    local: Vec::new(),
                    child_interest: HashMap::new(),
                    forwarded_up: Vec::new(),
                }
            })
            .collect();
        for (i, parent) in parent_of.iter().enumerate() {
            if let Some(p) = parent {
                brokers[*p].children.push(i);
            }
        }
        Overlay {
            brokers,
            next_sub: 0,
            stats: OverlayStats::default(),
        }
    }

    /// A chain of `n` brokers: 0 is the root, each `i` hangs under `i-1`.
    #[must_use]
    pub fn chain(n: usize) -> Self {
        let parents: Vec<Option<usize>> = (0..n).map(|i| i.checked_sub(1)).collect();
        Self::new(&parents)
    }

    /// Number of brokers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.brokers.len()
    }

    /// Whether the overlay is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.brokers.is_empty()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> OverlayStats {
        self.stats
    }

    /// Registers a client subscription at `broker` and propagates it
    /// toward the root (with covering-based suppression).
    ///
    /// # Panics
    ///
    /// Panics if `broker` is out of range.
    pub fn subscribe(&mut self, broker: BrokerId, sub: Subscription) -> SubId {
        let id = SubId(self.next_sub);
        self.next_sub += 1;
        let norm = sub.normalised();
        self.brokers[broker.0].local.push((
            id,
            Interest {
                sub: sub.clone(),
                norm: norm.clone(),
            },
        ));
        // Propagate up the chain until covered or at the root.
        let mut current = broker.0;
        let mut carried = Interest { sub, norm };
        while let Some(parent) = self.brokers[current].parent {
            let covered = self.brokers[current]
                .forwarded_up
                .iter()
                .any(|f| covers_normalised(&f.norm, &carried.norm));
            if covered {
                self.stats.forwards_suppressed += 1;
                return id;
            }
            self.stats.subscription_forwards += 1;
            self.brokers[current].forwarded_up.push(Interest {
                sub: carried.sub.clone(),
                norm: carried.norm.clone(),
            });
            self.brokers[parent]
                .child_interest
                .entry(current)
                .or_default()
                .push(Interest {
                    sub: carried.sub.clone(),
                    norm: carried.norm.clone(),
                });
            current = parent;
            carried = Interest {
                sub: carried.sub,
                norm: carried.norm,
            };
        }
        id
    }

    /// Publishes at `broker`; returns every matching subscription id in the
    /// overlay (in delivery order).
    ///
    /// # Panics
    ///
    /// Panics if `broker` is out of range.
    pub fn publish(&mut self, broker: BrokerId, publication: &Publication) -> Vec<SubId> {
        let mut delivered = Vec::new();
        self.route(broker.0, None, publication, &mut delivered);
        delivered
    }

    fn route(
        &mut self,
        at: usize,
        came_from: Option<usize>,
        publication: &Publication,
        delivered: &mut Vec<SubId>,
    ) {
        // Local deliveries.
        for (id, interest) in &self.brokers[at].local {
            if interest.sub.matches(publication) {
                delivered.push(*id);
            }
        }
        // Downward: only into children whose forwarded interests match.
        let children: Vec<usize> = self.brokers[at].children.clone();
        for child in children {
            if Some(child) == came_from {
                continue;
            }
            let interested = self.brokers[at]
                .child_interest
                .get(&child)
                .is_some_and(|interests| interests.iter().any(|i| i.sub.matches(publication)));
            if interested {
                self.stats.publication_hops += 1;
                self.route(child, Some(at), publication, delivered);
            }
        }
        // Upward: the parent may have interested subtrees elsewhere.
        if let Some(parent) = self.brokers[at].parent {
            if Some(parent) != came_from {
                self.stats.publication_hops += 1;
                self.route(parent, Some(at), publication, delivered);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Op, Predicate, Value};

    fn sub(attr: &str, lo: i64) -> Subscription {
        Subscription::new(vec![Predicate::new(attr, Op::Ge, Value::Int(lo))])
    }

    fn publication(attr: &str, v: i64) -> Publication {
        Publication::new().with(attr, Value::Int(v))
    }

    /// root(0) - mid(1) - leaf(2); plus a second leaf(3) under root.
    fn overlay() -> Overlay {
        Overlay::new(&[None, Some(0), Some(1), Some(0)])
    }

    #[test]
    fn delivery_is_location_transparent() {
        let mut o = overlay();
        let s_leaf = o.subscribe(BrokerId(2), sub("x", 10));
        let s_other = o.subscribe(BrokerId(3), sub("x", 50));
        // Publish from every broker: the same subscribers match.
        for b in 0..4 {
            let mut got = o.publish(BrokerId(b), &publication("x", 60));
            got.sort();
            assert_eq!(got, vec![s_leaf, s_other], "published at broker {b}");
            let got = o.publish(BrokerId(b), &publication("x", 20));
            assert_eq!(got, vec![s_leaf]);
            assert!(o.publish(BrokerId(b), &publication("x", 5)).is_empty());
        }
    }

    #[test]
    fn covering_suppresses_upstream_forwards() {
        let mut o = Overlay::chain(3);
        // Broad subscription at the leaf propagates 2 hops.
        o.subscribe(BrokerId(2), sub("x", 0));
        assert_eq!(o.stats().subscription_forwards, 2);
        // A narrower subscription at the same leaf is covered: no forwards.
        o.subscribe(BrokerId(2), sub("x", 100));
        assert_eq!(o.stats().subscription_forwards, 2);
        assert_eq!(o.stats().forwards_suppressed, 1);
        // It still receives matching publications from the root.
        let got = o.publish(BrokerId(0), &publication("x", 500));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn publications_do_not_flood_uninterested_subtrees() {
        let mut o = overlay();
        o.subscribe(BrokerId(2), sub("x", 0));
        // Nothing under broker 3: publishing at root routes only to the
        // interested subtree.
        let before = o.stats().publication_hops;
        o.publish(BrokerId(0), &publication("x", 1));
        let hops = o.stats().publication_hops - before;
        assert_eq!(hops, 2, "root->mid->leaf only, not root->leaf3");
    }

    #[test]
    fn agrees_with_flat_matching_on_random_workload() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        // A 7-broker binary tree.
        let mut o = Overlay::new(&[None, Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)]);
        let mut flat: Vec<(SubId, Subscription)> = Vec::new();
        for _ in 0..200 {
            let s = sub("x", rng.gen_range(0..100));
            let broker = BrokerId(rng.gen_range(0..7));
            let id = o.subscribe(broker, s.clone());
            flat.push((id, s));
        }
        for _ in 0..100 {
            let p = publication("x", rng.gen_range(0..120));
            let entry = BrokerId(rng.gen_range(0..7));
            let mut got = o.publish(entry, &p);
            got.sort();
            let mut want: Vec<SubId> = flat
                .iter()
                .filter(|(_, s)| s.matches(&p))
                .map(|(id, _)| *id)
                .collect();
            want.sort();
            assert_eq!(got, want);
        }
        assert!(o.stats().forwards_suppressed > 0, "some covering expected");
    }

    #[test]
    fn chain_construction() {
        let o = Overlay::chain(5);
        assert_eq!(o.len(), 5);
        assert!(!o.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot be its own parent")]
    fn self_parent_rejected() {
        let _ = Overlay::new(&[Some(0)]);
    }
}
