//! A multi-broker routing overlay.
//!
//! SCBR routers are deployed as an overlay of brokers; subscriptions
//! propagate toward the root and publications are routed along the reverse
//! paths. The covering relation earns its keep here: a broker forwards a
//! subscription upstream **only if no already-forwarded subscription
//! covers it** — covered subscriptions ride on existing routing state, so
//! control traffic shrinks (the classic Siena/SCBR optimisation).
//!
//! The overlay is a tree (each broker has at most one parent). A
//! publication may enter at any broker: it is delivered to local matching
//! subscribers, routed down into every child subtree whose forwarded
//! interests match, and routed up to the parent (which repeats the
//! process, excluding the subtree it came from).

use crate::types::{covers_normalised, Normalised, Publication, SubId, Subscription};
use securecloud_telemetry::{Counter, OwnedSpan, Telemetry};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a broker in the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BrokerId(pub usize);

/// Rejected overlay topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum OverlayError {
    /// `parent_of[broker]` points past the end of the vector.
    ParentOutOfRange {
        /// The offending broker.
        broker: usize,
        /// Its out-of-range parent index.
        parent: usize,
    },
    /// A broker listed itself as its parent.
    SelfParent {
        /// The offending broker.
        broker: usize,
    },
    /// The parent vector contains a cycle (no path to a root).
    Cycle {
        /// A broker on the cycle.
        broker: usize,
    },
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlayError::ParentOutOfRange { broker, parent } => {
                write!(f, "broker {broker}: parent {parent} out of range")
            }
            OverlayError::SelfParent { broker } => {
                write!(f, "broker {broker} cannot be its own parent")
            }
            OverlayError::Cycle { broker } => {
                write!(f, "broker {broker} is on a parent cycle")
            }
        }
    }
}

impl std::error::Error for OverlayError {}

/// Overlay-wide statistics snapshot. All counters saturate at `u64::MAX`
/// instead of wrapping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverlayStats {
    /// Subscription-forward messages sent between brokers.
    pub subscription_forwards: u64,
    /// Subscription forwards suppressed because a covering subscription
    /// had already been forwarded.
    pub forwards_suppressed: u64,
    /// Publication messages sent between brokers.
    pub publication_hops: u64,
    /// Subscription forwards re-sent while recovering from a broker
    /// failure (re-parenting orphaned subtrees).
    pub recovery_forwards: u64,
}

/// Live metric handles; [`Overlay::stats`] reads them and
/// [`Overlay::set_telemetry`] adopts the same handles into the registry.
#[derive(Debug, Clone, Default)]
struct OverlayMetrics {
    subscription_forwards: Counter,
    forwards_suppressed: Counter,
    publication_hops: Counter,
    recovery_forwards: Counter,
}

impl OverlayMetrics {
    fn adopt_into(&self, telemetry: &Telemetry) {
        let registry = telemetry.registry();
        registry.adopt_counter(
            "securecloud_scbr_subscription_forwards_total",
            &[],
            &self.subscription_forwards,
        );
        registry.adopt_counter(
            "securecloud_scbr_forwards_suppressed_total",
            &[],
            &self.forwards_suppressed,
        );
        registry.adopt_counter(
            "securecloud_scbr_publication_hops_total",
            &[],
            &self.publication_hops,
        );
        registry.adopt_counter(
            "securecloud_scbr_recovery_forwards_total",
            &[],
            &self.recovery_forwards,
        );
    }
}

#[derive(Debug)]
struct Interest {
    sub: Subscription,
    norm: Normalised,
}

#[derive(Debug)]
struct BrokerNode {
    parent: Option<usize>,
    children: Vec<usize>,
    /// Subscriptions registered by local clients.
    local: Vec<(SubId, Interest)>,
    /// Interests forwarded to us by each child (aggregate of its subtree).
    child_interest: HashMap<usize, Vec<Interest>>,
    /// Interests we forwarded to our parent.
    forwarded_up: Vec<Interest>,
    /// Failed brokers are detached from the tree and route nothing.
    failed: bool,
}

/// A tree overlay of content-based routers.
#[derive(Debug)]
pub struct Overlay {
    brokers: Vec<BrokerNode>,
    next_sub: u64,
    metrics: OverlayMetrics,
    telemetry: Option<Arc<Telemetry>>,
}

impl Overlay {
    /// Builds an overlay from a parent vector. `parent_of[i]` is the parent
    /// of broker `i` (`None` for the root).
    ///
    /// # Errors
    ///
    /// [`OverlayError`] if a parent index is out of range, a broker is its
    /// own parent, or the parent vector contains a cycle.
    pub fn try_new(parent_of: &[Option<usize>]) -> Result<Self, OverlayError> {
        for (i, &parent) in parent_of.iter().enumerate() {
            if let Some(p) = parent {
                if p >= parent_of.len() {
                    return Err(OverlayError::ParentOutOfRange {
                        broker: i,
                        parent: p,
                    });
                }
                if p == i {
                    return Err(OverlayError::SelfParent { broker: i });
                }
            }
        }
        // Every broker must reach a root in at most `len` hops; a longer
        // walk means the parent pointers loop (routing would recurse
        // forever).
        for start in 0..parent_of.len() {
            let mut current = start;
            let mut hops = 0;
            while let Some(p) = parent_of[current] {
                current = p;
                hops += 1;
                if hops > parent_of.len() {
                    return Err(OverlayError::Cycle { broker: start });
                }
            }
        }
        let mut brokers: Vec<BrokerNode> = parent_of
            .iter()
            .map(|&parent| BrokerNode {
                parent,
                children: Vec::new(),
                local: Vec::new(),
                child_interest: HashMap::new(),
                forwarded_up: Vec::new(),
                failed: false,
            })
            .collect();
        for (i, parent) in parent_of.iter().enumerate() {
            if let Some(p) = parent {
                brokers[*p].children.push(i);
            }
        }
        Ok(Overlay {
            brokers,
            next_sub: 0,
            metrics: OverlayMetrics::default(),
            telemetry: None,
        })
    }

    /// Attaches shared telemetry: routing counters are adopted into the
    /// registry and broker failures / publication routing emit spans.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.metrics.adopt_into(&telemetry);
        self.telemetry = Some(telemetry);
    }

    /// Builds an overlay from a parent vector, panicking on an invalid
    /// topology. Prefer [`Overlay::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if a parent index is out of range, a broker is its own
    /// parent, or the parent vector contains a cycle.
    #[must_use]
    pub fn new(parent_of: &[Option<usize>]) -> Self {
        Self::try_new(parent_of).unwrap_or_else(|e| panic!("{e}"))
    }

    /// A chain of `n` brokers: 0 is the root, each `i` hangs under `i-1`.
    #[must_use]
    pub fn chain(n: usize) -> Self {
        let parents: Vec<Option<usize>> = (0..n).map(|i| i.checked_sub(1)).collect();
        Self::new(&parents)
    }

    /// Number of brokers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.brokers.len()
    }

    /// Whether the overlay is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.brokers.is_empty()
    }

    /// Accumulated statistics, snapshotted from the live metric handles.
    #[must_use]
    pub fn stats(&self) -> OverlayStats {
        OverlayStats {
            subscription_forwards: self.metrics.subscription_forwards.value(),
            forwards_suppressed: self.metrics.forwards_suppressed.value(),
            publication_hops: self.metrics.publication_hops.value(),
            recovery_forwards: self.metrics.recovery_forwards.value(),
        }
    }

    /// Whether `broker` has failed.
    ///
    /// # Panics
    ///
    /// Panics if `broker` is out of range.
    #[must_use]
    pub fn is_failed(&self, broker: BrokerId) -> bool {
        self.brokers[broker.0].failed
    }

    /// Fails a broker: its local subscriptions are lost with it, its
    /// children are re-parented (to its parent, or — for a failed root —
    /// under the first child, which is promoted to root), and each orphaned
    /// subtree's forwarded interests are re-propagated up the new path with
    /// the usual covering suppression. Re-sent forwards are counted in
    /// [`OverlayStats::recovery_forwards`]. Publications keep flowing:
    /// every surviving local subscription remains reachable from every
    /// surviving broker. Failing an already-failed broker is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `broker` is out of range.
    pub fn fail_broker(&mut self, broker: BrokerId) {
        let failed = broker.0;
        assert!(failed < self.brokers.len(), "broker {failed} out of range");
        if self.brokers[failed].failed {
            return;
        }
        let _recovery_span = self.telemetry.clone().map(|t| {
            t.event(
                "scbr",
                "broker_failed",
                vec![("broker", format!("b{failed}"))],
            );
            OwnedSpan::open(t, "scbr", "recovery")
        });
        self.brokers[failed].failed = true;
        let parent = self.brokers[failed].parent.take();
        let children = std::mem::take(&mut self.brokers[failed].children);
        self.brokers[failed].local.clear();
        self.brokers[failed].child_interest.clear();
        self.brokers[failed].forwarded_up.clear();
        if let Some(p) = parent {
            self.brokers[p].children.retain(|&c| c != failed);
            self.brokers[p].child_interest.remove(&failed);
        }
        let (new_parent, orphans) = match parent {
            Some(p) => (Some(p), children),
            None => {
                // Root failure: promote the first child.
                let mut rest = children.into_iter();
                match rest.next() {
                    Some(promoted) => {
                        self.brokers[promoted].parent = None;
                        self.brokers[promoted].forwarded_up.clear();
                        (Some(promoted), rest.collect())
                    }
                    None => (None, Vec::new()),
                }
            }
        };
        let Some(new_parent) = new_parent else {
            return;
        };
        for orphan in orphans {
            self.brokers[orphan].parent = Some(new_parent);
            self.brokers[new_parent].children.push(orphan);
            // The orphan's aggregated subtree interest must reach the new
            // path toward the root; nothing above knows about it any more.
            let interests: Vec<(Subscription, Normalised)> = self.brokers[orphan]
                .forwarded_up
                .iter()
                .map(|i| (i.sub.clone(), i.norm.clone()))
                .collect();
            for (sub, norm) in interests {
                self.repropagate(orphan, sub, norm);
            }
        }
    }

    /// Re-sends one already-forwarded interest of `from` up its (new)
    /// parent path, installing routing state and stopping at the root or
    /// at the first covering forward.
    fn repropagate(&mut self, from: usize, sub: Subscription, norm: Normalised) {
        let mut current = from;
        while let Some(parent) = self.brokers[current].parent {
            self.metrics.recovery_forwards.inc();
            self.brokers[parent]
                .child_interest
                .entry(current)
                .or_default()
                .push(Interest {
                    sub: sub.clone(),
                    norm: norm.clone(),
                });
            let covered = self.brokers[parent]
                .forwarded_up
                .iter()
                .any(|f| covers_normalised(&f.norm, &norm));
            if covered {
                self.metrics.forwards_suppressed.inc();
                return;
            }
            if self.brokers[parent].parent.is_some() {
                self.brokers[parent].forwarded_up.push(Interest {
                    sub: sub.clone(),
                    norm: norm.clone(),
                });
            }
            current = parent;
        }
    }

    /// Registers a client subscription at `broker` and propagates it
    /// toward the root (with covering-based suppression).
    ///
    /// # Panics
    ///
    /// Panics if `broker` is out of range or has failed.
    pub fn subscribe(&mut self, broker: BrokerId, sub: Subscription) -> SubId {
        assert!(
            !self.brokers[broker.0].failed,
            "broker {} has failed",
            broker.0
        );
        let id = SubId(self.next_sub);
        self.next_sub += 1;
        let norm = sub.normalised();
        self.brokers[broker.0].local.push((
            id,
            Interest {
                sub: sub.clone(),
                norm: norm.clone(),
            },
        ));
        // Propagate up the chain until covered or at the root.
        let mut current = broker.0;
        let mut carried = Interest { sub, norm };
        while let Some(parent) = self.brokers[current].parent {
            let covered = self.brokers[current]
                .forwarded_up
                .iter()
                .any(|f| covers_normalised(&f.norm, &carried.norm));
            if covered {
                self.metrics.forwards_suppressed.inc();
                return id;
            }
            self.metrics.subscription_forwards.inc();
            self.brokers[current].forwarded_up.push(Interest {
                sub: carried.sub.clone(),
                norm: carried.norm.clone(),
            });
            self.brokers[parent]
                .child_interest
                .entry(current)
                .or_default()
                .push(Interest {
                    sub: carried.sub.clone(),
                    norm: carried.norm.clone(),
                });
            current = parent;
            carried = Interest {
                sub: carried.sub,
                norm: carried.norm,
            };
        }
        id
    }

    /// Publishes at `broker`; returns every matching subscription id in the
    /// overlay (in delivery order).
    ///
    /// # Panics
    ///
    /// Panics if `broker` is out of range or has failed.
    pub fn publish(&mut self, broker: BrokerId, publication: &Publication) -> Vec<SubId> {
        assert!(
            !self.brokers[broker.0].failed,
            "broker {} has failed",
            broker.0
        );
        let span = self.telemetry.clone().map(|t| {
            OwnedSpan::open_with(
                t,
                "scbr",
                "publish",
                vec![("entry_broker", format!("b{}", broker.0))],
            )
        });
        let mut delivered = Vec::new();
        self.route(broker.0, None, publication, &mut delivered);
        drop(span);
        delivered
    }

    fn route(
        &mut self,
        at: usize,
        came_from: Option<usize>,
        publication: &Publication,
        delivered: &mut Vec<SubId>,
    ) {
        // Local deliveries.
        for (id, interest) in &self.brokers[at].local {
            if interest.sub.matches(publication) {
                delivered.push(*id);
            }
        }
        // Downward: only into children whose forwarded interests match.
        let children: Vec<usize> = self.brokers[at].children.clone();
        for child in children {
            if Some(child) == came_from {
                continue;
            }
            let interested = self.brokers[at]
                .child_interest
                .get(&child)
                .is_some_and(|interests| interests.iter().any(|i| i.sub.matches(publication)));
            if interested {
                self.metrics.publication_hops.inc();
                self.route(child, Some(at), publication, delivered);
            }
        }
        // Upward: the parent may have interested subtrees elsewhere.
        if let Some(parent) = self.brokers[at].parent {
            if Some(parent) != came_from {
                self.metrics.publication_hops.inc();
                self.route(parent, Some(at), publication, delivered);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Op, Predicate, Value};

    fn sub(attr: &str, lo: i64) -> Subscription {
        Subscription::new(vec![Predicate::new(attr, Op::Ge, Value::Int(lo))])
    }

    fn publication(attr: &str, v: i64) -> Publication {
        Publication::new().with(attr, Value::Int(v))
    }

    /// root(0) - mid(1) - leaf(2); plus a second leaf(3) under root.
    fn overlay() -> Overlay {
        Overlay::new(&[None, Some(0), Some(1), Some(0)])
    }

    #[test]
    fn delivery_is_location_transparent() {
        let mut o = overlay();
        let s_leaf = o.subscribe(BrokerId(2), sub("x", 10));
        let s_other = o.subscribe(BrokerId(3), sub("x", 50));
        // Publish from every broker: the same subscribers match.
        for b in 0..4 {
            let mut got = o.publish(BrokerId(b), &publication("x", 60));
            got.sort();
            assert_eq!(got, vec![s_leaf, s_other], "published at broker {b}");
            let got = o.publish(BrokerId(b), &publication("x", 20));
            assert_eq!(got, vec![s_leaf]);
            assert!(o.publish(BrokerId(b), &publication("x", 5)).is_empty());
        }
    }

    #[test]
    fn covering_suppresses_upstream_forwards() {
        let mut o = Overlay::chain(3);
        // Broad subscription at the leaf propagates 2 hops.
        o.subscribe(BrokerId(2), sub("x", 0));
        assert_eq!(o.stats().subscription_forwards, 2);
        // A narrower subscription at the same leaf is covered: no forwards.
        o.subscribe(BrokerId(2), sub("x", 100));
        assert_eq!(o.stats().subscription_forwards, 2);
        assert_eq!(o.stats().forwards_suppressed, 1);
        // It still receives matching publications from the root.
        let got = o.publish(BrokerId(0), &publication("x", 500));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn publications_do_not_flood_uninterested_subtrees() {
        let mut o = overlay();
        o.subscribe(BrokerId(2), sub("x", 0));
        // Nothing under broker 3: publishing at root routes only to the
        // interested subtree.
        let before = o.stats().publication_hops;
        o.publish(BrokerId(0), &publication("x", 1));
        let hops = o.stats().publication_hops - before;
        assert_eq!(hops, 2, "root->mid->leaf only, not root->leaf3");
    }

    #[test]
    fn agrees_with_flat_matching_on_random_workload() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        // A 7-broker binary tree.
        let mut o = Overlay::new(&[None, Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)]);
        let mut flat: Vec<(SubId, Subscription)> = Vec::new();
        for _ in 0..200 {
            let s = sub("x", rng.gen_range(0..100));
            let broker = BrokerId(rng.gen_range(0..7));
            let id = o.subscribe(broker, s.clone());
            flat.push((id, s));
        }
        for _ in 0..100 {
            let p = publication("x", rng.gen_range(0..120));
            let entry = BrokerId(rng.gen_range(0..7));
            let mut got = o.publish(entry, &p);
            got.sort();
            let mut want: Vec<SubId> = flat
                .iter()
                .filter(|(_, s)| s.matches(&p))
                .map(|(id, _)| *id)
                .collect();
            want.sort();
            assert_eq!(got, want);
        }
        assert!(o.stats().forwards_suppressed > 0, "some covering expected");
    }

    #[test]
    fn chain_construction() {
        let o = Overlay::chain(5);
        assert_eq!(o.len(), 5);
        assert!(!o.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot be its own parent")]
    fn self_parent_rejected() {
        let _ = Overlay::new(&[Some(0)]);
    }

    #[test]
    fn try_new_rejects_bad_topologies() {
        assert_eq!(
            Overlay::try_new(&[None, Some(9)]).unwrap_err(),
            OverlayError::ParentOutOfRange {
                broker: 1,
                parent: 9
            }
        );
        assert_eq!(
            Overlay::try_new(&[Some(0)]).unwrap_err(),
            OverlayError::SelfParent { broker: 0 }
        );
        // Two brokers pointing at each other: no root, infinite routing.
        assert_eq!(
            Overlay::try_new(&[Some(1), Some(0)]).unwrap_err(),
            OverlayError::Cycle { broker: 0 }
        );
        assert!(Overlay::try_new(&[None, Some(0), Some(1)]).is_ok());
        // Error messages are non-empty and distinct.
        let errors = [
            OverlayError::ParentOutOfRange {
                broker: 1,
                parent: 9,
            },
            OverlayError::SelfParent { broker: 0 },
            OverlayError::Cycle { broker: 0 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn mid_broker_failure_reparents_and_keeps_delivering() {
        // root(0) - mid(1) - leaf(2); second leaf(3) under root.
        let mut o = overlay();
        let s_leaf = o.subscribe(BrokerId(2), sub("x", 10));
        let s_other = o.subscribe(BrokerId(3), sub("x", 50));
        assert_eq!(o.stats().recovery_forwards, 0);

        o.fail_broker(BrokerId(1));
        assert!(o.is_failed(BrokerId(1)));
        // Leaf 2 is re-parented under the root; its interest was re-sent.
        assert!(o.stats().recovery_forwards > 0);

        // Publications keep flowing from every surviving broker to every
        // surviving subscription.
        for b in [0usize, 2, 3] {
            let mut got = o.publish(BrokerId(b), &publication("x", 60));
            got.sort();
            assert_eq!(got, vec![s_leaf, s_other], "published at broker {b}");
            assert_eq!(o.publish(BrokerId(b), &publication("x", 20)), vec![s_leaf]);
        }
        // New subscriptions through the repaired tree still work.
        let s_new = o.subscribe(BrokerId(2), sub("y", 0));
        assert_eq!(o.publish(BrokerId(3), &publication("y", 1)), vec![s_new]);
        // Failing the same broker again is a no-op.
        let stats = o.stats();
        o.fail_broker(BrokerId(1));
        assert_eq!(o.stats(), stats);
    }

    #[test]
    fn root_failure_promotes_a_child() {
        // root(0) with children 1 and 2; subscriber on each child.
        let mut o = Overlay::new(&[None, Some(0), Some(0)]);
        let s1 = o.subscribe(BrokerId(1), sub("x", 10));
        let s2 = o.subscribe(BrokerId(2), sub("x", 20));
        o.fail_broker(BrokerId(0));
        // Broker 1 is promoted to root, broker 2 re-parented under it.
        for b in [1usize, 2] {
            let mut got = o.publish(BrokerId(b), &publication("x", 30));
            got.sort();
            assert_eq!(got, vec![s1, s2], "published at broker {b}");
        }
        assert_eq!(o.publish(BrokerId(2), &publication("x", 15)), vec![s1]);
        assert!(o.stats().recovery_forwards > 0);
    }

    #[test]
    fn failed_broker_loses_its_local_subscriptions() {
        let mut o = Overlay::chain(3);
        let s_mid = o.subscribe(BrokerId(1), sub("x", 0));
        let s_leaf = o.subscribe(BrokerId(2), sub("x", 0));
        let got = o.publish(BrokerId(0), &publication("x", 1));
        assert_eq!(got.len(), 2);
        o.fail_broker(BrokerId(1));
        let got = o.publish(BrokerId(0), &publication("x", 1));
        assert_eq!(got, vec![s_leaf], "mid's local sub died with it: {s_mid:?}");
    }

    #[test]
    #[should_panic(expected = "has failed")]
    fn publish_at_failed_broker_panics() {
        let mut o = Overlay::chain(2);
        o.fail_broker(BrokerId(1));
        let _ = o.publish(BrokerId(1), &publication("x", 1));
    }
}
