//! The secure router: SCBR's matching engine inside an enclave.
//!
//! "Outside of secure enclaves, both publications and subscriptions are
//! encrypted and signed ... SCBR combines a key exchange protocol and a
//! state-of-the-art routing engine" (§V-B). Clients run an X25519 exchange
//! with the router enclave and then submit sealed subscriptions and
//! publications; the router decrypts them only inside the enclave, matches,
//! and re-encrypts notifications per subscriber.

use crate::engine::MatchEngine;
use crate::index::PosetIndex;
use crate::types::{Publication, SubId, Subscription};
use crate::ScbrError;
use securecloud_crypto::gcm::{nonce_from_seq, AesGcm, NONCE_LEN, TAG_LEN};
use securecloud_crypto::hmac::hkdf;
use securecloud_crypto::wire::Wire;
use securecloud_crypto::x25519::{self, PublicKey, SecretKey};
use securecloud_sgx::enclave::Enclave;
use securecloud_telemetry::{Telemetry, TraceContext, CONTEXT_WIRE_LEN};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Router-assigned client identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClientId(pub u64);

const DOMAIN_TO_ROUTER: u32 = 0x6332_7200; // "c2r"
const DOMAIN_TO_CLIENT: u32 = 0x7232_6300; // "r2c"

/// Cycles charged per byte of in-enclave AEAD work.
const AEAD_CYCLES_PER_BYTE: u64 = 2;

fn derive_client_key(shared: &[u8; 32], client_pub: &PublicKey) -> [u8; 16] {
    hkdf(b"scbr client key v1", shared, client_pub)
}

struct ClientState {
    key: AesGcm,
    recv_seq: u64,
    send_seq: u64,
}

/// The enclave-hosted secure content-based router.
pub struct SecureRouter {
    enclave: Enclave,
    engine: MatchEngine<PosetIndex>,
    secret: SecretKey,
    public: PublicKey,
    clients: HashMap<ClientId, ClientState>,
    owners: HashMap<SubId, ClientId>,
    next_client: u64,
    telemetry: Option<Arc<Telemetry>>,
    switchless: bool,
}

impl std::fmt::Debug for SecureRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureRouter")
            .field("clients", &self.clients.len())
            .field("subscriptions", &self.engine.len())
            .finish_non_exhaustive()
    }
}

impl SecureRouter {
    /// Creates a router inside `enclave`, partitioning its index on
    /// `partition_attr` if given.
    #[must_use]
    pub fn new(enclave: Enclave, partition_attr: Option<&str>) -> Self {
        let (secret, public) = x25519::keypair();
        let index = match partition_attr {
            Some(attr) => PosetIndex::with_partition_attr(attr),
            None => PosetIndex::new(),
        };
        SecureRouter {
            enclave,
            engine: MatchEngine::new(index),
            secret,
            public,
            clients: HashMap::new(),
            owners: HashMap::new(),
            next_client: 1,
            telemetry: None,
            switchless: false,
        }
    }

    /// Routes in-enclave matching over the switchless plane: each publish
    /// charges a submission/completion ring-slot pair instead of a full
    /// ECALL/OCALL transition (the enclave thread is assumed resident, as
    /// under SCONE's asynchronous syscall threads).
    pub fn set_switchless(&mut self, switchless: bool) {
        self.switchless = switchless;
    }

    /// Whether matching runs over the switchless plane.
    #[must_use]
    pub fn is_switchless(&self) -> bool {
        self.switchless
    }

    /// Runs `body` inside the enclave on whichever call plane is selected.
    fn enter<R>(
        enclave: &mut Enclave,
        switchless: bool,
        body: impl FnOnce(&mut securecloud_sgx::mem::MemorySim) -> R,
    ) -> Result<R, securecloud_sgx::SgxError> {
        if switchless {
            enclave.switchless_call(body)
        } else {
            enclave.ecall(body)
        }
    }

    /// Attaches shared telemetry: traced sealed batches (see
    /// [`RouterClient::seal_publication_batch_traced`]) get an in-enclave
    /// matching span joined to the sender's trace.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// The router's key-exchange public key (distributed via attestation).
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        self.public
    }

    /// The enclave hosting the router.
    #[must_use]
    pub fn enclave(&self) -> &Enclave {
        &self.enclave
    }

    /// Mutable enclave access (benchmarks read the simulated clock).
    pub fn enclave_mut(&mut self) -> &mut Enclave {
        &mut self.enclave
    }

    /// Match-engine statistics.
    #[must_use]
    pub fn stats(&self) -> crate::engine::EngineStats {
        self.engine.stats()
    }

    /// Completes the key exchange for a client and registers it.
    pub fn register(&mut self, client_public: &PublicKey) -> ClientId {
        let shared = x25519::diffie_hellman(&self.secret, client_public);
        let key = derive_client_key(&shared, client_public);
        let id = ClientId(self.next_client);
        self.next_client += 1;
        // X25519 inside the enclave.
        self.enclave.memory().charge_cycles(150_000);
        self.clients.insert(
            id,
            ClientState {
                key: AesGcm::new(&key),
                recv_seq: 0,
                send_seq: 0,
            },
        );
        id
    }

    /// Processes a sealed subscription from `client`.
    ///
    /// # Errors
    ///
    /// [`ScbrError::UnknownClient`], [`ScbrError::Crypto`] (tampering or
    /// replay — the expected sequence number is part of the nonce).
    pub fn subscribe_sealed(
        &mut self,
        client: ClientId,
        sealed: &[u8],
    ) -> Result<SubId, ScbrError> {
        let state = self
            .clients
            .get_mut(&client)
            .ok_or(ScbrError::UnknownClient(client))?;
        let nonce = nonce_from_seq(DOMAIN_TO_ROUTER, state.recv_seq);
        let plain = state
            .key
            .open(&nonce, sealed, b"scbr-sub")
            .map_err(ScbrError::Crypto)?;
        state.recv_seq += 1;
        let sub = Subscription::from_wire(&plain).map_err(ScbrError::Crypto)?;
        let mem = self.enclave.memory();
        mem.charge_cycles(sealed.len() as u64 * AEAD_CYCLES_PER_BYTE);
        let id = self.engine.subscribe(mem, sub);
        self.owners.insert(id, client);
        Ok(id)
    }

    /// Processes a sealed publication from `client`: decrypts, matches, and
    /// returns one sealed notification per matching subscription, encrypted
    /// for the owning subscriber.
    ///
    /// Decryption and matching run inside one enclave transition, so every
    /// single-message publish pays a full ECALL/OCALL pair (compare
    /// [`Self::publish_sealed_batch`], which amortizes that over a batch).
    ///
    /// # Errors
    ///
    /// [`ScbrError::UnknownClient`], [`ScbrError::Crypto`],
    /// [`ScbrError::Enclave`].
    pub fn publish_sealed(
        &mut self,
        client: ClientId,
        sealed: &[u8],
    ) -> Result<Vec<(SubId, Vec<u8>)>, ScbrError> {
        let state = self
            .clients
            .get_mut(&client)
            .ok_or(ScbrError::UnknownClient(client))?;
        let nonce = nonce_from_seq(DOMAIN_TO_ROUTER, state.recv_seq);
        let plain = state
            .key
            .open(&nonce, sealed, b"scbr-pub")
            .map_err(ScbrError::Crypto)?;
        state.recv_seq += 1;
        let publication = Publication::from_wire(&plain).map_err(ScbrError::Crypto)?;

        let aead_cost = sealed.len() as u64 * AEAD_CYCLES_PER_BYTE;
        let engine = &mut self.engine;
        let matches = Self::enter(&mut self.enclave, self.switchless, |mem| {
            mem.charge_cycles(aead_cost);
            engine.publish(mem, &publication)
        })?;

        let mut notifications = Vec::with_capacity(matches.len());
        for sub_id in matches {
            let owner = self.owners[&sub_id];
            let owner_state = self
                .clients
                .get_mut(&owner)
                .expect("owner registered at subscribe time");
            let nonce = nonce_from_seq(DOMAIN_TO_CLIENT, owner_state.send_seq);
            owner_state.send_seq += 1;
            // One exactly-sized frame per notification: nonce, plaintext
            // sealed in place, tag appended.
            let mut framed = Vec::with_capacity(NONCE_LEN + plain.len() + TAG_LEN);
            framed.extend_from_slice(&nonce);
            framed.extend_from_slice(&plain);
            let tag = owner_state.key.seal_in_place_detached(
                &nonce,
                &mut framed[NONCE_LEN..],
                b"scbr-notify",
            );
            framed.extend_from_slice(&tag);
            self.enclave
                .memory()
                .charge_cycles(plain.len() as u64 * AEAD_CYCLES_PER_BYTE);
            notifications.push((sub_id, framed));
        }
        Ok(notifications)
    }

    /// Processes a sealed *batch* of publications from `client`.
    ///
    /// The whole batch arrives as one AEAD frame (one nonce, one tag — see
    /// [`RouterClient::seal_publication_batch`]), is opened and matched
    /// inside a *single* enclave transition, and the matched publications
    /// are fanned out as one sealed notification frame per subscriber:
    /// the returned pairs are `(owner, frame)` where each frame carries
    /// every publication that matched one of that owner's subscriptions,
    /// in batch order. Compared to N calls to [`Self::publish_sealed`],
    /// this charges one ECALL/OCALL pair instead of N and one GHASH
    /// setup per frame instead of per message.
    ///
    /// # Errors
    ///
    /// [`ScbrError::UnknownClient`], [`ScbrError::Crypto`],
    /// [`ScbrError::Enclave`].
    pub fn publish_sealed_batch(
        &mut self,
        client: ClientId,
        sealed: &[u8],
    ) -> Result<Vec<(ClientId, Vec<u8>)>, ScbrError> {
        let state = self
            .clients
            .get_mut(&client)
            .ok_or(ScbrError::UnknownClient(client))?;
        let nonce = nonce_from_seq(DOMAIN_TO_ROUTER, state.recv_seq);
        let plain = state
            .key
            .open(&nonce, sealed, b"scbr-pub-batch")
            .map_err(ScbrError::Crypto)?;
        state.recv_seq += 1;
        // Batch frames lead with a fixed-width causal context (all-zero =
        // untraced) — inside the AEAD envelope, so trace linkage cannot be
        // forged or stripped in transit.
        if plain.len() < CONTEXT_WIRE_LEN {
            return Err(ScbrError::Crypto(
                securecloud_crypto::CryptoError::AuthenticationFailed,
            ));
        }
        let ctx = TraceContext::decode(&plain[..CONTEXT_WIRE_LEN]).unwrap_or_default();
        let publications =
            Vec::<Publication>::from_wire(&plain[CONTEXT_WIRE_LEN..]).map_err(ScbrError::Crypto)?;

        // One enclave transition for the whole batch: the AEAD open charge
        // and every match run inside a single ECALL/OCALL pair.
        let _span = match &self.telemetry {
            Some(t) if !ctx.is_none() => Some(t.span_ctx(
                "scbr",
                "match_batch",
                vec![("publications", publications.len().to_string())],
                t.mint_child(ctx),
            )),
            None | Some(_) => None,
        };
        let aead_cost = sealed.len() as u64 * AEAD_CYCLES_PER_BYTE;
        let engine = &mut self.engine;
        let matches_per_publication = Self::enter(&mut self.enclave, self.switchless, |mem| {
            mem.charge_cycles(aead_cost);
            publications
                .iter()
                .map(|publication| engine.publish(mem, publication))
                .collect::<Vec<_>>()
        })?;

        // Group matched publications per owning subscriber, preserving batch
        // order within each owner; BTreeMap keeps the fan-out order
        // deterministic. A publication matching two subscriptions of the
        // same owner is delivered twice, exactly like the single path.
        let mut per_owner: BTreeMap<u64, Vec<&Publication>> = BTreeMap::new();
        for (publication, matches) in publications.iter().zip(&matches_per_publication) {
            for sub_id in matches {
                let owner = self.owners[sub_id];
                per_owner.entry(owner.0).or_default().push(publication);
            }
        }

        let mut notifications = Vec::with_capacity(per_owner.len());
        for (owner_raw, matched) in per_owner {
            let owner = ClientId(owner_raw);
            let owner_state = self
                .clients
                .get_mut(&owner)
                .expect("owner registered at subscribe time");
            let nonce = nonce_from_seq(DOMAIN_TO_CLIENT, owner_state.send_seq);
            owner_state.send_seq += 1;
            let mut framed = Vec::new();
            framed.extend_from_slice(&nonce);
            (matched.len() as u32).encode(&mut framed);
            for publication in &matched {
                publication.encode(&mut framed);
            }
            let tag = owner_state.key.seal_in_place_detached(
                &nonce,
                &mut framed[NONCE_LEN..],
                b"scbr-notify-batch",
            );
            let body_len = framed.len() - NONCE_LEN;
            framed.extend_from_slice(&tag);
            self.enclave
                .memory()
                .charge_cycles(body_len as u64 * AEAD_CYCLES_PER_BYTE);
            notifications.push((owner, framed));
        }
        Ok(notifications)
    }
}

/// Client-side companion: key exchange and sealing helpers.
#[derive(Clone)]
pub struct RouterClient {
    secret: SecretKey,
    public: PublicKey,
    key: Option<AesGcm>,
    send_seq: u64,
    recv_seq: u64,
}

impl std::fmt::Debug for RouterClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterClient")
            .field("public", &securecloud_crypto::hex(&self.public))
            .finish_non_exhaustive()
    }
}

impl Default for RouterClient {
    fn default() -> Self {
        Self::new()
    }
}

impl RouterClient {
    /// Generates a fresh client keypair.
    #[must_use]
    pub fn new() -> Self {
        let (secret, public) = x25519::keypair();
        RouterClient {
            secret,
            public,
            key: None,
            send_seq: 0,
            recv_seq: 0,
        }
    }

    /// The client's public key, to be sent to the router.
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        self.public
    }

    /// Completes the exchange with the router's public key.
    pub fn complete_exchange(&mut self, router_public: &PublicKey) {
        let shared = x25519::diffie_hellman(&self.secret, router_public);
        self.key = Some(AesGcm::new(&derive_client_key(&shared, &self.public)));
    }

    fn cipher(&self) -> Result<&AesGcm, ScbrError> {
        self.key.as_ref().ok_or(ScbrError::ExchangeIncomplete)
    }

    /// Seals a subscription for the router.
    ///
    /// # Errors
    ///
    /// [`ScbrError::ExchangeIncomplete`] before [`Self::complete_exchange`].
    pub fn seal_subscription(&mut self, sub: &Subscription) -> Result<Vec<u8>, ScbrError> {
        let nonce = nonce_from_seq(DOMAIN_TO_ROUTER, self.send_seq);
        // Seal the wire encoding in place rather than copying it.
        let mut sealed = sub.to_wire();
        self.cipher()?
            .seal_in_place(&nonce, &mut sealed, b"scbr-sub");
        self.send_seq += 1;
        Ok(sealed)
    }

    /// Seals a publication for the router.
    ///
    /// # Errors
    ///
    /// [`ScbrError::ExchangeIncomplete`] before [`Self::complete_exchange`].
    pub fn seal_publication(&mut self, publication: &Publication) -> Result<Vec<u8>, ScbrError> {
        let nonce = nonce_from_seq(DOMAIN_TO_ROUTER, self.send_seq);
        // Seal the wire encoding in place rather than copying it.
        let mut sealed = publication.to_wire();
        self.cipher()?
            .seal_in_place(&nonce, &mut sealed, b"scbr-pub");
        self.send_seq += 1;
        Ok(sealed)
    }

    /// Seals a batch of publications into a single AEAD frame for the
    /// router: one nonce, one sequence number, and one tag for the whole
    /// batch, so a batch of N costs one seal instead of N.
    ///
    /// # Errors
    ///
    /// [`ScbrError::ExchangeIncomplete`] before [`Self::complete_exchange`].
    pub fn seal_publication_batch(
        &mut self,
        publications: &[Publication],
    ) -> Result<Vec<u8>, ScbrError> {
        self.seal_publication_batch_traced(publications, TraceContext::none())
    }

    /// [`RouterClient::seal_publication_batch`] carrying a causal trace
    /// context inside the sealed frame. The context travels under the AEAD
    /// tag (an all-zero header encodes "untraced"), so the router can join
    /// its in-enclave matching span to the sender's trace without the
    /// linkage being forgeable or strippable outside the enclaves.
    ///
    /// # Errors
    ///
    /// [`ScbrError::ExchangeIncomplete`] before [`Self::complete_exchange`].
    pub fn seal_publication_batch_traced(
        &mut self,
        publications: &[Publication],
        ctx: TraceContext,
    ) -> Result<Vec<u8>, ScbrError> {
        let nonce = nonce_from_seq(DOMAIN_TO_ROUTER, self.send_seq);
        // Fixed-width context header, then the `Vec<Publication>` wire
        // encoding: count, then each item.
        let mut sealed = ctx.encode().to_vec();
        (publications.len() as u32).encode(&mut sealed);
        for publication in publications {
            publication.encode(&mut sealed);
        }
        self.cipher()?
            .seal_in_place(&nonce, &mut sealed, b"scbr-pub-batch");
        self.send_seq += 1;
        Ok(sealed)
    }

    /// Opens a batched notification frame from the router, returning the
    /// matched publications in batch order.
    ///
    /// # Errors
    ///
    /// [`ScbrError::Crypto`] on tampering or replay.
    pub fn open_notification_batch(
        &mut self,
        framed: &[u8],
    ) -> Result<Vec<Publication>, ScbrError> {
        if framed.len() < NONCE_LEN {
            return Err(ScbrError::Crypto(
                securecloud_crypto::CryptoError::AuthenticationFailed,
            ));
        }
        let (nonce, body) = framed.split_at(NONCE_LEN);
        let expected = nonce_from_seq(DOMAIN_TO_CLIENT, self.recv_seq);
        if !securecloud_crypto::ct_eq(nonce, &expected) {
            return Err(ScbrError::Crypto(
                securecloud_crypto::CryptoError::AuthenticationFailed,
            ));
        }
        let plain = self
            .cipher()?
            .open(&expected, body, b"scbr-notify-batch")
            .map_err(ScbrError::Crypto)?;
        self.recv_seq += 1;
        Vec::<Publication>::from_wire(&plain).map_err(ScbrError::Crypto)
    }

    /// Opens a notification from the router.
    ///
    /// # Errors
    ///
    /// [`ScbrError::Crypto`] on tampering or replay.
    pub fn open_notification(&mut self, framed: &[u8]) -> Result<Publication, ScbrError> {
        if framed.len() < NONCE_LEN {
            return Err(ScbrError::Crypto(
                securecloud_crypto::CryptoError::AuthenticationFailed,
            ));
        }
        let (nonce, body) = framed.split_at(NONCE_LEN);
        let expected = nonce_from_seq(DOMAIN_TO_CLIENT, self.recv_seq);
        if !securecloud_crypto::ct_eq(nonce, &expected) {
            return Err(ScbrError::Crypto(
                securecloud_crypto::CryptoError::AuthenticationFailed,
            ));
        }
        let plain = self
            .cipher()?
            .open(&expected, body, b"scbr-notify")
            .map_err(ScbrError::Crypto)?;
        self.recv_seq += 1;
        Publication::from_wire(&plain).map_err(ScbrError::Crypto)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Op, Predicate, Value};
    use securecloud_sgx::enclave::{EnclaveConfig, Platform};

    fn router() -> SecureRouter {
        let platform = Platform::new();
        let enclave = platform
            .launch(EnclaveConfig::new("scbr", b"router code"))
            .unwrap();
        SecureRouter::new(enclave, Some("topic"))
    }

    fn sub(topic: i64, lo: i64) -> Subscription {
        Subscription::new(vec![
            Predicate::new("topic", Op::Eq, Value::Int(topic)),
            Predicate::new("v", Op::Ge, Value::Int(lo)),
        ])
    }

    fn publication(topic: i64, v: i64) -> Publication {
        Publication::new()
            .with("topic", Value::Int(topic))
            .with("v", Value::Int(v))
    }

    #[test]
    fn end_to_end_encrypted_pubsub() {
        let mut router = router();
        let mut subscriber = RouterClient::new();
        let mut publisher = RouterClient::new();
        let sub_id = router.register(&subscriber.public_key());
        let pub_id = router.register(&publisher.public_key());
        subscriber.complete_exchange(&router.public_key());
        publisher.complete_exchange(&router.public_key());

        let sealed_sub = subscriber.seal_subscription(&sub(1, 10)).unwrap();
        let sid = router.subscribe_sealed(sub_id, &sealed_sub).unwrap();

        let p = publication(1, 42);
        let sealed_pub = publisher.seal_publication(&p).unwrap();
        let notifications = router.publish_sealed(pub_id, &sealed_pub).unwrap();
        assert_eq!(notifications.len(), 1);
        assert_eq!(notifications[0].0, sid);
        let received = subscriber.open_notification(&notifications[0].1).unwrap();
        assert_eq!(received, p);
        assert!(router.enclave_mut().memory().cycles() > 0);
    }

    #[test]
    fn non_matching_publication_produces_no_notifications() {
        let mut router = router();
        let mut subscriber = RouterClient::new();
        let sub_client = router.register(&subscriber.public_key());
        subscriber.complete_exchange(&router.public_key());
        let sealed = subscriber.seal_subscription(&sub(1, 100)).unwrap();
        router.subscribe_sealed(sub_client, &sealed).unwrap();
        let sealed_pub = subscriber.seal_publication(&publication(1, 5)).unwrap();
        let notifications = router.publish_sealed(sub_client, &sealed_pub).unwrap();
        assert!(notifications.is_empty());
    }

    #[test]
    fn tampered_submission_rejected() {
        let mut router = router();
        let mut client = RouterClient::new();
        let id = router.register(&client.public_key());
        client.complete_exchange(&router.public_key());
        let mut sealed = client.seal_subscription(&sub(1, 0)).unwrap();
        sealed[0] ^= 1;
        assert!(matches!(
            router.subscribe_sealed(id, &sealed),
            Err(ScbrError::Crypto(_))
        ));
    }

    #[test]
    fn replayed_submission_rejected() {
        let mut router = router();
        let mut client = RouterClient::new();
        let id = router.register(&client.public_key());
        client.complete_exchange(&router.public_key());
        let sealed = client.seal_subscription(&sub(1, 0)).unwrap();
        router.subscribe_sealed(id, &sealed).unwrap();
        // The router's expected sequence has advanced; replay fails.
        assert!(matches!(
            router.subscribe_sealed(id, &sealed),
            Err(ScbrError::Crypto(_))
        ));
    }

    #[test]
    fn unknown_client_and_incomplete_exchange() {
        let mut router = router();
        assert!(matches!(
            router.subscribe_sealed(ClientId(99), b"x"),
            Err(ScbrError::UnknownClient(_))
        ));
        let mut client = RouterClient::new();
        assert!(matches!(
            client.seal_subscription(&sub(1, 0)),
            Err(ScbrError::ExchangeIncomplete)
        ));
    }

    #[test]
    fn cross_client_confidentiality() {
        // A notification for subscriber A cannot be opened by subscriber B.
        let mut router = router();
        let mut alice = RouterClient::new();
        let mut bob = RouterClient::new();
        let alice_id = router.register(&alice.public_key());
        let _bob_id = router.register(&bob.public_key());
        alice.complete_exchange(&router.public_key());
        bob.complete_exchange(&router.public_key());
        let sealed = alice.seal_subscription(&sub(1, 0)).unwrap();
        router.subscribe_sealed(alice_id, &sealed).unwrap();
        let sealed_pub = alice.seal_publication(&publication(1, 7)).unwrap();
        let notifications = router.publish_sealed(alice_id, &sealed_pub).unwrap();
        assert!(bob.open_notification(&notifications[0].1).is_err());
        assert!(alice.open_notification(&notifications[0].1).is_ok());
    }

    #[test]
    fn traced_batch_carries_context_inside_sealed_frame() {
        use securecloud_telemetry::Phase;
        let mut router = router();
        let telemetry = Arc::new(Telemetry::new());
        telemetry.set_trace_seed(9);
        router.set_telemetry(Arc::clone(&telemetry));
        let mut subscriber = RouterClient::new();
        let mut publisher = RouterClient::new();
        let sub_client = router.register(&subscriber.public_key());
        let pub_client = router.register(&publisher.public_key());
        subscriber.complete_exchange(&router.public_key());
        publisher.complete_exchange(&router.public_key());
        let sealed_sub = subscriber.seal_subscription(&sub(1, 0)).unwrap();
        router.subscribe_sealed(sub_client, &sealed_sub).unwrap();

        let root = telemetry.mint_root();
        let batch = vec![publication(1, 7), publication(1, 9)];
        let sealed = publisher
            .seal_publication_batch_traced(&batch, root)
            .unwrap();
        let notifications = router.publish_sealed_batch(pub_client, &sealed).unwrap();
        assert_eq!(notifications.len(), 1);
        assert_eq!(
            subscriber
                .open_notification_batch(&notifications[0].1)
                .unwrap(),
            batch
        );
        // The router's in-enclave matching span joined the sender's trace —
        // the linkage travelled inside the AEAD frame.
        let events = telemetry.trace_events();
        let begin = events
            .iter()
            .find(|e| e.phase == Phase::Begin && e.name == "match_batch")
            .expect("match span emitted");
        assert_eq!(begin.trace_id, root.trace_id);
        assert_eq!(begin.parent_span_id, root.span_id);

        // An untraced batch (all-zero header) emits no causal span.
        let sealed = publisher.seal_publication_batch(&batch).unwrap();
        router.publish_sealed_batch(pub_client, &sealed).unwrap();
        let spans = telemetry
            .trace_events()
            .iter()
            .filter(|e| e.phase == Phase::Begin && e.name == "match_batch")
            .count();
        assert_eq!(spans, 1, "untraced batches stay untraced");
    }

    #[test]
    fn batch_publish_fans_out_per_owner() {
        let mut router = router();
        let mut alice = RouterClient::new();
        let mut bob = RouterClient::new();
        let mut publisher = RouterClient::new();
        let alice_id = router.register(&alice.public_key());
        let bob_id = router.register(&bob.public_key());
        let pub_id = router.register(&publisher.public_key());
        alice.complete_exchange(&router.public_key());
        bob.complete_exchange(&router.public_key());
        publisher.complete_exchange(&router.public_key());

        // Alice wants v >= 10 on topic 1; Bob wants v >= 100 on topic 1.
        let sealed = alice.seal_subscription(&sub(1, 10)).unwrap();
        router.subscribe_sealed(alice_id, &sealed).unwrap();
        let sealed = bob.seal_subscription(&sub(1, 100)).unwrap();
        router.subscribe_sealed(bob_id, &sealed).unwrap();

        let batch = vec![
            publication(1, 50),  // alice only
            publication(1, 500), // alice and bob
            publication(2, 999), // nobody (wrong topic)
        ];
        let sealed = publisher.seal_publication_batch(&batch).unwrap();
        let notifications = router.publish_sealed_batch(pub_id, &sealed).unwrap();

        // One frame per subscriber with matches, owners in id order.
        assert_eq!(notifications.len(), 2);
        assert_eq!(notifications[0].0, alice_id);
        assert_eq!(notifications[1].0, bob_id);
        let for_alice = alice.open_notification_batch(&notifications[0].1).unwrap();
        assert_eq!(for_alice, vec![publication(1, 50), publication(1, 500)]);
        let for_bob = bob.open_notification_batch(&notifications[1].1).unwrap();
        assert_eq!(for_bob, vec![publication(1, 500)]);
    }

    #[test]
    fn batch_matching_equals_single_matching() {
        // The same publications produce the same per-owner deliveries
        // whether published one at a time or as a batch.
        let mut batch_router = router();
        let mut single_router = router();
        let publications: Vec<Publication> = (0..16).map(|v| publication(1, v * 20)).collect();

        let mut deliveries_single: Vec<Publication> = Vec::new();
        let mut deliveries_batch: Vec<Publication> = Vec::new();

        for (router, deliveries, batched) in [
            (&mut batch_router, &mut deliveries_batch, true),
            (&mut single_router, &mut deliveries_single, false),
        ] {
            let mut subscriber = RouterClient::new();
            let mut publisher = RouterClient::new();
            let sub_id = router.register(&subscriber.public_key());
            let pub_id = router.register(&publisher.public_key());
            subscriber.complete_exchange(&router.public_key());
            publisher.complete_exchange(&router.public_key());
            let sealed = subscriber.seal_subscription(&sub(1, 100)).unwrap();
            router.subscribe_sealed(sub_id, &sealed).unwrap();

            if batched {
                let sealed = publisher.seal_publication_batch(&publications).unwrap();
                for (_, framed) in router.publish_sealed_batch(pub_id, &sealed).unwrap() {
                    deliveries.extend(subscriber.open_notification_batch(&framed).unwrap());
                }
            } else {
                for p in &publications {
                    let sealed = publisher.seal_publication(p).unwrap();
                    for (_, framed) in router.publish_sealed(pub_id, &sealed).unwrap() {
                        deliveries.push(subscriber.open_notification(&framed).unwrap());
                    }
                }
            }
        }
        assert!(!deliveries_single.is_empty());
        assert_eq!(deliveries_batch, deliveries_single);
    }

    #[test]
    fn batch_amortizes_enclave_transitions() {
        // A 16-publication batch pays one ECALL/OCALL pair; 16 singles pay
        // 16. The simulated transition cycles must reflect that.
        let mut batch_router = router();
        let mut single_router = router();
        let publications: Vec<Publication> = (0..16).map(|v| publication(1, v)).collect();
        let mut costs = Vec::new();

        for (router, batched) in [(&mut batch_router, true), (&mut single_router, false)] {
            let mut publisher = RouterClient::new();
            let pub_id = router.register(&publisher.public_key());
            publisher.complete_exchange(&router.public_key());
            let before = router.enclave_mut().memory().cycles();
            if batched {
                let sealed = publisher.seal_publication_batch(&publications).unwrap();
                router.publish_sealed_batch(pub_id, &sealed).unwrap();
            } else {
                for p in &publications {
                    let sealed = publisher.seal_publication(p).unwrap();
                    router.publish_sealed(pub_id, &sealed).unwrap();
                }
            }
            costs.push(router.enclave_mut().memory().cycles() - before);
        }
        let (batch_cost, single_cost) = (costs[0], costs[1]);
        assert!(
            batch_cost * 2 < single_cost,
            "batch {batch_cost} vs singles {single_cost}"
        );
    }

    #[test]
    fn tampered_or_replayed_batch_rejected() {
        let mut router = router();
        let batch = vec![publication(1, 1), publication(1, 2)];

        // Tampering: a failed open does not advance the router's expected
        // sequence, so each negative case gets its own (now desynced) client.
        let mut mallory = RouterClient::new();
        let mallory_id = router.register(&mallory.public_key());
        mallory.complete_exchange(&router.public_key());
        let mut sealed = mallory.seal_publication_batch(&batch).unwrap();
        sealed[0] ^= 1;
        assert!(matches!(
            router.publish_sealed_batch(mallory_id, &sealed),
            Err(ScbrError::Crypto(_))
        ));

        // Cross-format confusion: a single-message frame is not accepted
        // by the batch path (the AADs differ).
        let mut trudy = RouterClient::new();
        let trudy_id = router.register(&trudy.public_key());
        trudy.complete_exchange(&router.public_key());
        let single = trudy.seal_publication(&publication(1, 3)).unwrap();
        assert!(matches!(
            router.publish_sealed_batch(trudy_id, &single),
            Err(ScbrError::Crypto(_))
        ));

        // Replay: an accepted batch cannot be accepted twice.
        let mut publisher = RouterClient::new();
        let pub_id = router.register(&publisher.public_key());
        publisher.complete_exchange(&router.public_key());
        let sealed = publisher.seal_publication_batch(&batch).unwrap();
        router.publish_sealed_batch(pub_id, &sealed).unwrap();
        assert!(matches!(
            router.publish_sealed_batch(pub_id, &sealed),
            Err(ScbrError::Crypto(_))
        ));
    }

    #[test]
    fn switchless_matching_is_identical_and_cheaper() {
        // The switchless plane must change only the call cost, never the
        // routing outcome: same notifications byte-for-byte given the same
        // key material, and strictly fewer cycles (ring slots vs ECALLs).
        let mut costs = Vec::new();
        let mut frames: Vec<Vec<Vec<u8>>> = Vec::new();
        for switchless in [false, true] {
            let mut router = router();
            router.set_switchless(switchless);
            assert_eq!(router.is_switchless(), switchless);
            let mut subscriber = RouterClient::new();
            let mut publisher = RouterClient::new();
            let sub_id = router.register(&subscriber.public_key());
            let pub_id = router.register(&publisher.public_key());
            subscriber.complete_exchange(&router.public_key());
            publisher.complete_exchange(&router.public_key());
            let sealed = subscriber.seal_subscription(&sub(1, 10)).unwrap();
            router.subscribe_sealed(sub_id, &sealed).unwrap();

            let before = router.enclave_mut().memory().cycles();
            let mut opened = Vec::new();
            for v in 0..16 {
                let sealed = publisher.seal_publication(&publication(1, v * 5)).unwrap();
                for (_, framed) in router.publish_sealed(pub_id, &sealed).unwrap() {
                    opened.push(subscriber.open_notification(&framed).unwrap().to_wire());
                }
            }
            costs.push(router.enclave_mut().memory().cycles() - before);
            frames.push(opened);
        }
        assert_eq!(frames[0], frames[1], "routing outcome must not change");
        assert!(
            costs[1] < costs[0],
            "switchless {} vs transitions {}",
            costs[1],
            costs[0]
        );
    }

    #[test]
    fn destroyed_enclave_surfaces_enclave_error() {
        let mut router = router();
        let mut publisher = RouterClient::new();
        let pub_id = router.register(&publisher.public_key());
        publisher.complete_exchange(&router.public_key());
        router.enclave_mut().destroy();
        let sealed = publisher.seal_publication(&publication(1, 1)).unwrap();
        assert!(matches!(
            router.publish_sealed(pub_id, &sealed),
            Err(ScbrError::Enclave(_))
        ));
    }
}
