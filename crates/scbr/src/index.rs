//! Subscription indexes.
//!
//! [`PosetIndex`] stores subscriptions "in data structures that exploit
//! containment relations between filters. Therefore, a reduced number of
//! comparisons is required whenever a message must be matched against
//! them" (§V-B). It combines:
//!
//! * *partition groups* on an equality attribute (e.g. `topic`), so a
//!   publication only visits subscriptions that could match its topic, and
//! * within each group, a *containment forest*: a subscription is placed
//!   under one that covers it; when the covering subscription does not
//!   match a publication, the whole subtree is pruned.
//!
//! [`NaiveIndex`] is the linear-scan baseline used for benchmark E6 and as
//! a correctness oracle in tests.

use crate::types::{covers_normalised, Normalised, Publication, SubId, Subscription, Value};
use std::collections::HashMap;

/// Insertion scans at most this many siblings per level when looking for
/// covering relations; beyond it, subscriptions are treated as
/// incomparable. This bounds insertion cost on adversarial or very large
/// databases without affecting matching correctness (only pruning quality).
const MAX_SIBLING_SCAN: usize = 64;

/// Information about one index node visited during matching; the match
/// engine charges simulated memory and compute costs from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VisitInfo {
    /// Simulated address of the node.
    pub offset: u64,
    /// Node footprint in bytes.
    pub size: u32,
    /// Predicates evaluated at this node (short-circuit aware).
    pub predicates_evaluated: u32,
    /// Whether the node's subscription matched.
    pub matched: bool,
}

/// Common interface of the two indexes.
pub trait SubscriptionIndex {
    /// Inserts a subscription stored at simulated address `offset`.
    fn insert(&mut self, id: SubId, sub: Subscription, offset: u64);
    /// Matches a publication, reporting every visited node to `on_visit`
    /// and returning the ids of matching subscriptions.
    fn match_publication(
        &self,
        publication: &Publication,
        on_visit: &mut dyn FnMut(VisitInfo),
    ) -> Vec<SubId>;
    /// Number of stored subscriptions.
    fn len(&self) -> usize;
    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn matches_counted(sub: &Subscription, publication: &Publication) -> (bool, u32) {
    let mut evaluated = 0u32;
    for p in &sub.predicates {
        evaluated += 1;
        let ok = publication
            .attrs
            .get(&p.attr)
            .is_some_and(|actual| p.eval(actual));
        if !ok {
            return (false, evaluated);
        }
    }
    (true, evaluated)
}

/// Linear-scan baseline index.
#[derive(Debug, Default)]
pub struct NaiveIndex {
    entries: Vec<(SubId, Subscription, u64, u32)>,
}

impl NaiveIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl SubscriptionIndex for NaiveIndex {
    fn insert(&mut self, id: SubId, sub: Subscription, offset: u64) {
        let size = sub.footprint() as u32;
        self.entries.push((id, sub, offset, size));
    }

    fn match_publication(
        &self,
        publication: &Publication,
        on_visit: &mut dyn FnMut(VisitInfo),
    ) -> Vec<SubId> {
        let mut out = Vec::new();
        for (id, sub, offset, size) in &self.entries {
            let (matched, evaluated) = matches_counted(sub, publication);
            on_visit(VisitInfo {
                offset: *offset,
                size: *size,
                predicates_evaluated: evaluated,
                matched,
            });
            if matched {
                out.push(*id);
            }
        }
        out
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum GroupKey {
    Int(i64),
    Str(String),
    General,
}

#[derive(Debug)]
struct Node {
    id: SubId,
    sub: Subscription,
    norm: Normalised,
    offset: u64,
    size: u32,
    children: Vec<usize>,
}

/// Containment-forest index with partition groups.
#[derive(Debug)]
pub struct PosetIndex {
    partition_attr: Option<String>,
    nodes: Vec<Node>,
    groups: HashMap<GroupKey, Vec<usize>>, // roots per group
}

impl PosetIndex {
    /// Creates an index without a partition attribute (pure containment
    /// forest).
    #[must_use]
    pub fn new() -> Self {
        PosetIndex {
            partition_attr: None,
            nodes: Vec::new(),
            groups: HashMap::new(),
        }
    }

    /// Creates an index that additionally partitions on equality
    /// predicates over `attr` (e.g. `"topic"`).
    #[must_use]
    pub fn with_partition_attr(attr: &str) -> Self {
        PosetIndex {
            partition_attr: Some(attr.to_string()),
            nodes: Vec::new(),
            groups: HashMap::new(),
        }
    }

    fn group_key_for_sub(&self, sub: &Subscription) -> GroupKey {
        if let Some(attr) = &self.partition_attr {
            for p in &sub.predicates {
                if &p.attr == attr && p.op == crate::types::Op::Eq {
                    match &p.value {
                        Value::Int(v) => return GroupKey::Int(*v),
                        Value::Str(s) => return GroupKey::Str(s.clone()),
                        Value::Float(_) => {}
                    }
                }
            }
        }
        GroupKey::General
    }

    fn group_key_for_publication(&self, publication: &Publication) -> Option<GroupKey> {
        let attr = self.partition_attr.as_ref()?;
        match publication.attrs.get(attr) {
            Some(Value::Int(v)) => Some(GroupKey::Int(*v)),
            Some(Value::Str(s)) => Some(GroupKey::Str(s.clone())),
            _ => None,
        }
    }

    /// Total root count across groups (diagnostics).
    #[must_use]
    pub fn root_count(&self) -> usize {
        self.groups.values().map(Vec::len).sum()
    }

    fn insert_into_group(nodes: &mut [Node], roots: &mut Vec<usize>, new_idx: usize) {
        // Descend to the deepest existing node that covers the new one.
        let mut parent: Option<usize> = None;
        loop {
            let level: &Vec<usize> = match parent {
                None => roots,
                Some(p) => &nodes[p].children,
            };
            let next = level
                .iter()
                .take(MAX_SIBLING_SCAN)
                .copied()
                .find(|&candidate| covers_normalised(&nodes[candidate].norm, &nodes[new_idx].norm));
            match next {
                Some(covering) if covering != new_idx => parent = Some(covering),
                _ => break,
            }
        }
        // Re-parent level members that the new subscription covers. The
        // level vector is taken out (O(1)) rather than cloned — levels can
        // hold tens of thousands of roots on large databases.
        let mut level: Vec<usize> = match parent {
            None => std::mem::take(roots),
            Some(p) => std::mem::take(&mut nodes[p].children),
        };
        let scan = level.len().min(MAX_SIBLING_SCAN);
        let mut covered = Vec::new();
        let mut write = 0;
        for read in 0..level.len() {
            let candidate = level[read];
            if read < scan && covers_normalised(&nodes[new_idx].norm, &nodes[candidate].norm) {
                covered.push(candidate);
            } else {
                level[write] = candidate;
                write += 1;
            }
        }
        level.truncate(write);
        level.push(new_idx);
        nodes[new_idx].children = covered;
        match parent {
            None => *roots = level,
            Some(p) => nodes[p].children = level,
        }
    }

    fn match_group(
        &self,
        roots: &[usize],
        publication: &Publication,
        on_visit: &mut dyn FnMut(VisitInfo),
        out: &mut Vec<SubId>,
    ) {
        let mut stack: Vec<usize> = roots.to_vec();
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx];
            let (matched, evaluated) = matches_counted(&node.sub, publication);
            on_visit(VisitInfo {
                offset: node.offset,
                size: node.size,
                predicates_evaluated: evaluated,
                matched,
            });
            if matched {
                out.push(node.id);
                // Children are covered by this node, so they *may* match.
                stack.extend_from_slice(&node.children);
            }
            // Not matched → children cannot match either (containment).
        }
    }
}

impl Default for PosetIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl SubscriptionIndex for PosetIndex {
    fn insert(&mut self, id: SubId, sub: Subscription, offset: u64) {
        let key = self.group_key_for_sub(&sub);
        let size = sub.footprint() as u32;
        let norm = sub.normalised();
        let idx = self.nodes.len();
        self.nodes.push(Node {
            id,
            sub,
            norm,
            offset,
            size,
            children: Vec::new(),
        });
        // Split borrows: take the roots vector out, mutate, put it back.
        let mut roots = self.groups.remove(&key).unwrap_or_default();
        Self::insert_into_group(&mut self.nodes, &mut roots, idx);
        self.groups.insert(key, roots);
    }

    fn match_publication(
        &self,
        publication: &Publication,
        on_visit: &mut dyn FnMut(VisitInfo),
    ) -> Vec<SubId> {
        let mut out = Vec::new();
        if let Some(key) = self.group_key_for_publication(publication) {
            if let Some(roots) = self.groups.get(&key) {
                self.match_group(roots, publication, on_visit, &mut out);
            }
            if let Some(general) = self.groups.get(&GroupKey::General) {
                self.match_group(general, publication, on_visit, &mut out);
            }
        } else {
            // No partition value: every group may match.
            for roots in self.groups.values() {
                self.match_group(roots, publication, on_visit, &mut out);
            }
        }
        out
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Op, Predicate};

    fn pred(attr: &str, op: Op, v: i64) -> Predicate {
        Predicate::new(attr, op, Value::Int(v))
    }

    fn sub(preds: Vec<Predicate>) -> Subscription {
        Subscription::new(preds)
    }

    fn ids(mut v: Vec<SubId>) -> Vec<u64> {
        v.sort();
        v.into_iter().map(|s| s.0).collect()
    }

    #[test]
    fn naive_matches_all() {
        let mut index = NaiveIndex::new();
        index.insert(SubId(1), sub(vec![pred("x", Op::Ge, 10)]), 0);
        index.insert(SubId(2), sub(vec![pred("x", Op::Lt, 10)]), 64);
        index.insert(SubId(3), sub(vec![pred("y", Op::Eq, 1)]), 128);
        let p = Publication::new().with("x", Value::Int(15));
        let mut visits = 0;
        let matched = index.match_publication(&p, &mut |_| visits += 1);
        assert_eq!(ids(matched), vec![1]);
        assert_eq!(visits, 3, "naive visits everything");
    }

    #[test]
    fn poset_prunes_subsumed_subtrees() {
        let mut index = PosetIndex::new();
        // broad covers mid covers narrow.
        index.insert(SubId(1), sub(vec![pred("x", Op::Ge, 0)]), 0);
        index.insert(SubId(2), sub(vec![pred("x", Op::Ge, 50)]), 64);
        index.insert(SubId(3), sub(vec![pred("x", Op::Ge, 90)]), 128);
        // Unrelated root.
        index.insert(SubId(4), sub(vec![pred("y", Op::Eq, 1)]), 192);
        assert_eq!(index.root_count(), 2);

        // x = -5: broad fails => subtree pruned; visit only the 2 roots.
        let mut visits = 0;
        let matched = index
            .match_publication(&Publication::new().with("x", Value::Int(-5)), &mut |_| {
                visits += 1
            });
        assert!(matched.is_empty());
        assert_eq!(visits, 2);

        // x = 60: broad, mid match; narrow visited and rejected.
        let mut visits = 0;
        let matched = index
            .match_publication(&Publication::new().with("x", Value::Int(60)), &mut |_| {
                visits += 1
            });
        assert_eq!(ids(matched), vec![1, 2]);
        assert_eq!(visits, 4);
    }

    #[test]
    fn insertion_order_does_not_change_results() {
        let subs = [
            (1, sub(vec![pred("x", Op::Ge, 90)])),
            (2, sub(vec![pred("x", Op::Ge, 0)])),
            (3, sub(vec![pred("x", Op::Ge, 50)])),
            (4, sub(vec![pred("x", Op::Le, 20)])),
        ];
        let p = Publication::new().with("x", Value::Int(95));
        let mut orders = Vec::new();
        for rotation in 0..subs.len() {
            let mut index = PosetIndex::new();
            for i in 0..subs.len() {
                let (id, s) = &subs[(i + rotation) % subs.len()];
                index.insert(SubId(*id), s.clone(), (*id) * 64);
            }
            orders.push(ids(index.match_publication(&p, &mut |_| {})));
        }
        for o in &orders {
            assert_eq!(o, &vec![1, 2, 3]);
        }
    }

    #[test]
    fn partitioned_index_only_visits_matching_topic() {
        let mut index = PosetIndex::with_partition_attr("topic");
        for topic in 0..10i64 {
            for i in 0..5 {
                index.insert(
                    SubId((topic * 10 + i) as u64),
                    sub(vec![pred("topic", Op::Eq, topic), pred("x", Op::Ge, i)]),
                    (topic * 10 + i) as u64 * 64,
                );
            }
        }
        let p = Publication::new()
            .with("topic", Value::Int(3))
            .with("x", Value::Int(100));
        let mut visits = 0;
        let matched = index.match_publication(&p, &mut |_| visits += 1);
        assert_eq!(matched.len(), 5);
        assert!(visits <= 5, "visited {visits}, expected only topic-3 subs");
        assert!(matched.iter().all(|s| (30..35).contains(&s.0)));
    }

    #[test]
    fn general_group_always_consulted() {
        let mut index = PosetIndex::with_partition_attr("topic");
        index.insert(
            SubId(1),
            sub(vec![pred("topic", Op::Eq, 7), pred("x", Op::Ge, 0)]),
            0,
        );
        // No topic predicate → general group.
        index.insert(SubId(2), sub(vec![pred("x", Op::Ge, 0)]), 64);
        let p = Publication::new()
            .with("topic", Value::Int(7))
            .with("x", Value::Int(1));
        assert_eq!(ids(index.match_publication(&p, &mut |_| {})), vec![1, 2]);
        // Different topic: only the general subscription matches.
        let p2 = Publication::new()
            .with("topic", Value::Int(8))
            .with("x", Value::Int(1));
        assert_eq!(ids(index.match_publication(&p2, &mut |_| {})), vec![2]);
    }

    #[test]
    fn poset_agrees_with_naive_on_random_workload() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut poset = PosetIndex::with_partition_attr("topic");
        let mut naive = NaiveIndex::new();
        for i in 0..300u64 {
            let mut preds = vec![pred("topic", Op::Eq, rng.gen_range(0..5))];
            for attr in ["a", "b"] {
                if rng.gen_bool(0.7) {
                    let op = match rng.gen_range(0..4) {
                        0 => Op::Ge,
                        1 => Op::Le,
                        2 => Op::Gt,
                        _ => Op::Lt,
                    };
                    preds.push(pred(attr, op, rng.gen_range(0..100)));
                }
            }
            let s = sub(preds);
            poset.insert(SubId(i), s.clone(), i * 64);
            naive.insert(SubId(i), s, i * 64);
        }
        for _ in 0..200 {
            let p = Publication::new()
                .with("topic", Value::Int(rng.gen_range(0..5)))
                .with("a", Value::Int(rng.gen_range(0..100)))
                .with("b", Value::Int(rng.gen_range(0..100)));
            let mut poset_visits = 0u32;
            let mut naive_visits = 0u32;
            let got = ids(poset.match_publication(&p, &mut |_| poset_visits += 1));
            let want = ids(naive.match_publication(&p, &mut |_| naive_visits += 1));
            assert_eq!(got, want);
            assert!(poset_visits <= naive_visits);
        }
    }

    #[test]
    fn visit_info_reports_node_geometry() {
        let mut index = NaiveIndex::new();
        let s = sub(vec![pred("x", Op::Ge, 0)]).with_payload(vec![0u8; 100]);
        let footprint = s.footprint() as u32;
        index.insert(SubId(1), s, 4096);
        let p = Publication::new().with("x", Value::Int(1));
        let mut seen = None;
        index.match_publication(&p, &mut |v| seen = Some(v));
        let v = seen.unwrap();
        assert_eq!(v.offset, 4096);
        assert_eq!(v.size, footprint);
        assert_eq!(v.predicates_evaluated, 1);
        assert!(v.matched);
    }
}
