//! Property-based tests for SCBR's core invariants: covering soundness,
//! index equivalence, and overlay location-transparency.

use proptest::prelude::*;
use securecloud_scbr::broker::{BrokerId, Overlay};
use securecloud_scbr::index::{NaiveIndex, PosetIndex, SubscriptionIndex};
use securecloud_scbr::types::{Op, Predicate, Publication, SubId, Subscription, Value};

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Eq),
        Just(Op::Lt),
        Just(Op::Le),
        Just(Op::Gt),
        Just(Op::Ge),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    (prop_oneof!["a", "b", "c"], arb_op(), -20i64..20)
        .prop_map(|(attr, op, v)| Predicate::new(&attr, op, Value::Int(v)))
}

fn arb_subscription() -> impl Strategy<Value = Subscription> {
    prop::collection::vec(arb_predicate(), 0..4).prop_map(Subscription::new)
}

fn arb_publication() -> impl Strategy<Value = Publication> {
    (-25i64..25, -25i64..25, -25i64..25).prop_map(|(a, b, c)| {
        Publication::new()
            .with("a", Value::Int(a))
            .with("b", Value::Int(b))
            .with("c", Value::Int(c))
    })
}

proptest! {
    /// Covering soundness: if `x` covers `y`, every publication matching
    /// `y` must match `x`. (The converse need not hold — covers() is
    /// conservative.)
    #[test]
    fn covers_implies_match_implication(
        x in arb_subscription(),
        y in arb_subscription(),
        publications in prop::collection::vec(arb_publication(), 0..30),
    ) {
        if x.covers(&y) {
            for publication in &publications {
                if y.matches(publication) {
                    prop_assert!(
                        x.matches(publication),
                        "covering violated: {x:?} claims to cover {y:?} but misses {publication:?}"
                    );
                }
            }
        }
    }

    /// Covering is reflexive and transitive on satisfiable subscriptions.
    #[test]
    fn covers_is_a_preorder(
        x in arb_subscription(),
        y in arb_subscription(),
        z in arb_subscription(),
    ) {
        prop_assert!(x.covers(&x), "reflexivity");
        if x.covers(&y) && y.covers(&z) {
            prop_assert!(x.covers(&z), "transitivity");
        }
    }

    /// The containment-forest index returns exactly the naive index's
    /// matches, for any database and any publication stream.
    #[test]
    fn poset_equals_naive(
        subs in prop::collection::vec(arb_subscription(), 0..60),
        publications in prop::collection::vec(arb_publication(), 0..20),
    ) {
        let mut naive = NaiveIndex::new();
        let mut poset = PosetIndex::new();
        for (i, sub) in subs.iter().enumerate() {
            naive.insert(SubId(i as u64), sub.clone(), i as u64 * 256);
            poset.insert(SubId(i as u64), sub.clone(), i as u64 * 256);
        }
        for publication in &publications {
            let mut naive_visits = 0u32;
            let mut poset_visits = 0u32;
            let mut a = naive.match_publication(publication, &mut |_| naive_visits += 1);
            let mut b = poset.match_publication(publication, &mut |_| poset_visits += 1);
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
            prop_assert!(poset_visits <= naive_visits, "pruning must never add visits");
        }
    }

    /// The broker overlay is location-transparent: wherever subscriptions
    /// live and wherever a publication enters, delivery equals flat
    /// matching.
    #[test]
    fn overlay_equals_flat(
        placements in prop::collection::vec((arb_subscription(), 0usize..5), 0..40),
        publications in prop::collection::vec((arb_publication(), 0usize..5), 0..10),
    ) {
        // 5-broker tree: 0 root; 1,2 under 0; 3,4 under 1.
        let mut overlay = Overlay::new(&[None, Some(0), Some(0), Some(1), Some(1)]);
        let mut flat = Vec::new();
        for (sub, broker) in &placements {
            let id = overlay.subscribe(BrokerId(*broker), sub.clone());
            flat.push((id, sub.clone()));
        }
        for (publication, entry) in &publications {
            let mut got = overlay.publish(BrokerId(*entry), publication);
            got.sort();
            let mut want: Vec<SubId> = flat
                .iter()
                .filter(|(_, s)| s.matches(publication))
                .map(|(id, _)| *id)
                .collect();
            want.sort();
            prop_assert_eq!(got, want);
        }
    }

    /// Wire roundtrips for the SCBR message types never lose information.
    #[test]
    fn scbr_wire_roundtrips(
        sub in arb_subscription(),
        publication in arb_publication(),
    ) {
        use securecloud_crypto::wire::Wire;
        prop_assert_eq!(Subscription::from_wire(&sub.to_wire()).unwrap(), sub);
        prop_assert_eq!(
            Publication::from_wire(&publication.to_wire()).unwrap(),
            publication
        );
    }
}
