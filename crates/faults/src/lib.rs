//! Deterministic fault injection for the SecureCloud stack.
//!
//! SecureCloud is pitched as a platform for *dependable* big-data
//! micro-services, so the reproduction needs a way to exercise the
//! recovery machinery — enclave aborts, crashing service handlers, lossy
//! delivery, broker link failures — without giving up the deterministic
//! virtual clock the benchmarks depend on. This crate provides:
//!
//! * [`FaultPlan`] — a schedule of [`FaultEvent`]s pinned to virtual-time
//!   points (milliseconds on the same clock the event bus and container
//!   engine advance),
//! * [`FaultInjector`] — a shareable injector that releases due events as
//!   the clock advances and answers probabilistic queries (message loss /
//!   duplication, syscall failure) from a seeded generator,
//! * [`DetRng`] — the SplitMix64 generator behind it, reused by the
//!   container engine for restart-backoff jitter.
//!
//! Everything is reproducible from a single `u64` seed: no wall-clock, no
//! OS entropy. Two runs with the same seed and the same sequence of calls
//! produce byte-identical [`FaultInjector::trace`] output — the chaos
//! harness asserts exactly that.

use std::sync::Mutex;

/// A small deterministic generator (SplitMix64). Not cryptographic; used
/// for fault sampling and backoff jitter where reproducibility is the
/// point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "DetRng::below requires a positive bound");
        self.next_u64() % bound
    }

    /// Returns `true` with probability `permille`/1000.
    pub fn chance_permille(&mut self, permille: u16) -> bool {
        self.below(1000) < u64::from(permille)
    }
}

/// What the injector can break.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// Abort the enclave backing a container (by engine container id).
    EnclaveAbort {
        /// Engine container id to abort.
        container: u64,
    },
    /// Make a registered micro-service panic on its next delivery.
    ServicePanic {
        /// Service name, as reported by `MicroService::name`.
        service: String,
    },
    /// Fail a broker in the SCBR overlay.
    BrokerFail {
        /// Broker index in the overlay.
        broker: usize,
    },
    /// Fail the next `count` host syscalls served to shielded runtimes.
    SyscallFail {
        /// Number of consecutive syscalls to fail.
        count: u32,
    },
    /// Kill one replica of a sharded KV deployment (the group re-attests
    /// a replacement during failover).
    ReplicaKill {
        /// Shard group index.
        shard: u32,
        /// Replica slot within the group.
        slot: u32,
    },
    /// Stall one replica: it stays resident but stops applying writes and
    /// serving reads, so its version lags the group until a controller
    /// replaces it. A degraded-mode (grey) failure, unlike the crash of
    /// [`FaultKind::ReplicaKill`].
    ReplicaStall {
        /// Shard group index.
        shard: u32,
        /// Replica slot within the group.
        slot: u32,
    },
    /// Flip one bit in a sealed storage block on a replica's untrusted
    /// host disk (which block, and which bit, is drawn from the seeded
    /// generator). The replica's integrity tree detects the corruption,
    /// quarantines the segment, and the group fails the replica over.
    StorageCorruptBlock {
        /// Shard group index.
        shard: u32,
        /// Replica slot within the group.
        slot: u32,
    },
    /// Partition an entire shard group from its clients: quorum operations
    /// are refused (writes fail *unacknowledged*, so nothing can be lost)
    /// until the partition heals `heal_after_ms` later on the virtual
    /// clock.
    NetworkPartition {
        /// Shard group index to isolate.
        group: u32,
        /// Virtual milliseconds after the fire time at which the
        /// partition heals.
        heal_after_ms: u64,
    },
}

impl FaultKind {
    /// A stable, id-free label for the fault family (telemetry label
    /// values; the [`std::fmt::Display`] form carries target ids).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::EnclaveAbort { .. } => "enclave-abort",
            FaultKind::ServicePanic { .. } => "service-panic",
            FaultKind::BrokerFail { .. } => "broker-fail",
            FaultKind::SyscallFail { .. } => "syscall-fail",
            FaultKind::ReplicaKill { .. } => "replica-kill",
            FaultKind::ReplicaStall { .. } => "replica-stall",
            FaultKind::StorageCorruptBlock { .. } => "storage-corrupt-block",
            FaultKind::NetworkPartition { .. } => "network-partition",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::EnclaveAbort { container } => write!(f, "enclave-abort c{container}"),
            FaultKind::ServicePanic { service } => write!(f, "service-panic {service}"),
            FaultKind::BrokerFail { broker } => write!(f, "broker-fail b{broker}"),
            FaultKind::SyscallFail { count } => write!(f, "syscall-fail x{count}"),
            FaultKind::ReplicaKill { shard, slot } => {
                write!(f, "replica-kill s{shard}/r{slot}")
            }
            FaultKind::ReplicaStall { shard, slot } => {
                write!(f, "replica-stall s{shard}/r{slot}")
            }
            FaultKind::StorageCorruptBlock { shard, slot } => {
                write!(f, "storage-corrupt-block s{shard}/r{slot}")
            }
            FaultKind::NetworkPartition {
                group,
                heal_after_ms,
            } => {
                write!(f, "network-partition s{group} heal+{heal_after_ms}ms")
            }
        }
    }
}

/// A fault pinned to a virtual-time point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual time (ms) at which the fault fires.
    pub at_ms: u64,
    /// What breaks.
    pub kind: FaultKind,
}

/// A reproducible schedule of faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault at `at_ms` (builder style).
    #[must_use]
    pub fn at(mut self, at_ms: u64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at_ms, kind });
        self
    }

    /// The scheduled events, sorted by time (stable for equal times).
    #[must_use]
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut events = self.events.clone();
        events.sort_by_key(|e| e.at_ms);
        events
    }
}

/// The fate the injector assigns to one bus delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFate {
    /// Deliver normally.
    Deliver,
    /// Lose this delivery attempt (the lease still starts, so the bus's
    /// redelivery machinery recovers the message).
    Lose,
    /// Deliver, and enqueue a duplicate delivery.
    Duplicate,
}

/// Probabilistic fault rates, in permille (0–1000).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultRates {
    /// Chance a fetched delivery is lost in transit.
    pub message_loss_permille: u16,
    /// Chance a fetched delivery is duplicated.
    pub message_duplication_permille: u16,
    /// Chance a host syscall fails.
    pub syscall_failure_permille: u16,
}

#[derive(Debug)]
struct InjectorState {
    rng: DetRng,
    pending: Vec<FaultEvent>, // sorted descending by time; popped from the back
    rates: FaultRates,
    forced_syscall_failures: u32,
    trace: Vec<String>,
    now_ms: u64,
}

/// A shareable, internally-synchronised fault injector.
///
/// Subsystems hold an `Arc<FaultInjector>`; the simulation harness drives
/// the clock with [`FaultInjector::advance_to`] and applies the returned
/// events to the owning subsystem (abort the container, fail the broker,
/// …). All probabilistic answers come from the seeded generator, so a
/// given seed yields one reproducible fault history.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    /// An injector with no scheduled events.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::with_plan(seed, FaultPlan::new())
    }

    /// An injector executing `plan`.
    #[must_use]
    pub fn with_plan(seed: u64, plan: FaultPlan) -> Self {
        let mut pending = plan.events();
        pending.reverse();
        FaultInjector {
            seed,
            state: Mutex::new(InjectorState {
                rng: DetRng::new(seed),
                pending,
                rates: FaultRates::default(),
                forced_syscall_failures: 0,
                trace: Vec::new(),
                now_ms: 0,
            }),
        }
    }

    /// The seed this injector was built from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the probabilistic fault rates.
    pub fn set_rates(&self, rates: FaultRates) {
        self.lock().rates = rates;
    }

    /// Advances the injector clock to `now_ms` and returns the events that
    /// became due, in schedule order. `SyscallFail` events are consumed
    /// internally (arming [`FaultInjector::syscall_should_fail`]) but are
    /// still returned for visibility.
    pub fn advance_to(&self, now_ms: u64) -> Vec<FaultEvent> {
        let mut state = self.lock();
        state.now_ms = state.now_ms.max(now_ms);
        let mut due = Vec::new();
        while state
            .pending
            .last()
            .is_some_and(|event| event.at_ms <= now_ms)
        {
            let event = state.pending.pop().expect("checked non-empty");
            if let FaultKind::SyscallFail { count } = event.kind {
                state.forced_syscall_failures += count;
            }
            let line = format!("t={} fire {}", event.at_ms, event.kind);
            state.trace.push(line);
            due.push(event);
        }
        due
    }

    /// Decides the fate of one delivery attempt of `message_id`.
    pub fn message_fate(&self, message_id: u64) -> MessageFate {
        let mut state = self.lock();
        let loss = state.rates.message_loss_permille;
        let dup = state.rates.message_duplication_permille;
        let fate = if state.rng.chance_permille(loss) {
            MessageFate::Lose
        } else if state.rng.chance_permille(dup) {
            MessageFate::Duplicate
        } else {
            MessageFate::Deliver
        };
        match fate {
            MessageFate::Deliver => {}
            MessageFate::Lose => {
                let line = format!("t={} msg m{message_id} lost", state.now_ms);
                state.trace.push(line);
            }
            MessageFate::Duplicate => {
                let line = format!("t={} msg m{message_id} duplicated", state.now_ms);
                state.trace.push(line);
            }
        }
        fate
    }

    /// Whether the next host syscall should fail, consuming one armed
    /// failure or sampling the configured rate.
    pub fn syscall_should_fail(&self) -> bool {
        let mut state = self.lock();
        if state.forced_syscall_failures > 0 {
            state.forced_syscall_failures -= 1;
            let line = format!("t={} syscall forced-fail", state.now_ms);
            state.trace.push(line);
            return true;
        }
        let rate = state.rates.syscall_failure_permille;
        let fail = state.rng.chance_permille(rate);
        if fail {
            let line = format!("t={} syscall fail", state.now_ms);
            state.trace.push(line);
        }
        fail
    }

    /// Appends a free-form line to the trace (subsystems record recovery
    /// actions here so the harness can diff two runs byte-for-byte).
    pub fn record(&self, line: impl Into<String>) {
        let mut state = self.lock();
        let stamped = format!("t={} {}", state.now_ms, line.into());
        state.trace.push(stamped);
    }

    /// The event trace so far.
    #[must_use]
    pub fn trace(&self) -> Vec<String> {
        self.lock().trace.clone()
    }

    /// Draws from the injector's deterministic generator (e.g. for jitter).
    pub fn draw_below(&self, bound: u64) -> u64 {
        self.lock().rng.below(bound)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, InjectorState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_rng_reproducible() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(DetRng::new(2).next_u64(), DetRng::new(3).next_u64());
    }

    #[test]
    fn plan_fires_in_time_order() {
        let plan = FaultPlan::new()
            .at(500, FaultKind::BrokerFail { broker: 1 })
            .at(100, FaultKind::EnclaveAbort { container: 7 });
        let injector = FaultInjector::with_plan(42, plan);
        assert!(injector.advance_to(50).is_empty());
        let first = injector.advance_to(100);
        assert_eq!(
            first,
            vec![FaultEvent {
                at_ms: 100,
                kind: FaultKind::EnclaveAbort { container: 7 }
            }]
        );
        let rest = injector.advance_to(1_000);
        assert_eq!(rest.len(), 1);
        assert!(injector.advance_to(2_000).is_empty());
    }

    #[test]
    fn syscall_fail_events_arm_the_injector() {
        let plan = FaultPlan::new().at(10, FaultKind::SyscallFail { count: 2 });
        let injector = FaultInjector::with_plan(0, plan);
        assert!(!injector.syscall_should_fail(), "not armed before t=10");
        injector.advance_to(10);
        assert!(injector.syscall_should_fail());
        assert!(injector.syscall_should_fail());
        assert!(!injector.syscall_should_fail());
    }

    #[test]
    fn degraded_mode_faults_display_and_schedule() {
        let plan = FaultPlan::new()
            .at(700, FaultKind::ReplicaStall { shard: 1, slot: 2 })
            .at(
                300,
                FaultKind::NetworkPartition {
                    group: 0,
                    heal_after_ms: 400,
                },
            );
        let injector = FaultInjector::with_plan(3, plan);
        let due = injector.advance_to(1_000);
        assert_eq!(due.len(), 2, "both degraded-mode faults fire");
        let trace = injector.trace();
        assert!(trace[0].contains("t=300 fire network-partition s0 heal+400ms"));
        assert!(trace[1].contains("t=700 fire replica-stall s1/r2"));
        assert_eq!(
            FaultKind::ReplicaStall { shard: 1, slot: 2 }.name(),
            "replica-stall"
        );
        assert_eq!(
            FaultKind::NetworkPartition {
                group: 0,
                heal_after_ms: 1
            }
            .name(),
            "network-partition"
        );
        assert_eq!(FaultKind::SyscallFail { count: 1 }.name(), "syscall-fail");
    }

    #[test]
    fn storage_corruption_fault_display_and_schedule() {
        let kind = FaultKind::StorageCorruptBlock { shard: 2, slot: 1 };
        assert_eq!(kind.name(), "storage-corrupt-block");
        assert_eq!(kind.to_string(), "storage-corrupt-block s2/r1");
        let injector = FaultInjector::with_plan(7, FaultPlan::new().at(50, kind.clone()));
        let due = injector.advance_to(100);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].kind, kind);
        assert!(injector.trace()[0].contains("t=50 fire storage-corrupt-block s2/r1"));
    }

    #[test]
    fn message_fates_deterministic_per_seed() {
        let fates = |seed| {
            let injector = FaultInjector::new(seed);
            injector.set_rates(FaultRates {
                message_loss_permille: 200,
                message_duplication_permille: 200,
                syscall_failure_permille: 0,
            });
            (0..200)
                .map(|id| injector.message_fate(id))
                .collect::<Vec<_>>()
        };
        assert_eq!(fates(9), fates(9));
        assert!(fates(9).contains(&MessageFate::Lose));
        assert!(fates(9).contains(&MessageFate::Duplicate));
        assert_ne!(fates(9), fates(10));
    }

    #[test]
    fn trace_is_reproducible() {
        let run = || {
            let plan = FaultPlan::new().at(
                5,
                FaultKind::ServicePanic {
                    service: "billing".into(),
                },
            );
            let injector = FaultInjector::with_plan(77, plan);
            injector.set_rates(FaultRates {
                message_loss_permille: 300,
                ..FaultRates::default()
            });
            injector.advance_to(5);
            for id in 0..50 {
                injector.message_fate(id);
            }
            injector.record("restart c1 attempt 1");
            injector.trace()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a[0].contains("service-panic billing"));
        assert!(a.last().unwrap().contains("restart c1"));
    }
}
