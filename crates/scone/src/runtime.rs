//! The assembled SCONE runtime: enclave + SCF + shielded file system.
//!
//! [`SconeRuntime::bootstrap`] performs the full secure-container startup
//! sequence of §V-A:
//!
//! 1. the enclave quotes itself, binding the quote to a fresh channel key,
//! 2. the SCF is fetched from the configuration service over an attested
//!    channel,
//! 3. the sealed FS protection file (shipped in the container image) is
//!    verified against the digest pinned in the SCF and decrypted with the
//!    key from the SCF,
//! 4. the shielded file system is mounted over the untrusted host.

use crate::fshield::{FsProtection, ShieldedFs};
use crate::hostos::HostOs;
use crate::scf::{fetch_scf, Scf};
use crate::stdio::{ShieldedStream, StreamRole};
use crate::syscall::SyncShield;
use crate::SconeError;
use securecloud_crypto::channel::{Identity, Transport};
use securecloud_crypto::x25519::PublicKey;
use securecloud_sgx::enclave::Enclave;
use std::sync::Arc;
use std::time::Duration;

/// A provisioned secure-container runtime.
#[derive(Debug)]
pub struct SconeRuntime {
    enclave: Enclave,
    scf: Scf,
    fs: ShieldedFs,
}

impl SconeRuntime {
    /// Runs the secure-container startup sequence. See the module docs.
    ///
    /// # Errors
    ///
    /// * [`SconeError::Crypto`] — attested channel failure,
    /// * [`SconeError::Config`] — the config service refused the enclave,
    /// * [`SconeError::Tampered`] — the image's FS protection file does not
    ///   match the digest pinned in the SCF.
    pub fn bootstrap<T: Transport>(
        enclave: Enclave,
        transport: T,
        config_service_key: PublicKey,
        host: Arc<dyn HostOs>,
        sealed_protection: &[u8],
    ) -> Result<Self, SconeError> {
        Self::bootstrap_inner(
            enclave,
            transport,
            config_service_key,
            host,
            sealed_protection,
            false,
        )
    }

    /// Like [`SconeRuntime::bootstrap`], but the shielded file system rides
    /// the switchless submission/completion rings: identical provisioning
    /// and shielding, zero enclave transitions per syscall.
    ///
    /// # Errors
    ///
    /// See [`SconeRuntime::bootstrap`].
    pub fn bootstrap_switchless<T: Transport>(
        enclave: Enclave,
        transport: T,
        config_service_key: PublicKey,
        host: Arc<dyn HostOs>,
        sealed_protection: &[u8],
    ) -> Result<Self, SconeError> {
        Self::bootstrap_inner(
            enclave,
            transport,
            config_service_key,
            host,
            sealed_protection,
            true,
        )
    }

    fn bootstrap_inner<T: Transport>(
        mut enclave: Enclave,
        transport: T,
        config_service_key: PublicKey,
        host: Arc<dyn HostOs>,
        sealed_protection: &[u8],
        switchless: bool,
    ) -> Result<Self, SconeError> {
        let channel_identity = Identity::generate(&format!("enclave-{:?}", enclave.id()));
        let scf = fetch_scf(
            &mut enclave,
            &channel_identity,
            transport,
            config_service_key,
        )?;

        let digest = FsProtection::digest(sealed_protection);
        if !securecloud_crypto::ct_eq(&digest, &scf.fs_protection_digest) {
            return Err(SconeError::Tampered(
                "FS protection file does not match the digest in the SCF".into(),
            ));
        }
        let protection = FsProtection::open_sealed(&scf.fs_protection_key, sealed_protection)?;
        let fs = if switchless {
            ShieldedFs::mount_switchless(
                crate::syscall::AsyncShield::switchless(host, crate::rings::DEFAULT_RING_DEPTH),
                protection,
            )
        } else {
            ShieldedFs::mount(SyncShield::new(host), protection)
        };
        Ok(SconeRuntime { enclave, scf, fs })
    }

    /// Assembles a runtime directly from parts (used by tests and by the
    /// container engine after it has already run provisioning itself).
    #[must_use]
    pub fn from_parts(enclave: Enclave, scf: Scf, fs: ShieldedFs) -> Self {
        SconeRuntime { enclave, scf, fs }
    }

    /// Application arguments from the SCF.
    #[must_use]
    pub fn args(&self) -> &[String] {
        &self.scf.args
    }

    /// Environment variable lookup from the SCF.
    #[must_use]
    pub fn env(&self, key: &str) -> Option<&str> {
        self.scf.env.get(key).map(String::as_str)
    }

    /// The provisioned SCF.
    #[must_use]
    pub fn scf(&self) -> &Scf {
        &self.scf
    }

    /// The enclave hosting this runtime.
    #[must_use]
    pub fn enclave(&self) -> &Enclave {
        &self.enclave
    }

    /// Mutable enclave access (for applications charging their own work).
    pub fn enclave_mut(&mut self) -> &mut Enclave {
        &mut self.enclave
    }

    /// Instruments the runtime: enclave transition/memory counters and the
    /// file-system shield's syscall telemetry all feed `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: &Arc<securecloud_telemetry::Telemetry>) {
        self.enclave.set_telemetry(telemetry);
        self.fs.set_telemetry(telemetry.clone());
    }

    fn ensure_alive(&self) -> Result<(), SconeError> {
        if self.enclave.is_destroyed() {
            return Err(SconeError::Sgx(securecloud_sgx::SgxError::Destroyed));
        }
        Ok(())
    }

    /// Creates a shielded file.
    ///
    /// # Errors
    ///
    /// See [`ShieldedFs::create`]; fails once the enclave is destroyed.
    pub fn create_file(&mut self, path: &str) -> Result<(), SconeError> {
        self.ensure_alive()?;
        self.fs.create(path)
    }

    /// Writes to a shielded file.
    ///
    /// # Errors
    ///
    /// See [`ShieldedFs::write`].
    pub fn write_file(&mut self, path: &str, offset: u64, data: &[u8]) -> Result<(), SconeError> {
        self.ensure_alive()?;
        self.fs.write(self.enclave.memory(), path, offset, data)
    }

    /// Reads from a shielded file.
    ///
    /// # Errors
    ///
    /// See [`ShieldedFs::read`].
    pub fn read_file(
        &mut self,
        path: &str,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, SconeError> {
        self.ensure_alive()?;
        self.fs.read(self.enclave.memory(), path, offset, len)
    }

    /// The shielded file system.
    #[must_use]
    pub fn fs(&self) -> &ShieldedFs {
        &self.fs
    }

    /// Simulated time consumed by this runtime's enclave so far.
    #[must_use]
    pub fn elapsed(&mut self) -> Duration {
        self.enclave.memory().elapsed()
    }

    /// Wraps `transport` as the container's shielded stdout: everything
    /// written is encrypted under the SCF's stdout key, so the log
    /// collector at the other end must hold the same SCF-provisioned key.
    #[must_use]
    pub fn shielded_stdout<T: Transport>(&self, transport: T) -> ShieldedStream<T> {
        ShieldedStream::new(transport, &self.scf.stdio.stdout, StreamRole::Producer)
    }

    /// Wraps `transport` as the container's shielded stdin (consumer side
    /// inside the enclave).
    #[must_use]
    pub fn shielded_stdin<T: Transport>(&self, transport: T) -> ShieldedStream<T> {
        ShieldedStream::new(transport, &self.scf.stdio.stdin, StreamRole::Consumer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fshield::FsProtection;
    use crate::hostos::MemHost;
    use crate::scf::{ConfigService, StdioKeys};
    use crate::syscall::SyncShield;
    use securecloud_crypto::channel::memory_pair;
    use securecloud_sgx::attest::AttestationService;
    use securecloud_sgx::enclave::{EnclaveConfig, Platform};
    use std::collections::BTreeMap;
    use std::thread;

    /// Builds a full fixture: image with one shielded file, config service
    /// with the matching SCF, enclave allowed by attestation.
    fn build_world() -> (Platform, Enclave, ConfigService, Arc<MemHost>, Vec<u8>) {
        let platform = Platform::new();
        let enclave = platform
            .launch(EnclaveConfig::new("app", b"app code v1"))
            .unwrap();

        // "Image build": populate the shielded FS in a trusted environment.
        let host = Arc::new(MemHost::new());
        let mut build_mem = securecloud_sgx::mem::MemorySim::native(
            securecloud_sgx::costs::MemoryGeometry::sgx_v1(),
            securecloud_sgx::costs::CostModel::zero(),
        );
        let mut fs = ShieldedFs::mount(SyncShield::new(host.clone()), FsProtection::new());
        fs.create("/app/config.toml").unwrap();
        fs.write(&mut build_mem, "/app/config.toml", 0, b"threshold = 5")
            .unwrap();
        let protection = fs.into_protection();
        let fs_key: [u8; 16] = securecloud_crypto::random_array();
        let sealed_protection = protection.seal(&fs_key);

        let scf = Scf {
            args: vec!["--serve".into()],
            env: BTreeMap::from([("MODE".into(), "prod".into())]),
            fs_protection_key: fs_key,
            fs_protection_digest: FsProtection::digest(&sealed_protection),
            stdio: StdioKeys::generate(),
        };
        let mut attestation = AttestationService::new();
        attestation.register_platform(&platform);
        attestation.allow_measurement(enclave.measurement());
        let mut service = ConfigService::new(attestation);
        service.register(enclave.measurement(), scf);
        (platform, enclave, service, host, sealed_protection)
    }

    #[test]
    fn full_bootstrap_flow() {
        let (_platform, enclave, service, host, sealed_protection) = build_world();
        let (client_t, server_t) = memory_pair();
        let service_key = service.public_key();
        let server = thread::spawn(move || service.serve_one(server_t));
        let mut runtime =
            SconeRuntime::bootstrap(enclave, client_t, service_key, host, &sealed_protection)
                .unwrap();
        server.join().unwrap().unwrap();

        assert_eq!(runtime.args(), ["--serve"]);
        assert_eq!(runtime.env("MODE"), Some("prod"));
        assert_eq!(runtime.env("MISSING"), None);
        // The image's shielded file is readable after provisioning.
        let content = runtime.read_file("/app/config.toml", 0, 64).unwrap();
        assert_eq!(content, b"threshold = 5");
        // And the runtime can persist new shielded state.
        runtime.create_file("/app/state").unwrap();
        runtime.write_file("/app/state", 0, b"counter=1").unwrap();
        assert_eq!(runtime.read_file("/app/state", 0, 9).unwrap(), b"counter=1");
        assert!(runtime.elapsed() > Duration::ZERO);
    }

    #[test]
    fn shielded_stdio_uses_scf_keys() {
        let (_platform, enclave, service, host, sealed_protection) = build_world();
        let (client_t, server_t) = memory_pair();
        let service_key = service.public_key();
        // Keep a copy of the SCF's stdout key via a second registration
        // path: the collector receives the key out of band (it is the image
        // owner). Here we read it back from the provisioned runtime.
        let server = thread::spawn(move || service.serve_one(server_t));
        let runtime =
            SconeRuntime::bootstrap(enclave, client_t, service_key, host, &sealed_protection)
                .unwrap();
        server.join().unwrap().unwrap();
        let stdout_key = runtime.scf().stdio.stdout;

        let (enclave_side, collector_side) = memory_pair();
        let mut stdout = runtime.shielded_stdout(enclave_side);
        stdout.write(b"audit: processed 42 readings").unwrap();
        // The host sees ciphertext frames only.
        let raw = collector_side.recv_frame().unwrap();
        assert!(!raw.windows(5).any(|w| w == b"audit"));
        // The collector holding the SCF key decrypts.
        let (enclave_side2, collector_side2) = memory_pair();
        let mut stdout2 = runtime.shielded_stdout(enclave_side2);
        stdout2.write(b"line").unwrap();
        let mut collector = crate::stdio::ShieldedStream::new(
            collector_side2,
            &stdout_key,
            crate::stdio::StreamRole::Consumer,
        );
        assert_eq!(collector.read().unwrap(), b"line");
    }

    #[test]
    fn switchless_bootstrap_serves_the_same_files() {
        let (_platform, enclave, service, host, sealed_protection) = build_world();
        let (client_t, server_t) = memory_pair();
        let service_key = service.public_key();
        let server = thread::spawn(move || service.serve_one(server_t));
        let mut runtime = SconeRuntime::bootstrap_switchless(
            enclave,
            client_t,
            service_key,
            host,
            &sealed_protection,
        )
        .unwrap();
        server.join().unwrap().unwrap();
        assert_eq!(runtime.fs().shield_mode(), "switchless");
        let content = runtime.read_file("/app/config.toml", 0, 64).unwrap();
        assert_eq!(content, b"threshold = 5");
        runtime.create_file("/app/state").unwrap();
        runtime.write_file("/app/state", 0, b"counter=2").unwrap();
        assert_eq!(runtime.read_file("/app/state", 0, 9).unwrap(), b"counter=2");
    }

    #[test]
    fn bootstrap_rejects_swapped_protection_file() {
        let (_platform, enclave, service, host, _sealed) = build_world();
        let (client_t, server_t) = memory_pair();
        let service_key = service.public_key();
        let server = thread::spawn(move || service.serve_one(server_t));
        // The host ships a different (attacker-chosen) protection file.
        let forged = FsProtection::new().seal(&[0u8; 16]);
        let err = SconeRuntime::bootstrap(enclave, client_t, service_key, host, &forged);
        assert!(matches!(err, Err(SconeError::Tampered(_))));
        let _ = server.join().unwrap();
    }

    #[test]
    fn bootstrap_fails_for_unattested_enclave() {
        let (platform, _enclave, service, host, sealed_protection) = build_world();
        let rogue = platform
            .launch(EnclaveConfig::new("rogue", b"evil code"))
            .unwrap();
        let (client_t, server_t) = memory_pair();
        let service_key = service.public_key();
        let server = thread::spawn(move || service.serve_one(server_t));
        let err = SconeRuntime::bootstrap(rogue, client_t, service_key, host, &sealed_protection);
        assert!(err.is_err());
        assert!(server.join().unwrap().is_err());
    }
}
