//! Shared-memory submission/completion rings: the switchless transport
//! between the enclave and the host OS.
//!
//! This is the io_uring shape applied to shielded syscalls: two
//! fixed-capacity single-producer/single-consumer rings live in *untrusted*
//! shared memory. The enclave pushes [`SubmissionEntry`]s and pops
//! [`CompletionEntry`]s; a host-side servicer drains submissions and pushes
//! completions. Neither side ever performs an enclave transition — each
//! ring operation costs one cross-core cache-line transfer
//! (`CostModel::ring_slot_cycles`), not the ~8k-cycle ECALL/OCALL pair.
//!
//! # Memory-safety argument (untrusted slots)
//!
//! The rings are *outside* the enclave, so everything in them is
//! attacker-controlled the moment it leaves enclave registers:
//!
//! * The **submission** side is write-only from the enclave's point of
//!   view: the host may corrupt, reorder, or drop entries, which degrades
//!   into a wrong/missing completion — handled below.
//! * A **completion** entry carries only `(id, ret)`. The enclave never
//!   trusts a call echoed through untrusted memory; instead the shield
//!   keeps an *in-enclave pending table* (the trusted copy of every
//!   submitted call, keyed by id) and validates `ret` against **its own**
//!   record. A completion whose id is unknown (forged, replayed, or
//!   duplicated by the host) is a `HostViolation` before any byte of it
//!   reaches the application.
//!
//! # Wake protocol
//!
//! Both directions park on a permit-counting [`WaitSignal`] (an
//! eventcount): the producer posts one permit per pushed entry, the
//! consumer loops `wait → try_pop`, so a wake without an entry — a
//! *spurious* wake — is structurally impossible unless the consumer
//! already drained the entry on a fast path. The shield counts both parks
//! and spurious wakes so the "~0 spurious" claim is measurable.
//!
//! Two servicer modes exist:
//!
//! * [`ServicerMode::Deterministic`] — the host services pending
//!   submissions inline, exactly when the enclave parks. Every park/wake
//!   count is a pure function of the workload, so these counters live in
//!   the shared registry without breaking the byte-identical-telemetry
//!   contract.
//! * [`ServicerMode::Threaded`] — a real host thread drains the ring for
//!   genuine wall-clock overlap (benchmark E4b). Its wake timing is
//!   wall-clock-dependent, so park/wake observations stay out of the
//!   registry in this mode (the same rule that keeps the host worker
//!   uninstrumented elsewhere).

use crate::hostos::{HostOs, Syscall, SyscallRet};
use crate::SconeError;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;

/// Default capacity of each ring (submission and completion alike).
pub const DEFAULT_RING_DEPTH: usize = 64;

/// One slot on the submission ring: the id and the (untrusted copy of the)
/// call. The trusted copy stays in the shield's in-enclave pending table.
#[derive(Debug, Clone)]
pub struct SubmissionEntry {
    /// Shield-assigned syscall id.
    pub id: u64,
    /// The call as the host will see it.
    pub call: Syscall,
}

/// One slot on the completion ring. Deliberately *without* a call echo:
/// the enclave validates `ret` against its own pending table.
#[derive(Debug, Clone)]
pub struct CompletionEntry {
    /// The id the host claims to have serviced.
    pub id: u64,
    /// The host's (unvalidated) result.
    pub ret: SyscallRet,
}

/// A fixed-capacity single-producer/single-consumer ring. Head and tail
/// are monotone counters; `Release`/`Acquire` pairs order the slot write
/// against the index publication, the classic SPSC protocol.
struct SpscRing<T> {
    slots: Box<[UnsafeCell<Option<T>>]>,
    head: AtomicUsize, // next slot to pop (consumer-owned)
    tail: AtomicUsize, // next slot to push (producer-owned)
}

// Safety: only one producer touches `tail`/the slot being pushed and only
// one consumer touches `head`/the slot being popped (enforced by the
// non-clonable Producer/Consumer handles); the Acquire/Release pair on the
// indices publishes each slot before the other side reads it.
unsafe impl<T: Send> Sync for SpscRing<T> {}
unsafe impl<T: Send> Send for SpscRing<T> {}

impl<T> SpscRing<T> {
    fn new(capacity: usize) -> Arc<Self> {
        let capacity = capacity.max(1);
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(None))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Arc::new(SpscRing {
            slots,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        })
    }

    #[cfg(test)]
    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// Producer side only.
    fn try_push(&self, value: T) -> Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == self.slots.len() {
            return Err(value);
        }
        // Safety: between head and tail checks above, this slot is free and
        // owned by the single producer.
        unsafe {
            *self.slots[tail % self.slots.len()].get() = Some(value);
        }
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side only.
    fn try_pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // Safety: the slot at head was published by the Release store above
        // and is owned by the single consumer until head advances.
        let value = unsafe { (*self.slots[head % self.slots.len()].get()).take() };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        value
    }
}

/// A permit-counting eventcount: one permit per pushed entry, so waiters
/// wake exactly as often as entries arrive.
#[derive(Default)]
struct WaitSignal {
    permits: Mutex<usize>,
    cond: Condvar,
}

impl WaitSignal {
    fn notify(&self) {
        let mut permits = self.permits.lock().expect("signal lock poisoned");
        *permits += 1;
        self.cond.notify_one();
    }

    fn wait(&self) {
        let mut permits = self.permits.lock().expect("signal lock poisoned");
        while *permits == 0 {
            permits = self.cond.wait(permits).expect("signal lock poisoned");
        }
        *permits -= 1;
    }
}

/// How the host side of the rings is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServicerMode {
    /// Submissions are serviced inline at enclave park points: fully
    /// deterministic, park/wake counters are registry-safe.
    Deterministic,
    /// A real host thread drains the ring (wall-clock overlap; wake
    /// observations are timing-dependent and stay out of the registry).
    Threaded,
}

/// What happened while popping a completion — fed into the shield's
/// park/wake accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParkReport {
    /// The completion ring was empty on first look: the enclave parked
    /// (deterministic mode: the inline servicer ran at this point).
    pub parked: bool,
    /// Wakes that found the ring still empty (possible only when a fast
    /// path consumed the entry a permit referred to).
    pub spurious_wakes: u64,
}

enum Servicer {
    Deterministic {
        host: Arc<dyn HostOs>,
        submissions: Arc<SpscRing<SubmissionEntry>>,
        completions: Arc<SpscRing<CompletionEntry>>,
    },
    Threaded {
        submit_signal: Arc<WaitSignal>,
        complete_signal: Arc<WaitSignal>,
        stop: Arc<AtomicBool>,
        worker: Option<JoinHandle<()>>,
    },
}

/// The enclave-side handle to one submission ring + one completion ring
/// over a host, with the servicer for the far side.
pub struct SyscallRings {
    sub_prod: Arc<SpscRing<SubmissionEntry>>,
    comp_cons: Arc<SpscRing<CompletionEntry>>,
    servicer: Servicer,
    depth: usize,
}

impl std::fmt::Debug for SyscallRings {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyscallRings")
            .field("depth", &self.depth)
            .field("occupancy", &self.sub_prod.len())
            .finish_non_exhaustive()
    }
}

impl SyscallRings {
    /// Builds a ring pair of `depth` slots each over `host`.
    #[must_use]
    pub fn new(host: Arc<dyn HostOs>, depth: usize, mode: ServicerMode) -> Self {
        let depth = depth.max(1);
        let submissions = SpscRing::<SubmissionEntry>::new(depth);
        let completions = SpscRing::<CompletionEntry>::new(depth);
        let servicer = match mode {
            ServicerMode::Deterministic => Servicer::Deterministic {
                host,
                submissions: Arc::clone(&submissions),
                completions: Arc::clone(&completions),
            },
            ServicerMode::Threaded => {
                let submit_signal = Arc::new(WaitSignal::default());
                let complete_signal = Arc::new(WaitSignal::default());
                let stop = Arc::new(AtomicBool::new(false));
                let worker = {
                    let submissions = Arc::clone(&submissions);
                    let completions = Arc::clone(&completions);
                    let submit_signal = Arc::clone(&submit_signal);
                    let complete_signal = Arc::clone(&complete_signal);
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || loop {
                        match submissions.try_pop() {
                            Some(entry) => {
                                let ret = host.execute(&entry.call);
                                // Capacity == depth and the shield never
                                // exceeds `depth` in flight, so this push
                                // cannot fail.
                                let pushed = completions
                                    .try_push(CompletionEntry { id: entry.id, ret })
                                    .is_ok();
                                debug_assert!(pushed, "completion ring overflow");
                                complete_signal.notify();
                            }
                            None => {
                                if stop.load(Ordering::Acquire) {
                                    break;
                                }
                                submit_signal.wait();
                            }
                        }
                    })
                };
                Servicer::Threaded {
                    submit_signal,
                    complete_signal,
                    stop,
                    worker: Some(worker),
                }
            }
        };
        SyscallRings {
            sub_prod: submissions,
            comp_cons: completions,
            servicer,
            depth,
        }
    }

    /// Ring capacity (slots per direction).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Whether park/wake observations are workload-deterministic.
    #[must_use]
    pub fn is_deterministic(&self) -> bool {
        matches!(self.servicer, Servicer::Deterministic { .. })
    }

    /// Pushes one submission. The shield bounds in-flight calls by `depth`,
    /// so a full ring here is a protocol bug, reported as `ShieldStopped`.
    ///
    /// # Errors
    ///
    /// [`SconeError::ShieldStopped`] if the ring is unexpectedly full.
    pub fn push_submission(&mut self, id: u64, call: Syscall) -> Result<(), SconeError> {
        self.sub_prod
            .try_push(SubmissionEntry { id, call })
            .map_err(|_| SconeError::ShieldStopped)?;
        if let Servicer::Threaded { submit_signal, .. } = &self.servicer {
            submit_signal.notify();
        }
        Ok(())
    }

    /// Pops one completion without blocking.
    #[must_use]
    pub fn try_pop_completion(&mut self) -> Option<CompletionEntry> {
        self.comp_cons.try_pop()
    }

    /// Pops one completion, parking until the host produces one. The caller
    /// must have at least one submission outstanding.
    pub fn pop_completion(&mut self) -> (CompletionEntry, ParkReport) {
        let mut report = ParkReport::default();
        if let Some(entry) = self.comp_cons.try_pop() {
            return (entry, report);
        }
        report.parked = true;
        match &self.servicer {
            Servicer::Deterministic {
                host,
                submissions,
                completions,
            } => {
                // The inline servicer runs exactly at this park point:
                // drain every queued submission in order.
                while let Some(entry) = submissions.try_pop() {
                    let ret = host.execute(&entry.call);
                    let pushed = completions
                        .try_push(CompletionEntry { id: entry.id, ret })
                        .is_ok();
                    debug_assert!(pushed, "completion ring overflow");
                }
                let entry = self
                    .comp_cons
                    .try_pop()
                    .expect("caller had a submission outstanding");
                (entry, report)
            }
            Servicer::Threaded {
                complete_signal, ..
            } => loop {
                complete_signal.wait();
                match self.comp_cons.try_pop() {
                    Some(entry) => return (entry, report),
                    None => report.spurious_wakes += 1,
                }
            },
        }
    }
}

impl Drop for SyscallRings {
    fn drop(&mut self) {
        if let Servicer::Threaded {
            stop,
            submit_signal,
            worker,
            ..
        } = &mut self.servicer
        {
            stop.store(true, Ordering::Release);
            submit_signal.notify();
            if let Some(worker) = worker.take() {
                let _ = worker.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostos::MemHost;

    #[test]
    fn spsc_ring_push_pop_wraps() {
        let ring = SpscRing::<u32>::new(4);
        assert_eq!(ring.capacity(), 4);
        for round in 0..10u32 {
            for i in 0..4 {
                ring.try_push(round * 4 + i).unwrap();
            }
            assert!(ring.try_push(99).is_err(), "full ring refuses");
            assert_eq!(ring.len(), 4);
            for i in 0..4 {
                assert_eq!(ring.try_pop(), Some(round * 4 + i));
            }
            assert_eq!(ring.try_pop(), None);
        }
    }

    #[test]
    fn deterministic_mode_services_at_park_points() {
        let host = Arc::new(MemHost::new());
        let mut rings = SyscallRings::new(host.clone(), 8, ServicerMode::Deterministic);
        assert!(rings.is_deterministic());
        rings
            .push_submission(
                0,
                Syscall::Open {
                    path: "/r".into(),
                    create: true,
                },
            )
            .unwrap();
        // Nothing serviced yet: the host runs only when the enclave parks.
        assert_eq!(host.call_count(), 0);
        assert!(rings.try_pop_completion().is_none());
        let (entry, report) = rings.pop_completion();
        assert_eq!(entry.id, 0);
        assert!(matches!(entry.ret, SyscallRet::Fd(_)));
        assert!(report.parked);
        assert_eq!(report.spurious_wakes, 0);
        assert_eq!(host.call_count(), 1);
    }

    #[test]
    fn deterministic_park_drains_all_queued_submissions() {
        let host = Arc::new(MemHost::new());
        let mut rings = SyscallRings::new(host.clone(), 8, ServicerMode::Deterministic);
        for i in 0..5u64 {
            rings
                .push_submission(
                    i,
                    Syscall::Open {
                        path: format!("/f{i}"),
                        create: true,
                    },
                )
                .unwrap();
        }
        let (first, report) = rings.pop_completion();
        assert!(report.parked, "first pop parks and services the batch");
        assert_eq!(first.id, 0);
        for expect in 1..5u64 {
            let (entry, report) = rings.pop_completion();
            assert_eq!(entry.id, expect);
            assert!(!report.parked, "batch already serviced: no further park");
        }
        assert_eq!(host.call_count(), 5);
    }

    #[test]
    fn threaded_mode_services_without_enclave_involvement() {
        let host = Arc::new(MemHost::new());
        let mut rings = SyscallRings::new(host.clone(), 16, ServicerMode::Threaded);
        assert!(!rings.is_deterministic());
        for i in 0..16u64 {
            rings
                .push_submission(
                    i,
                    Syscall::Open {
                        path: format!("/t{i}"),
                        create: true,
                    },
                )
                .unwrap();
        }
        let mut seen = Vec::new();
        for _ in 0..16 {
            let (entry, _report) = rings.pop_completion();
            assert!(matches!(entry.ret, SyscallRet::Fd(_)));
            seen.push(entry.id);
        }
        // SPSC rings preserve order end to end.
        assert_eq!(seen, (0..16).collect::<Vec<_>>());
        assert_eq!(host.call_count(), 16);
    }

    #[test]
    fn ring_overflow_is_reported_not_corrupted() {
        let host = Arc::new(MemHost::new());
        let mut rings = SyscallRings::new(host, 2, ServicerMode::Deterministic);
        let open = |i: u64| Syscall::Open {
            path: format!("/o{i}"),
            create: true,
        };
        rings.push_submission(0, open(0)).unwrap();
        rings.push_submission(1, open(1)).unwrap();
        assert!(matches!(
            rings.push_submission(2, open(2)),
            Err(SconeError::ShieldStopped)
        ));
    }
}
