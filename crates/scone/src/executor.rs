//! An in-enclave cooperative futures executor over the switchless rings.
//!
//! [`crate::tasks`] schedules hand-rolled state machines; this module is
//! the same M:N idea expressed with Rust's native `Future`/`Waker`
//! machinery: application coroutines `await` shielded syscalls, the
//! executor multiplexes them onto one enclave thread, and when every
//! coroutine is blocked it parks on the ring's completion signal — no
//! busy-polling and, as always on the switchless plane, no enclave
//! transitions.
//!
//! Futures never touch the shield or the memory simulation directly (a
//! future's `poll` has no way to carry `&mut MemorySim` soundly across
//! `await` points). Instead [`EnclaveHandle::syscall`] parks the request
//! in a shared staging cell; the executor drains staged requests after
//! each poll — where it *does* hold `&mut MemorySim` — submits them on the
//! [`AsyncShield`], and routes each completion back to its cell before
//! waking the owning task.

use crate::hostos::{Syscall, SyscallRet};
use crate::syscall::AsyncShield;
use crate::tasks::USER_SWITCH_CYCLES;
use crate::SconeError;
use securecloud_sgx::mem::MemorySim;
use securecloud_telemetry::Telemetry;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// The per-syscall mailbox shared between a [`SyscallFuture`] and the
/// executor: the request travels out through `call`, the validated result
/// comes back through `ret`.
#[derive(Debug, Default)]
struct SyscallCell {
    call: Option<Syscall>,
    ret: Option<Result<SyscallRet, SconeError>>,
}

/// State shared between the executor and every [`EnclaveHandle`].
#[derive(Default)]
struct Staging {
    /// Syscalls staged during polls, waiting for the executor to submit.
    submissions: Vec<(Rc<RefCell<SyscallCell>>, Waker)>,
    /// Compute ops requested by futures, charged after the poll returns.
    ops: u64,
}

/// A cloneable handle futures use to reach the enclave services.
#[derive(Clone)]
pub struct EnclaveHandle {
    staging: Rc<RefCell<Staging>>,
}

impl EnclaveHandle {
    /// Issues a shielded syscall; `await` the returned future for the
    /// validated result.
    #[must_use]
    pub fn syscall(&self, call: Syscall) -> SyscallFuture {
        SyscallFuture {
            staging: Rc::clone(&self.staging),
            cell: Rc::new(RefCell::new(SyscallCell {
                call: Some(call),
                ret: None,
            })),
            staged: false,
        }
    }

    /// Records `n` application compute operations, charged to the enclave
    /// memory simulation after the current poll.
    pub fn charge_ops(&self, n: u64) {
        self.staging.borrow_mut().ops += n;
    }

    /// Cooperatively yields to the other tasks once.
    #[must_use]
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }
}

/// Future for one shielded syscall; resolves to the validated result.
pub struct SyscallFuture {
    staging: Rc<RefCell<Staging>>,
    cell: Rc<RefCell<SyscallCell>>,
    staged: bool,
}

impl Future for SyscallFuture {
    type Output = Result<SyscallRet, SconeError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if let Some(ret) = this.cell.borrow_mut().ret.take() {
            return Poll::Ready(ret);
        }
        if !this.staged {
            this.staged = true;
            this.staging
                .borrow_mut()
                .submissions
                .push((Rc::clone(&this.cell), cx.waker().clone()));
        }
        Poll::Pending
    }
}

/// Future for [`EnclaveHandle::yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.get_mut().yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// Pushes the woken task's id onto the executor's ready queue. `Wake`
/// requires `Send + Sync`, so the queue sits behind a mutex even though
/// the executor itself is single-threaded.
struct TaskWaker {
    task_id: usize,
    ready: Arc<Mutex<VecDeque<usize>>>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready
            .lock()
            .expect("ready queue poisoned")
            .push_back(self.task_id);
    }
}

/// Executor run statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Future polls (each charged one user-level switch).
    pub polls: u64,
    /// Tasks driven to completion.
    pub tasks_completed: u64,
    /// Syscalls submitted on the rings.
    pub syscalls: u64,
    /// Times the executor parked on the completion signal.
    pub parks: u64,
}

/// The in-enclave executor: a ready queue of spawned futures over one
/// switchless [`AsyncShield`].
pub struct Executor {
    shield: AsyncShield,
    staging: Rc<RefCell<Staging>>,
    tasks: HashMap<usize, Pin<Box<dyn Future<Output = ()>>>>,
    wakers: HashMap<usize, Waker>,
    ready: Arc<Mutex<VecDeque<usize>>>,
    in_flight: HashMap<u64, (Rc<RefCell<SyscallCell>>, Waker)>,
    next_task: usize,
    stats: ExecStats,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("tasks", &self.tasks.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Executor {
    /// Creates an executor issuing syscalls through `shield`.
    #[must_use]
    pub fn new(shield: AsyncShield) -> Self {
        Executor {
            shield,
            staging: Rc::new(RefCell::new(Staging::default())),
            tasks: HashMap::new(),
            wakers: HashMap::new(),
            ready: Arc::new(Mutex::new(VecDeque::new())),
            in_flight: HashMap::new(),
            next_task: 0,
            stats: ExecStats::default(),
        }
    }

    /// Routes the underlying shield's telemetry into `telemetry`'s
    /// registry.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.shield.set_telemetry(telemetry);
    }

    /// The handle futures use to issue syscalls and charge compute.
    #[must_use]
    pub fn handle(&self) -> EnclaveHandle {
        EnclaveHandle {
            staging: Rc::clone(&self.staging),
        }
    }

    /// Spawns a future; it becomes runnable immediately.
    pub fn spawn(&mut self, fut: impl Future<Output = ()> + 'static) {
        let id = self.next_task;
        self.next_task += 1;
        self.tasks.insert(id, Box::pin(fut));
        self.wakers.insert(
            id,
            Waker::from(Arc::new(TaskWaker {
                task_id: id,
                ready: Arc::clone(&self.ready),
            })),
        );
        self.ready
            .lock()
            .expect("ready queue poisoned")
            .push_back(id);
    }

    /// Number of unfinished tasks.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.tasks.len()
    }

    /// Run statistics so far.
    #[must_use]
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    fn pop_ready(&self) -> Option<usize> {
        self.ready.lock().expect("ready queue poisoned").pop_front()
    }

    /// Submits everything futures staged during the last poll, now that
    /// the executor holds the memory simulation.
    fn flush_staging(&mut self, mem: &mut MemorySim) -> Result<(), SconeError> {
        let (submissions, ops) = {
            let mut staging = self.staging.borrow_mut();
            (
                std::mem::take(&mut staging.submissions),
                std::mem::take(&mut staging.ops),
            )
        };
        if ops > 0 {
            mem.charge_ops(ops);
        }
        for (cell, waker) in submissions {
            let call = cell
                .borrow_mut()
                .call
                .take()
                .expect("staged syscall has a call");
            let id = self.shield.submit(mem, call)?;
            self.stats.syscalls += 1;
            self.in_flight.insert(id, (cell, waker));
        }
        Ok(())
    }

    /// Drives every spawned future to completion.
    ///
    /// # Errors
    ///
    /// Propagates [`SconeError`] from the shield (host violations abort
    /// the run), and reports [`SconeError::ShieldStopped`] if tasks are
    /// pending but nothing is in flight or runnable (a deadlocked await).
    pub fn run(&mut self, mem: &mut MemorySim) -> Result<ExecStats, SconeError> {
        while !self.tasks.is_empty() {
            while let Some(task_id) = self.pop_ready() {
                let Some(task) = self.tasks.get_mut(&task_id) else {
                    continue; // stale wake for a finished task
                };
                mem.charge_cycles(USER_SWITCH_CYCLES);
                self.stats.polls += 1;
                let waker = self.wakers[&task_id].clone();
                let mut cx = Context::from_waker(&waker);
                if task.as_mut().poll(&mut cx).is_ready() {
                    self.tasks.remove(&task_id);
                    self.wakers.remove(&task_id);
                    self.stats.tasks_completed += 1;
                }
                self.flush_staging(mem)?;
            }
            if self.tasks.is_empty() {
                break;
            }
            if self.shield.in_flight() == 0 {
                // Pending tasks, empty ready queue, nothing in flight:
                // the program awaits something that can never resolve.
                return Err(SconeError::ShieldStopped);
            }
            // Park on the ring's completion signal; each wake resolves
            // exactly one future.
            let completion = self.shield.complete(mem)?;
            self.stats.parks += 1;
            if let Some((cell, waker)) = self.in_flight.remove(&completion.id) {
                cell.borrow_mut().ret = Some(Ok(completion.ret));
                waker.wake();
            }
        }
        Ok(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostos::MemHost;
    use crate::rings::ServicerMode;
    use securecloud_sgx::costs::{CostModel, MemoryGeometry};

    fn mem() -> MemorySim {
        MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::sgx_v1())
    }

    async fn write_file(handle: EnclaveHandle, path: String, records: u64) {
        let ret = handle
            .syscall(Syscall::Open {
                path: path.clone(),
                create: true,
            })
            .await
            .unwrap();
        let SyscallRet::Fd(fd) = ret else {
            panic!("expected fd for {path}, got {ret:?}")
        };
        for i in 0..records {
            handle.charge_ops(10);
            let ack = handle
                .syscall(Syscall::Pwrite {
                    fd,
                    offset: i * 8,
                    data: i.to_le_bytes().to_vec(),
                })
                .await
                .unwrap();
            assert!(matches!(ack, SyscallRet::Done(8)));
        }
        handle.syscall(Syscall::Close { fd }).await.unwrap();
    }

    #[test]
    fn futures_interleave_over_the_rings() {
        let host = Arc::new(MemHost::new());
        let mut exec = Executor::new(AsyncShield::switchless(host.clone(), 8));
        let handle = exec.handle();
        for i in 0..6u64 {
            exec.spawn(write_file(handle.clone(), format!("/fut{i}"), 12));
        }
        let mut m = mem();
        let stats = exec.run(&mut m).unwrap();
        assert_eq!(stats.tasks_completed, 6);
        assert_eq!(stats.syscalls, 6 * 14); // open + 12 writes + close
        assert_eq!(exec.pending(), 0);
        for i in 0..6 {
            let raw = host.raw_file(&format!("/fut{i}")).unwrap();
            assert_eq!(raw.len(), 12 * 8);
        }
        // Switchless end to end: the whole run costs less than issuing the
        // same syscalls synchronously (one transition pair each).
        let transition_total = 6 * 14 * CostModel::sgx_v1().transition_pair();
        assert!(m.cycles() < transition_total);
    }

    #[test]
    fn yield_now_round_robins() {
        let host = Arc::new(MemHost::new());
        let mut exec = Executor::new(AsyncShield::switchless(host, 4));
        let handle = exec.handle();
        let order: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for id in 0..3u32 {
            let handle = handle.clone();
            let order = Rc::clone(&order);
            exec.spawn(async move {
                for _ in 0..2 {
                    order.borrow_mut().push(id);
                    handle.yield_now().await;
                }
            });
        }
        let mut m = mem();
        let stats = exec.run(&mut m).unwrap();
        assert_eq!(stats.tasks_completed, 3);
        assert_eq!(stats.syscalls, 0);
        assert_eq!(*order.borrow(), vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn executor_runs_are_deterministic() {
        let run = |mode: ServicerMode| {
            let host = Arc::new(MemHost::new());
            let mut exec = Executor::new(AsyncShield::with_rings(host.clone(), 8, mode));
            let handle = exec.handle();
            for i in 0..4u64 {
                exec.spawn(write_file(handle.clone(), format!("/d{i}"), 9));
            }
            let mut m = mem();
            let stats = exec.run(&mut m).unwrap();
            (stats, m.cycles(), host.raw_file("/d3").unwrap())
        };
        let a = run(ServicerMode::Deterministic);
        let b = run(ServicerMode::Deterministic);
        assert_eq!(a, b);
        // The threaded servicer produces the same final state and the same
        // deterministic cycle count — only wall-clock overlap differs.
        let c = run(ServicerMode::Threaded);
        assert_eq!(a.1, c.1);
        assert_eq!(a.2, c.2);
    }

    #[test]
    fn deadlocked_await_is_reported() {
        let host = Arc::new(MemHost::new());
        let mut exec = Executor::new(AsyncShield::switchless(host, 4));
        exec.spawn(async {
            std::future::pending::<()>().await;
        });
        let mut m = mem();
        assert!(matches!(exec.run(&mut m), Err(SconeError::ShieldStopped)));
    }
}
