//! The shielded system-call interface.
//!
//! SCONE exposes an *external* system-call interface to the micro-service:
//! arguments are copied out of the enclave, results are sanity-checked and
//! copied back in before the application sees them (§IV of the paper).
//! Two execution modes are provided:
//!
//! * [`SyncShield`] — the naive mode: every call exits and re-enters the
//!   enclave, paying two transitions (~8k cycles) per call.
//! * [`AsyncShield`] — SCONE's *switchless* interface: submissions are
//!   pushed onto fixed-capacity shared-memory rings
//!   ([`crate::rings::SyscallRings`]) serviced by the host without any
//!   enclave transition; the enclave pays one ring-slot cache-line
//!   transfer per hop and parks on a wake signal instead of busy-polling.
//!
//! Benchmark E4 (`syscall_async`) compares the two, reproducing the paper's
//! claim that the asynchronous interface is what makes SCONE's performance
//! "acceptable"; E15 (`rings`) sweeps ring depth, payload, and worker
//! count over the switchless plane.

use crate::hostos::{HostOs, Syscall, SyscallRet};
use crate::rings::{ParkReport, ServicerMode, SyscallRings, DEFAULT_RING_DEPTH};
use crate::SconeError;
use securecloud_sgx::mem::{MemorySim, Region};
use securecloud_telemetry::{Counter, Gauge, Telemetry};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Telemetry hook shared by both shield modes: per-kind syscall counters
/// and enclave-side cycle histograms, labelled with the shield mode so
/// the sync/async cost gap (benchmark E4) shows up in one metric family.
#[derive(Debug, Clone)]
struct ShieldTelemetry {
    telemetry: Arc<Telemetry>,
    mode: &'static str,
}

impl ShieldTelemetry {
    fn record(&self, kind: &'static str, cycles: u64) {
        self.telemetry
            .counter_with(
                "securecloud_scone_syscalls_total",
                &[("kind", kind), ("mode", self.mode)],
            )
            .inc();
        self.telemetry
            .histogram_with(
                "securecloud_scone_syscall_cycles",
                &[("kind", kind), ("mode", self.mode)],
            )
            .observe(cycles);
    }

    fn violation(&self, kind: &'static str) {
        self.telemetry
            .counter_with(
                "securecloud_scone_host_violations_total",
                &[("kind", kind), ("mode", self.mode)],
            )
            .inc();
    }
}

/// Cycle charges specific to the shield machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShieldCosts {
    /// Cost of one lock-free queue operation (cache-line transfer + fence).
    pub queue_op_cycles: u64,
    /// Copy throughput: cycles charged per 8 bytes moved across the
    /// boundary (memcpy plus pointer/length sanitisation).
    pub copy_cycles_per_8_bytes: u64,
}

impl Default for ShieldCosts {
    fn default() -> Self {
        ShieldCosts {
            queue_op_cycles: 300,
            copy_cycles_per_8_bytes: 1,
        }
    }
}

impl ShieldCosts {
    fn copy_cost(&self, bytes: usize) -> u64 {
        (bytes as u64).div_ceil(8) * self.copy_cycles_per_8_bytes
    }
}

fn call_payload_bytes(call: &Syscall) -> usize {
    match call {
        Syscall::Open { path, .. } | Syscall::Unlink { path } => path.len(),
        Syscall::Pwrite { data, .. } => data.len(),
        Syscall::Pread { .. }
        | Syscall::Ftruncate { .. }
        | Syscall::Close { .. }
        | Syscall::Fstat { .. } => 0,
    }
}

fn ret_payload_bytes(ret: &SyscallRet) -> usize {
    match ret {
        SyscallRet::Data(d) => d.len(),
        SyscallRet::Error(e) => e.len(),
        SyscallRet::Fd(_) | SyscallRet::Done(_) | SyscallRet::Len(_) => 0,
    }
}

/// Sanity checks applied to host return values before they enter the
/// enclave: the host is untrusted and may answer with the wrong shape or
/// oversized data (an Iago-style attack).
fn validate(call: &Syscall, ret: &SyscallRet) -> Result<(), SconeError> {
    match (call, ret) {
        (_, SyscallRet::Error(_)) => Ok(()),
        (Syscall::Open { .. }, SyscallRet::Fd(_)) => Ok(()),
        (Syscall::Pread { len, .. }, SyscallRet::Data(data)) => {
            if data.len() > *len {
                Err(SconeError::HostViolation(format!(
                    "pread returned {} bytes for a {len}-byte request",
                    data.len()
                )))
            } else {
                Ok(())
            }
        }
        (Syscall::Pwrite { data, .. }, SyscallRet::Done(n)) => {
            if *n > data.len() as u64 {
                Err(SconeError::HostViolation(format!(
                    "pwrite acknowledged {n} bytes for a {}-byte buffer",
                    data.len()
                )))
            } else {
                Ok(())
            }
        }
        (Syscall::Ftruncate { .. }, SyscallRet::Done(_))
        | (Syscall::Close { .. }, SyscallRet::Done(_))
        | (Syscall::Unlink { .. }, SyscallRet::Done(_))
        | (Syscall::Fstat { .. }, SyscallRet::Len(_)) => Ok(()),
        (call, ret) => Err(SconeError::HostViolation(format!(
            "host returned {ret:?} for {call:?}"
        ))),
    }
}

/// Synchronous shielded syscalls: one enclave exit/entry round trip each.
#[derive(Debug, Clone)]
pub struct SyncShield {
    host: Arc<dyn HostOs>,
    costs: ShieldCosts,
    telemetry: Option<ShieldTelemetry>,
}

impl SyncShield {
    /// Creates a synchronous shield over `host`.
    pub fn new(host: Arc<dyn HostOs>) -> Self {
        SyncShield {
            host,
            costs: ShieldCosts::default(),
            telemetry: None,
        }
    }

    /// Routes per-kind syscall counters and cycle histograms (labelled
    /// `mode="sync"`) into `telemetry`'s registry.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(ShieldTelemetry {
            telemetry,
            mode: "sync",
        });
    }

    /// Issues one shielded syscall from the enclave whose memory system is
    /// `mem`, charging transitions, copies, and validation.
    ///
    /// # Errors
    ///
    /// [`SconeError::HostViolation`] if the host's answer fails the sanity
    /// checks; the malformed answer never reaches the application.
    pub fn call(&self, mem: &mut MemorySim, call: &Syscall) -> Result<SyscallRet, SconeError> {
        let start = mem.cycles();
        // Copy arguments out of the enclave.
        mem.charge_cycles(self.costs.copy_cost(call_payload_bytes(call)));
        // OCALL out, syscall, ECALL back in.
        let transition = mem.costs().transition_pair();
        mem.charge_cycles(transition);
        let ret = self.host.execute(call);
        if let Err(e) = validate(call, &ret) {
            if let Some(t) = &self.telemetry {
                t.violation(call.kind());
            }
            return Err(e);
        }
        // Copy the (validated) result into the enclave.
        mem.charge_cycles(self.costs.copy_cost(ret_payload_bytes(&ret)));
        if let Some(t) = &self.telemetry {
            t.record(call.kind(), mem.cycles().saturating_sub(start));
        }
        Ok(ret)
    }
}

impl std::fmt::Debug for dyn HostOs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dyn HostOs")
    }
}

/// A completed asynchronous syscall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The id returned by [`AsyncShield::submit`].
    pub id: u64,
    /// The validated host result.
    pub ret: SyscallRet,
}

/// Registry handles for the switchless plane. The depth gauge derives from
/// enclave-side state only (deterministic in every mode); park/wake counts
/// are recorded only when the servicer is deterministic, because threaded
/// wake timing is wall-clock-dependent and would break the byte-identical
/// telemetry contract.
#[derive(Debug, Clone)]
struct RingMetrics {
    depth: Gauge,
    wakes: Counter,
    spurious_wakes: Counter,
}

/// Bytes of in-enclave pending-table state per in-flight call: one cache
/// line holding the trusted copy's bookkeeping.
const PENDING_SLOT_BYTES: u64 = 64;

/// Switchless shielded syscalls over shared-memory submission/completion
/// rings: the enclave thread never transitions — it pushes ring slots,
/// parks on completions, and validates every host answer against its own
/// in-enclave pending table (see [`crate::rings`] for the memory-safety
/// argument).
#[derive(Debug)]
pub struct AsyncShield {
    rings: SyscallRings,
    /// The trusted, in-enclave copy of every submitted call, keyed by id.
    /// Host answers are validated against *this*, never against anything
    /// echoed through untrusted ring memory.
    pending: HashMap<u64, Syscall>,
    /// Completions popped off the ring but not yet handed to the caller
    /// (filled when `submit` must reap to free a ring slot).
    reaped: VecDeque<(u64, SyscallRet)>,
    /// Backing store of the pending table, charged through the enclave
    /// memory simulation.
    table: Option<Region>,
    next_id: u64,
    costs: ShieldCosts,
    telemetry: Option<ShieldTelemetry>,
    metrics: Option<RingMetrics>,
}

impl AsyncShield {
    /// Builds a switchless shield over `host` with a real host-side
    /// servicer thread and the default ring depth: genuine wall-clock
    /// overlap between enclave and host (benchmark E4b).
    pub fn new(host: Arc<dyn HostOs>) -> Self {
        Self::with_rings(host, DEFAULT_RING_DEPTH, ServicerMode::Threaded)
    }

    /// Builds a switchless shield whose host side is serviced inline at
    /// enclave park points: fully deterministic, so ring park/wake counters
    /// are recorded in the registry.
    pub fn switchless(host: Arc<dyn HostOs>, depth: usize) -> Self {
        Self::with_rings(host, depth, ServicerMode::Deterministic)
    }

    /// Builds a switchless shield with explicit ring depth and servicer
    /// mode.
    pub fn with_rings(host: Arc<dyn HostOs>, depth: usize, mode: ServicerMode) -> Self {
        AsyncShield {
            rings: SyscallRings::new(host, depth, mode),
            pending: HashMap::new(),
            reaped: VecDeque::new(),
            table: None,
            next_id: 0,
            costs: ShieldCosts::default(),
            telemetry: None,
            metrics: None,
        }
    }

    /// Ring capacity (maximum in-flight calls before `submit` reaps).
    #[must_use]
    pub fn ring_depth(&self) -> usize {
        self.rings.depth()
    }

    /// Whether ring park/wake observations are workload-deterministic.
    #[must_use]
    pub fn is_deterministic(&self) -> bool {
        self.rings.is_deterministic()
    }

    /// Routes per-kind syscall counters and cycle histograms (labelled
    /// `mode="async"`) plus ring-depth gauges and wake counters into
    /// `telemetry`'s registry. Only enclave-side cycles are recorded; the
    /// host servicer thread is never instrumented (it runs on wall-clock
    /// time and would break trace determinism), and park/wake counts are
    /// recorded only in deterministic servicer mode for the same reason.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.metrics = Some(RingMetrics {
            depth: telemetry.gauge_with("securecloud_scone_ring_depth", &[]),
            wakes: telemetry.counter_with("securecloud_scone_ring_wakes_total", &[]),
            spurious_wakes: telemetry
                .counter_with("securecloud_scone_ring_spurious_wakes_total", &[]),
        });
        self.telemetry = Some(ShieldTelemetry {
            telemetry,
            mode: "async",
        });
    }

    fn touch_pending_slot(&mut self, mem: &mut MemorySim, id: u64) {
        let depth = self.rings.depth() as u64;
        let table = *self
            .table
            .get_or_insert_with(|| mem.alloc(depth * PENDING_SLOT_BYTES));
        mem.touch_region(
            table,
            (id % depth) * PENDING_SLOT_BYTES,
            PENDING_SLOT_BYTES as usize,
        );
    }

    fn note_park(&self, report: ParkReport) {
        // Threaded wake timing is wall-clock-dependent: keep it out of the
        // registry (deterministic mode's counts are pure workload functions).
        if !self.rings.is_deterministic() {
            return;
        }
        if let Some(m) = &self.metrics {
            if report.parked {
                m.wakes.inc();
            }
            m.spurious_wakes.add(report.spurious_wakes);
        }
    }

    fn set_depth_gauge(&self) {
        if let Some(m) = &self.metrics {
            m.depth.set(self.pending.len() as i64);
        }
    }

    /// Pops one completion off the ring into the reaped buffer, charging
    /// the slot transfer.
    fn reap_one(&mut self, mem: &mut MemorySim) {
        let (entry, report) = self.rings.pop_completion();
        mem.charge_cycles(mem.costs().ring_slot_cycles);
        self.note_park(report);
        self.reaped.push_back((entry.id, entry.ret));
    }

    /// Submits a syscall without leaving the enclave; returns its id. If
    /// every ring slot is occupied, one completion is reaped (and buffered
    /// for [`AsyncShield::complete`]) to make room — so depth bounds ring
    /// occupancy, not the caller's pipeline length.
    ///
    /// # Errors
    ///
    /// [`SconeError::ShieldStopped`] if the ring protocol is violated.
    pub fn submit(&mut self, mem: &mut MemorySim, call: Syscall) -> Result<u64, SconeError> {
        // Copy arguments out of the enclave into the ring slot.
        mem.charge_cycles(self.costs.copy_cost(call_payload_bytes(&call)));
        if self.pending.len() - self.reaped.len() == self.rings.depth() {
            self.reap_one(mem);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.touch_pending_slot(mem, id);
        mem.charge_cycles(mem.costs().ring_slot_cycles);
        self.rings.push_submission(id, call.clone())?;
        self.pending.insert(id, call);
        self.set_depth_gauge();
        Ok(id)
    }

    /// Number of submitted but uncompleted calls.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Waits for the next completion — parking on the ring's wake signal,
    /// never busy-polling and never transitioning — then validates it
    /// against the in-enclave pending table.
    ///
    /// # Errors
    ///
    /// [`SconeError::ShieldStopped`] if nothing is in flight;
    /// [`SconeError::HostViolation`] if the host answered with an unknown
    /// or duplicated id, or the result fails validation.
    pub fn complete(&mut self, mem: &mut MemorySim) -> Result<Completion, SconeError> {
        if self.pending.is_empty() {
            return Err(SconeError::ShieldStopped);
        }
        if self.reaped.is_empty() {
            self.reap_one(mem);
        }
        let (id, ret) = self.reaped.pop_front().expect("reap_one buffered an entry");
        self.touch_pending_slot(mem, id);
        // The id must match a call *we* recorded: a forged, replayed, or
        // duplicated completion from the untrusted ring dies here.
        let Some(call) = self.pending.remove(&id) else {
            if let Some(t) = &self.telemetry {
                t.violation("unknown");
            }
            return Err(SconeError::HostViolation(format!(
                "completion for unknown id {id}"
            )));
        };
        self.set_depth_gauge();
        if let Err(e) = validate(&call, &ret) {
            if let Some(t) = &self.telemetry {
                t.violation(call.kind());
            }
            return Err(e);
        }
        // Copy the (validated) result into the enclave.
        mem.charge_cycles(self.costs.copy_cost(ret_payload_bytes(&ret)));
        if let Some(t) = &self.telemetry {
            // Enclave-side cycles for the whole call: the submit-side copy
            // and ring push (deterministic from the cost model) plus the
            // completion-side ring pop and result copy charged above.
            let cycles = self.costs.copy_cost(call_payload_bytes(&call))
                + 2 * mem.costs().ring_slot_cycles
                + self.costs.copy_cost(ret_payload_bytes(&ret));
            t.record(call.kind(), cycles);
        }
        Ok(Completion { id, ret })
    }

    /// Submits `call` and waits for its completion (single-call convenience;
    /// still cheaper than [`SyncShield`] because no transition occurs).
    ///
    /// # Errors
    ///
    /// See [`AsyncShield::submit`] and [`AsyncShield::complete`].
    pub fn call(&mut self, mem: &mut MemorySim, call: Syscall) -> Result<SyscallRet, SconeError> {
        let id = self.submit(mem, call)?;
        loop {
            let completion = self.complete(mem)?;
            if completion.id == id {
                return Ok(completion.ret);
            }
        }
    }
}

/// A shield selector for components that work over either plane: the
/// synchronous transition-per-call shield or the switchless ring shield.
#[derive(Debug)]
pub struct ShieldDriver {
    inner: DriverInner,
}

#[derive(Debug)]
enum DriverInner {
    Sync(SyncShield),
    Switchless(std::cell::RefCell<AsyncShield>),
}

impl ShieldDriver {
    /// Drives syscalls through the synchronous shield.
    #[must_use]
    pub fn sync(shield: SyncShield) -> Self {
        ShieldDriver {
            inner: DriverInner::Sync(shield),
        }
    }

    /// Drives syscalls through the switchless ring shield.
    #[must_use]
    pub fn switchless(shield: AsyncShield) -> Self {
        ShieldDriver {
            inner: DriverInner::Switchless(std::cell::RefCell::new(shield)),
        }
    }

    /// The plane label (`"sync"` or `"switchless"`), for reports.
    #[must_use]
    pub fn mode(&self) -> &'static str {
        match &self.inner {
            DriverInner::Sync(_) => "sync",
            DriverInner::Switchless(_) => "switchless",
        }
    }

    /// Issues one shielded syscall over whichever plane this driver wraps.
    ///
    /// # Errors
    ///
    /// See [`SyncShield::call`] and [`AsyncShield::call`].
    pub fn call(&self, mem: &mut MemorySim, call: &Syscall) -> Result<SyscallRet, SconeError> {
        match &self.inner {
            DriverInner::Sync(shield) => shield.call(mem, call),
            DriverInner::Switchless(shield) => shield.borrow_mut().call(mem, call.clone()),
        }
    }

    /// Routes shield telemetry into `telemetry`'s registry.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        match &mut self.inner {
            DriverInner::Sync(shield) => shield.set_telemetry(telemetry),
            DriverInner::Switchless(shield) => shield.get_mut().set_telemetry(telemetry),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostos::MemHost;
    use securecloud_sgx::costs::{CostModel, MemoryGeometry};

    fn mem() -> MemorySim {
        MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::sgx_v1())
    }

    #[test]
    fn sync_shield_roundtrip_and_cost() {
        let host = Arc::new(MemHost::new());
        let shield = SyncShield::new(host.clone());
        let mut mem = mem();
        let ret = shield
            .call(
                &mut mem,
                &Syscall::Open {
                    path: "/f".into(),
                    create: true,
                },
            )
            .unwrap();
        let SyscallRet::Fd(fd) = ret else {
            panic!("expected fd")
        };
        let before = mem.cycles();
        shield
            .call(
                &mut mem,
                &Syscall::Pwrite {
                    fd,
                    offset: 0,
                    data: vec![0u8; 4096],
                },
            )
            .unwrap();
        let cost = mem.cycles() - before;
        // Must include the two transitions plus the 4 KiB copy.
        assert!(cost >= 8_000 + 512, "cost {cost}");
    }

    #[test]
    fn async_shield_is_cheaper_per_call() {
        let host = Arc::new(MemHost::new());
        let sync_shield = SyncShield::new(host.clone());
        let mut async_shield = AsyncShield::new(host.clone());
        let mut mem_sync = mem();
        let mut mem_async = mem();
        let open = Syscall::Open {
            path: "/f".into(),
            create: true,
        };
        let SyscallRet::Fd(fd) = sync_shield.call(&mut mem_sync, &open).unwrap() else {
            panic!()
        };
        let write = |fd| Syscall::Pwrite {
            fd,
            offset: 0,
            data: vec![1u8; 64],
        };
        let s0 = mem_sync.cycles();
        for _ in 0..100 {
            sync_shield.call(&mut mem_sync, &write(fd)).unwrap();
        }
        let sync_cost = mem_sync.cycles() - s0;

        let SyscallRet::Fd(fd2) = async_shield.call(&mut mem_async, open).unwrap() else {
            panic!()
        };
        let a0 = mem_async.cycles();
        for _ in 0..100 {
            async_shield.call(&mut mem_async, write(fd2)).unwrap();
        }
        let async_cost = mem_async.cycles() - a0;
        assert!(
            async_cost * 5 < sync_cost,
            "async {async_cost} should be >5x cheaper than sync {sync_cost}"
        );
    }

    #[test]
    fn async_pipelining_overlaps() {
        let host = Arc::new(MemHost::new());
        let mut shield = AsyncShield::new(host);
        let mut mem = mem();
        let SyscallRet::Fd(fd) = shield
            .call(
                &mut mem,
                Syscall::Open {
                    path: "/f".into(),
                    create: true,
                },
            )
            .unwrap()
        else {
            panic!()
        };
        let mut ids = Vec::new();
        for i in 0..32u64 {
            ids.push(
                shield
                    .submit(
                        &mut mem,
                        Syscall::Pwrite {
                            fd,
                            offset: i * 8,
                            data: vec![i as u8; 8],
                        },
                    )
                    .unwrap(),
            );
        }
        assert_eq!(shield.in_flight(), 32);
        let mut seen = Vec::new();
        while shield.in_flight() > 0 {
            seen.push(shield.complete(&mut mem).unwrap().id);
        }
        seen.sort_unstable();
        assert_eq!(seen, ids);
    }

    #[test]
    fn complete_without_submit_errors() {
        let host = Arc::new(MemHost::new());
        let mut shield = AsyncShield::new(host);
        let mut mem = mem();
        assert!(matches!(
            shield.complete(&mut mem),
            Err(SconeError::ShieldStopped)
        ));
    }

    #[test]
    fn validation_rejects_oversized_read() {
        // A malicious host answering more data than requested.
        struct EvilHost;
        impl HostOs for EvilHost {
            fn execute(&self, _call: &Syscall) -> SyscallRet {
                SyscallRet::Data(vec![0u8; 1 << 20])
            }
        }
        let shield = SyncShield::new(Arc::new(EvilHost));
        let mut mem = mem();
        let err = shield.call(
            &mut mem,
            &Syscall::Pread {
                fd: 1,
                offset: 0,
                len: 16,
            },
        );
        assert!(matches!(err, Err(SconeError::HostViolation(_))));
    }

    #[test]
    fn validation_rejects_wrong_shape() {
        struct ShapeShifter;
        impl HostOs for ShapeShifter {
            fn execute(&self, _call: &Syscall) -> SyscallRet {
                SyscallRet::Len(42)
            }
        }
        let shield = SyncShield::new(Arc::new(ShapeShifter));
        let mut mem = mem();
        let err = shield.call(
            &mut mem,
            &Syscall::Open {
                path: "/f".into(),
                create: true,
            },
        );
        assert!(matches!(err, Err(SconeError::HostViolation(_))));
        // Over-acknowledged write is also rejected.
        struct OverAck;
        impl HostOs for OverAck {
            fn execute(&self, _call: &Syscall) -> SyscallRet {
                SyscallRet::Done(u64::MAX)
            }
        }
        let shield = SyncShield::new(Arc::new(OverAck));
        let err = shield.call(
            &mut mem,
            &Syscall::Pwrite {
                fd: 1,
                offset: 0,
                data: vec![1],
            },
        );
        assert!(matches!(err, Err(SconeError::HostViolation(_))));
    }

    #[test]
    fn switchless_shield_is_deterministic_across_runs() {
        let run = |depth: usize| {
            let host = Arc::new(MemHost::new());
            let mut shield = AsyncShield::switchless(host, depth);
            let mut mem = mem();
            let SyscallRet::Fd(fd) = shield
                .call(
                    &mut mem,
                    Syscall::Open {
                        path: "/d".into(),
                        create: true,
                    },
                )
                .unwrap()
            else {
                panic!()
            };
            for i in 0..40u64 {
                shield
                    .submit(
                        &mut mem,
                        Syscall::Pwrite {
                            fd,
                            offset: i * 16,
                            data: vec![i as u8; 16],
                        },
                    )
                    .unwrap();
            }
            while shield.in_flight() > 0 {
                shield.complete(&mut mem).unwrap();
            }
            mem.cycles()
        };
        for depth in [1usize, 8, 64] {
            assert_eq!(run(depth), run(depth), "depth {depth} must be reproducible");
        }
    }

    #[test]
    fn submit_beyond_depth_reaps_to_free_a_slot() {
        let host = Arc::new(MemHost::new());
        let mut shield = AsyncShield::switchless(host.clone(), 4);
        let mut mem = mem();
        let SyscallRet::Fd(fd) = shield
            .call(
                &mut mem,
                Syscall::Open {
                    path: "/r".into(),
                    create: true,
                },
            )
            .unwrap()
        else {
            panic!()
        };
        // 12 submissions through a 4-deep ring: submit transparently reaps.
        let ids: Vec<u64> = (0..12u64)
            .map(|i| {
                shield
                    .submit(
                        &mut mem,
                        Syscall::Pwrite {
                            fd,
                            offset: i * 4,
                            data: vec![i as u8; 4],
                        },
                    )
                    .unwrap()
            })
            .collect();
        assert_eq!(shield.in_flight(), 12);
        let mut seen = Vec::new();
        while shield.in_flight() > 0 {
            seen.push(shield.complete(&mut mem).unwrap().id);
        }
        seen.sort_unstable();
        assert_eq!(seen, ids);
        assert_eq!(host.call_count(), 13);
    }

    #[test]
    fn deterministic_mode_records_parks_without_spurious_wakes() {
        let host = Arc::new(MemHost::new());
        let telemetry = Arc::new(Telemetry::new());
        let mut shield = AsyncShield::switchless(host, 8);
        shield.set_telemetry(telemetry.clone());
        let mut mem = mem();
        let SyscallRet::Fd(fd) = shield
            .call(
                &mut mem,
                Syscall::Open {
                    path: "/p".into(),
                    create: true,
                },
            )
            .unwrap()
        else {
            panic!()
        };
        for i in 0..8u64 {
            shield
                .submit(
                    &mut mem,
                    Syscall::Pwrite {
                        fd,
                        offset: i,
                        data: vec![1],
                    },
                )
                .unwrap();
        }
        while shield.in_flight() > 0 {
            shield.complete(&mut mem).unwrap();
        }
        // Open parks once, then the 8-write batch parks once and the
        // remaining completions are already serviced.
        let wakes = telemetry
            .counter_with("securecloud_scone_ring_wakes_total", &[])
            .value();
        assert_eq!(wakes, 2);
        assert_eq!(
            telemetry
                .counter_with("securecloud_scone_ring_spurious_wakes_total", &[])
                .value(),
            0,
            "parking wakes exactly when a completion exists"
        );
        assert_eq!(
            telemetry
                .gauge_with("securecloud_scone_ring_depth", &[])
                .value(),
            0
        );
    }

    #[test]
    fn completion_with_unknown_id_is_a_host_violation() {
        // A host that answers with a forged completion id: the in-enclave
        // pending table must reject it before the payload is believed.
        struct ForgingHost;
        impl HostOs for ForgingHost {
            fn execute(&self, _call: &Syscall) -> SyscallRet {
                SyscallRet::Fd(7)
            }
        }
        let mut shield =
            AsyncShield::with_rings(Arc::new(ForgingHost), 4, ServicerMode::Deterministic);
        let mut mem = mem();
        shield
            .submit(
                &mut mem,
                Syscall::Open {
                    path: "/f".into(),
                    create: true,
                },
            )
            .unwrap();
        // Corrupt the pending table's view by pretending the id was never
        // issued: steal the entry and re-key it.
        let call = shield.pending.remove(&0).unwrap();
        shield.pending.insert(99, call);
        let err = shield.complete(&mut mem);
        assert!(matches!(err, Err(SconeError::HostViolation(_))));
    }

    #[test]
    fn shield_driver_exposes_both_planes() {
        let host = Arc::new(MemHost::new());
        let sync_driver = ShieldDriver::sync(SyncShield::new(host.clone()));
        let ring_driver = ShieldDriver::switchless(AsyncShield::switchless(host.clone(), 8));
        assert_eq!(sync_driver.mode(), "sync");
        assert_eq!(ring_driver.mode(), "switchless");
        let mut mem_sync = mem();
        let mut mem_ring = mem();
        let open = Syscall::Open {
            path: "/d".into(),
            create: true,
        };
        let SyscallRet::Fd(fd_sync) = sync_driver.call(&mut mem_sync, &open).unwrap() else {
            panic!()
        };
        let SyscallRet::Fd(fd_ring) = ring_driver.call(&mut mem_ring, &open).unwrap() else {
            panic!()
        };
        // Past the one-time pending-table warm-up, the switchless plane
        // never pays the transition pair.
        let write = |fd| Syscall::Pwrite {
            fd,
            offset: 0,
            data: vec![7u8; 32],
        };
        let s0 = mem_sync.cycles();
        sync_driver.call(&mut mem_sync, &write(fd_sync)).unwrap();
        let r0 = mem_ring.cycles();
        ring_driver.call(&mut mem_ring, &write(fd_ring)).unwrap();
        assert!(mem_ring.cycles() - r0 < mem_sync.cycles() - s0);
    }

    #[test]
    fn host_error_passes_through() {
        let host = Arc::new(MemHost::new());
        let shield = SyncShield::new(host);
        let mut mem = mem();
        let ret = shield
            .call(
                &mut mem,
                &Syscall::Open {
                    path: "/missing".into(),
                    create: false,
                },
            )
            .unwrap();
        assert!(matches!(ret, SyscallRet::Error(_)));
    }
}
