//! The shielded system-call interface.
//!
//! SCONE exposes an *external* system-call interface to the micro-service:
//! arguments are copied out of the enclave, results are sanity-checked and
//! copied back in before the application sees them (§IV of the paper).
//! Two execution modes are provided:
//!
//! * [`SyncShield`] — the naive mode: every call exits and re-enters the
//!   enclave, paying two transitions (~8k cycles) per call.
//! * [`AsyncShield`] — SCONE's asynchronous interface: requests are placed
//!   on a lock-free queue serviced by a host-side thread, so the enclave
//!   thread pays only cache-coherent queue operations and never transitions.
//!
//! Benchmark E4 (`syscall_async`) compares the two, reproducing the paper's
//! claim that the asynchronous interface is what makes SCONE's performance
//! "acceptable".

use crate::hostos::{HostOs, Syscall, SyscallRet};
use crate::SconeError;
use crossbeam::channel::{unbounded, Receiver, Sender};
use securecloud_sgx::mem::MemorySim;
use securecloud_telemetry::Telemetry;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Telemetry hook shared by both shield modes: per-kind syscall counters
/// and enclave-side cycle histograms, labelled with the shield mode so
/// the sync/async cost gap (benchmark E4) shows up in one metric family.
#[derive(Debug, Clone)]
struct ShieldTelemetry {
    telemetry: Arc<Telemetry>,
    mode: &'static str,
}

impl ShieldTelemetry {
    fn record(&self, kind: &'static str, cycles: u64) {
        self.telemetry
            .counter_with(
                "securecloud_scone_syscalls_total",
                &[("kind", kind), ("mode", self.mode)],
            )
            .inc();
        self.telemetry
            .histogram_with(
                "securecloud_scone_syscall_cycles",
                &[("kind", kind), ("mode", self.mode)],
            )
            .observe(cycles);
    }

    fn violation(&self, kind: &'static str) {
        self.telemetry
            .counter_with(
                "securecloud_scone_host_violations_total",
                &[("kind", kind), ("mode", self.mode)],
            )
            .inc();
    }
}

/// Cycle charges specific to the shield machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShieldCosts {
    /// Cost of one lock-free queue operation (cache-line transfer + fence).
    pub queue_op_cycles: u64,
    /// Copy throughput: cycles charged per 8 bytes moved across the
    /// boundary (memcpy plus pointer/length sanitisation).
    pub copy_cycles_per_8_bytes: u64,
}

impl Default for ShieldCosts {
    fn default() -> Self {
        ShieldCosts {
            queue_op_cycles: 300,
            copy_cycles_per_8_bytes: 1,
        }
    }
}

impl ShieldCosts {
    fn copy_cost(&self, bytes: usize) -> u64 {
        (bytes as u64).div_ceil(8) * self.copy_cycles_per_8_bytes
    }
}

fn call_payload_bytes(call: &Syscall) -> usize {
    match call {
        Syscall::Open { path, .. } | Syscall::Unlink { path } => path.len(),
        Syscall::Pwrite { data, .. } => data.len(),
        Syscall::Pread { .. }
        | Syscall::Ftruncate { .. }
        | Syscall::Close { .. }
        | Syscall::Fstat { .. } => 0,
    }
}

fn ret_payload_bytes(ret: &SyscallRet) -> usize {
    match ret {
        SyscallRet::Data(d) => d.len(),
        SyscallRet::Error(e) => e.len(),
        SyscallRet::Fd(_) | SyscallRet::Done(_) | SyscallRet::Len(_) => 0,
    }
}

/// Sanity checks applied to host return values before they enter the
/// enclave: the host is untrusted and may answer with the wrong shape or
/// oversized data (an Iago-style attack).
fn validate(call: &Syscall, ret: &SyscallRet) -> Result<(), SconeError> {
    match (call, ret) {
        (_, SyscallRet::Error(_)) => Ok(()),
        (Syscall::Open { .. }, SyscallRet::Fd(_)) => Ok(()),
        (Syscall::Pread { len, .. }, SyscallRet::Data(data)) => {
            if data.len() > *len {
                Err(SconeError::HostViolation(format!(
                    "pread returned {} bytes for a {len}-byte request",
                    data.len()
                )))
            } else {
                Ok(())
            }
        }
        (Syscall::Pwrite { data, .. }, SyscallRet::Done(n)) => {
            if *n > data.len() as u64 {
                Err(SconeError::HostViolation(format!(
                    "pwrite acknowledged {n} bytes for a {}-byte buffer",
                    data.len()
                )))
            } else {
                Ok(())
            }
        }
        (Syscall::Ftruncate { .. }, SyscallRet::Done(_))
        | (Syscall::Close { .. }, SyscallRet::Done(_))
        | (Syscall::Unlink { .. }, SyscallRet::Done(_))
        | (Syscall::Fstat { .. }, SyscallRet::Len(_)) => Ok(()),
        (call, ret) => Err(SconeError::HostViolation(format!(
            "host returned {ret:?} for {call:?}"
        ))),
    }
}

/// Synchronous shielded syscalls: one enclave exit/entry round trip each.
#[derive(Debug, Clone)]
pub struct SyncShield {
    host: Arc<dyn HostOs>,
    costs: ShieldCosts,
    telemetry: Option<ShieldTelemetry>,
}

impl SyncShield {
    /// Creates a synchronous shield over `host`.
    pub fn new(host: Arc<dyn HostOs>) -> Self {
        SyncShield {
            host,
            costs: ShieldCosts::default(),
            telemetry: None,
        }
    }

    /// Routes per-kind syscall counters and cycle histograms (labelled
    /// `mode="sync"`) into `telemetry`'s registry.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(ShieldTelemetry {
            telemetry,
            mode: "sync",
        });
    }

    /// Issues one shielded syscall from the enclave whose memory system is
    /// `mem`, charging transitions, copies, and validation.
    ///
    /// # Errors
    ///
    /// [`SconeError::HostViolation`] if the host's answer fails the sanity
    /// checks; the malformed answer never reaches the application.
    pub fn call(&self, mem: &mut MemorySim, call: &Syscall) -> Result<SyscallRet, SconeError> {
        let start = mem.cycles();
        // Copy arguments out of the enclave.
        mem.charge_cycles(self.costs.copy_cost(call_payload_bytes(call)));
        // OCALL out, syscall, ECALL back in.
        let transition = mem.costs().ocall_cycles + mem.costs().ecall_cycles;
        mem.charge_cycles(transition);
        let ret = self.host.execute(call);
        if let Err(e) = validate(call, &ret) {
            if let Some(t) = &self.telemetry {
                t.violation(call.kind());
            }
            return Err(e);
        }
        // Copy the (validated) result into the enclave.
        mem.charge_cycles(self.costs.copy_cost(ret_payload_bytes(&ret)));
        if let Some(t) = &self.telemetry {
            t.record(call.kind(), mem.cycles().saturating_sub(start));
        }
        Ok(ret)
    }
}

impl std::fmt::Debug for dyn HostOs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dyn HostOs")
    }
}

struct Request {
    id: u64,
    call: Syscall,
}

/// A completed asynchronous syscall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The id returned by [`AsyncShield::submit`].
    pub id: u64,
    /// The validated host result.
    pub ret: SyscallRet,
}

/// Asynchronous shielded syscalls: a host-side worker thread services a
/// lock-free request queue, so the enclave thread never transitions.
#[derive(Debug)]
pub struct AsyncShield {
    req_tx: Option<Sender<Request>>,
    resp_rx: Receiver<(u64, Syscall, SyscallRet)>,
    worker: Option<JoinHandle<()>>,
    next_id: u64,
    in_flight: usize,
    costs: ShieldCosts,
    telemetry: Option<ShieldTelemetry>,
}

impl AsyncShield {
    /// Spawns the host-side syscall thread over `host`.
    pub fn new(host: Arc<dyn HostOs>) -> Self {
        let (req_tx, req_rx) = unbounded::<Request>();
        let (resp_tx, resp_rx) = unbounded();
        let worker = std::thread::spawn(move || {
            while let Ok(req) = req_rx.recv() {
                let ret = host.execute(&req.call);
                if resp_tx.send((req.id, req.call, ret)).is_err() {
                    break;
                }
            }
        });
        AsyncShield {
            req_tx: Some(req_tx),
            resp_rx,
            worker: Some(worker),
            next_id: 0,
            in_flight: 0,
            costs: ShieldCosts::default(),
            telemetry: None,
        }
    }

    /// Routes per-kind syscall counters and cycle histograms (labelled
    /// `mode="async"`) into `telemetry`'s registry. Only enclave-side
    /// cycles are recorded; the host worker thread is never instrumented
    /// (it runs on wall-clock time and would break trace determinism).
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(ShieldTelemetry {
            telemetry,
            mode: "async",
        });
    }

    /// Submits a syscall without leaving the enclave; returns its id.
    ///
    /// # Errors
    ///
    /// [`SconeError::ShieldStopped`] if the host worker has exited.
    pub fn submit(&mut self, mem: &mut MemorySim, call: Syscall) -> Result<u64, SconeError> {
        mem.charge_cycles(self.costs.copy_cost(call_payload_bytes(&call)));
        mem.charge_cycles(self.costs.queue_op_cycles);
        let id = self.next_id;
        self.next_id += 1;
        self.req_tx
            .as_ref()
            .expect("sender live until drop")
            .send(Request { id, call })
            .map_err(|_| SconeError::ShieldStopped)?;
        self.in_flight += 1;
        Ok(id)
    }

    /// Number of submitted but uncompleted calls.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Waits for the next completion, charging queue and copy costs.
    ///
    /// # Errors
    ///
    /// [`SconeError::ShieldStopped`] if nothing is in flight or the worker
    /// exited; [`SconeError::HostViolation`] if the result fails validation.
    pub fn complete(&mut self, mem: &mut MemorySim) -> Result<Completion, SconeError> {
        if self.in_flight == 0 {
            return Err(SconeError::ShieldStopped);
        }
        let (id, call, ret) = self.resp_rx.recv().map_err(|_| SconeError::ShieldStopped)?;
        self.in_flight -= 1;
        mem.charge_cycles(self.costs.queue_op_cycles);
        if let Err(e) = validate(&call, &ret) {
            if let Some(t) = &self.telemetry {
                t.violation(call.kind());
            }
            return Err(e);
        }
        mem.charge_cycles(self.costs.copy_cost(ret_payload_bytes(&ret)));
        if let Some(t) = &self.telemetry {
            // Enclave-side cycles for the whole call: the submit-side copy
            // and queue op (deterministic from the cost model) plus the
            // completion-side queue op and result copy charged above.
            let cycles = self.costs.copy_cost(call_payload_bytes(&call))
                + 2 * self.costs.queue_op_cycles
                + self.costs.copy_cost(ret_payload_bytes(&ret));
            t.record(call.kind(), cycles);
        }
        Ok(Completion { id, ret })
    }

    /// Submits `call` and waits for its completion (single-call convenience;
    /// still cheaper than [`SyncShield`] because no transition occurs).
    ///
    /// # Errors
    ///
    /// See [`AsyncShield::submit`] and [`AsyncShield::complete`].
    pub fn call(&mut self, mem: &mut MemorySim, call: Syscall) -> Result<SyscallRet, SconeError> {
        let id = self.submit(mem, call)?;
        loop {
            let completion = self.complete(mem)?;
            if completion.id == id {
                return Ok(completion.ret);
            }
        }
    }
}

impl Drop for AsyncShield {
    fn drop(&mut self) {
        self.req_tx.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostos::MemHost;
    use securecloud_sgx::costs::{CostModel, MemoryGeometry};

    fn mem() -> MemorySim {
        MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::sgx_v1())
    }

    #[test]
    fn sync_shield_roundtrip_and_cost() {
        let host = Arc::new(MemHost::new());
        let shield = SyncShield::new(host.clone());
        let mut mem = mem();
        let ret = shield
            .call(
                &mut mem,
                &Syscall::Open {
                    path: "/f".into(),
                    create: true,
                },
            )
            .unwrap();
        let SyscallRet::Fd(fd) = ret else {
            panic!("expected fd")
        };
        let before = mem.cycles();
        shield
            .call(
                &mut mem,
                &Syscall::Pwrite {
                    fd,
                    offset: 0,
                    data: vec![0u8; 4096],
                },
            )
            .unwrap();
        let cost = mem.cycles() - before;
        // Must include the two transitions plus the 4 KiB copy.
        assert!(cost >= 8_000 + 512, "cost {cost}");
    }

    #[test]
    fn async_shield_is_cheaper_per_call() {
        let host = Arc::new(MemHost::new());
        let sync_shield = SyncShield::new(host.clone());
        let mut async_shield = AsyncShield::new(host.clone());
        let mut mem_sync = mem();
        let mut mem_async = mem();
        let open = Syscall::Open {
            path: "/f".into(),
            create: true,
        };
        let SyscallRet::Fd(fd) = sync_shield.call(&mut mem_sync, &open).unwrap() else {
            panic!()
        };
        let write = |fd| Syscall::Pwrite {
            fd,
            offset: 0,
            data: vec![1u8; 64],
        };
        let s0 = mem_sync.cycles();
        for _ in 0..100 {
            sync_shield.call(&mut mem_sync, &write(fd)).unwrap();
        }
        let sync_cost = mem_sync.cycles() - s0;

        let SyscallRet::Fd(fd2) = async_shield.call(&mut mem_async, open).unwrap() else {
            panic!()
        };
        let a0 = mem_async.cycles();
        for _ in 0..100 {
            async_shield.call(&mut mem_async, write(fd2)).unwrap();
        }
        let async_cost = mem_async.cycles() - a0;
        assert!(
            async_cost * 5 < sync_cost,
            "async {async_cost} should be >5x cheaper than sync {sync_cost}"
        );
    }

    #[test]
    fn async_pipelining_overlaps() {
        let host = Arc::new(MemHost::new());
        let mut shield = AsyncShield::new(host);
        let mut mem = mem();
        let SyscallRet::Fd(fd) = shield
            .call(
                &mut mem,
                Syscall::Open {
                    path: "/f".into(),
                    create: true,
                },
            )
            .unwrap()
        else {
            panic!()
        };
        let mut ids = Vec::new();
        for i in 0..32u64 {
            ids.push(
                shield
                    .submit(
                        &mut mem,
                        Syscall::Pwrite {
                            fd,
                            offset: i * 8,
                            data: vec![i as u8; 8],
                        },
                    )
                    .unwrap(),
            );
        }
        assert_eq!(shield.in_flight(), 32);
        let mut seen = Vec::new();
        while shield.in_flight() > 0 {
            seen.push(shield.complete(&mut mem).unwrap().id);
        }
        seen.sort_unstable();
        assert_eq!(seen, ids);
    }

    #[test]
    fn complete_without_submit_errors() {
        let host = Arc::new(MemHost::new());
        let mut shield = AsyncShield::new(host);
        let mut mem = mem();
        assert!(matches!(
            shield.complete(&mut mem),
            Err(SconeError::ShieldStopped)
        ));
    }

    #[test]
    fn validation_rejects_oversized_read() {
        // A malicious host answering more data than requested.
        struct EvilHost;
        impl HostOs for EvilHost {
            fn execute(&self, _call: &Syscall) -> SyscallRet {
                SyscallRet::Data(vec![0u8; 1 << 20])
            }
        }
        let shield = SyncShield::new(Arc::new(EvilHost));
        let mut mem = mem();
        let err = shield.call(
            &mut mem,
            &Syscall::Pread {
                fd: 1,
                offset: 0,
                len: 16,
            },
        );
        assert!(matches!(err, Err(SconeError::HostViolation(_))));
    }

    #[test]
    fn validation_rejects_wrong_shape() {
        struct ShapeShifter;
        impl HostOs for ShapeShifter {
            fn execute(&self, _call: &Syscall) -> SyscallRet {
                SyscallRet::Len(42)
            }
        }
        let shield = SyncShield::new(Arc::new(ShapeShifter));
        let mut mem = mem();
        let err = shield.call(
            &mut mem,
            &Syscall::Open {
                path: "/f".into(),
                create: true,
            },
        );
        assert!(matches!(err, Err(SconeError::HostViolation(_))));
        // Over-acknowledged write is also rejected.
        struct OverAck;
        impl HostOs for OverAck {
            fn execute(&self, _call: &Syscall) -> SyscallRet {
                SyscallRet::Done(u64::MAX)
            }
        }
        let shield = SyncShield::new(Arc::new(OverAck));
        let err = shield.call(
            &mut mem,
            &Syscall::Pwrite {
                fd: 1,
                offset: 0,
                data: vec![1],
            },
        );
        assert!(matches!(err, Err(SconeError::HostViolation(_))));
    }

    #[test]
    fn host_error_passes_through() {
        let host = Arc::new(MemHost::new());
        let shield = SyncShield::new(host);
        let mut mem = mem();
        let ret = shield
            .call(
                &mut mem,
                &Syscall::Open {
                    path: "/missing".into(),
                    create: false,
                },
            )
            .unwrap();
        assert!(matches!(ret, SyscallRet::Error(_)));
    }
}
