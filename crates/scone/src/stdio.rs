//! Shielded standard I/O streams.
//!
//! The SCF carries keys "to encrypt standard I/O streams" (§V-A): anything
//! the micro-service writes to stdout/stderr, and anything piped into
//! stdin, crosses the enclave boundary encrypted. A [`ShieldedStream`]
//! wraps a byte-frame transport with AES-128-GCM, sequence-numbered nonces,
//! and strict in-order delivery — reordering or replay by the untrusted
//! host surfaces as an authentication failure.

use securecloud_crypto::channel::Transport;
use securecloud_crypto::gcm::{nonce_from_seq, AesGcm};
use securecloud_crypto::CryptoError;

/// Which end of the stream this endpoint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamRole {
    /// The side that writes application data first (e.g. the enclave for
    /// stdout).
    Producer,
    /// The consuming side (e.g. the trusted log collector).
    Consumer,
}

const DOMAIN_PRODUCER: u32 = 0x7374_6f31; // "sto1"
const DOMAIN_CONSUMER: u32 = 0x7374_6f32; // "sto2"

/// An encrypted, ordered, authenticated byte-frame stream.
///
/// ```
/// use securecloud_crypto::channel::memory_pair;
/// use securecloud_scone::stdio::{ShieldedStream, StreamRole};
///
/// let key = [9u8; 16];
/// let (a, b) = memory_pair();
/// let mut stdout_enclave = ShieldedStream::new(a, &key, StreamRole::Producer);
/// let mut stdout_collector = ShieldedStream::new(b, &key, StreamRole::Consumer);
/// stdout_enclave.write(b"log line 1").unwrap();
/// assert_eq!(stdout_collector.read().unwrap(), b"log line 1");
/// ```
#[derive(Debug)]
pub struct ShieldedStream<T: Transport> {
    transport: T,
    cipher: AesGcm,
    send_domain: u32,
    recv_domain: u32,
    send_seq: u64,
    recv_seq: u64,
}

impl<T: Transport> ShieldedStream<T> {
    /// Wraps `transport` with the stream key from the SCF.
    #[must_use]
    pub fn new(transport: T, key: &[u8; 16], role: StreamRole) -> Self {
        let (send_domain, recv_domain) = match role {
            StreamRole::Producer => (DOMAIN_PRODUCER, DOMAIN_CONSUMER),
            StreamRole::Consumer => (DOMAIN_CONSUMER, DOMAIN_PRODUCER),
        };
        ShieldedStream {
            transport,
            cipher: AesGcm::new(key),
            send_domain,
            recv_domain,
            send_seq: 0,
            recv_seq: 0,
        }
    }

    /// Encrypts and sends one frame.
    ///
    /// # Errors
    ///
    /// [`CryptoError::TransportClosed`] if the peer is gone.
    pub fn write(&mut self, data: &[u8]) -> Result<(), CryptoError> {
        let nonce = nonce_from_seq(self.send_domain, self.send_seq);
        let seq_bytes = self.send_seq.to_be_bytes();
        self.send_seq += 1;
        let sealed = self.cipher.seal(&nonce, data, &seq_bytes);
        self.transport.send_frame(sealed)
    }

    /// Receives and decrypts the next frame, enforcing order.
    ///
    /// # Errors
    ///
    /// [`CryptoError::AuthenticationFailed`] on tampering, replay, or
    /// reordering; [`CryptoError::TransportClosed`] if the peer is gone.
    pub fn read(&mut self) -> Result<Vec<u8>, CryptoError> {
        let sealed = self.transport.recv_frame()?;
        let nonce = nonce_from_seq(self.recv_domain, self.recv_seq);
        let seq_bytes = self.recv_seq.to_be_bytes();
        let plain = self.cipher.open(&nonce, &sealed, &seq_bytes)?;
        self.recv_seq += 1;
        Ok(plain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use securecloud_crypto::channel::{memory_pair, MemoryTransport};

    fn pair(
        key: &[u8; 16],
    ) -> (
        ShieldedStream<MemoryTransport>,
        ShieldedStream<MemoryTransport>,
    ) {
        let (a, b) = memory_pair();
        (
            ShieldedStream::new(a, key, StreamRole::Producer),
            ShieldedStream::new(b, key, StreamRole::Consumer),
        )
    }

    #[test]
    fn duplex_roundtrip() {
        let key = [1u8; 16];
        let (mut producer, mut consumer) = pair(&key);
        producer.write(b"stdout line").unwrap();
        producer.write(b"another").unwrap();
        assert_eq!(consumer.read().unwrap(), b"stdout line");
        assert_eq!(consumer.read().unwrap(), b"another");
        // stdin flows the other way on the same key without nonce collision.
        consumer.write(b"stdin data").unwrap();
        assert_eq!(producer.read().unwrap(), b"stdin data");
    }

    #[test]
    fn wrong_key_fails() {
        let (a, b) = memory_pair();
        let mut producer = ShieldedStream::new(a, &[1u8; 16], StreamRole::Producer);
        let mut consumer = ShieldedStream::new(b, &[2u8; 16], StreamRole::Consumer);
        producer.write(b"x").unwrap();
        assert!(matches!(
            consumer.read(),
            Err(CryptoError::AuthenticationFailed)
        ));
    }

    #[test]
    fn reordering_detected() {
        let key = [3u8; 16];
        let (raw_a, raw_b) = memory_pair();
        let mut producer = ShieldedStream::new(raw_a, &key, StreamRole::Producer);
        producer.write(b"first").unwrap();
        producer.write(b"second").unwrap();
        // The host drops the first frame: the consumer sees "second" at
        // sequence 0 and must reject it.
        let _stolen = raw_b.recv_frame().unwrap();
        let mut consumer = ShieldedStream::new(raw_b, &key, StreamRole::Consumer);
        assert!(matches!(
            consumer.read(),
            Err(CryptoError::AuthenticationFailed)
        ));
    }

    #[test]
    fn replay_detected() {
        let key = [4u8; 16];
        let (raw_a, raw_b) = memory_pair();
        let mut producer = ShieldedStream::new(raw_a, &key, StreamRole::Producer);
        // Two identical payments: the host captures the first frame and
        // replays it in place of the second.
        producer.write(b"payment: 100 EUR").unwrap();
        producer.write(b"payment: 100 EUR").unwrap();
        let frame0 = raw_b.recv_frame().unwrap();
        let frame1 = raw_b.recv_frame().unwrap();
        // Ciphertexts differ despite equal plaintext (sequence in nonce).
        assert_ne!(frame0, frame1);
        // Decrypting the replayed frame0 at sequence 1 must fail.
        let nonce1 = securecloud_crypto::gcm::nonce_from_seq(DOMAIN_PRODUCER, 1);
        assert!(AesGcm::new(&key)
            .open(&nonce1, &frame0, &1u64.to_be_bytes())
            .is_err());
        // And through the stream API: deliver frame0 twice.
        let (raw_c, raw_d) = memory_pair();
        raw_c.send_frame(frame0.clone()).unwrap();
        raw_c.send_frame(frame0).unwrap();
        let mut consumer = ShieldedStream::new(raw_d, &key, StreamRole::Consumer);
        assert_eq!(consumer.read().unwrap(), b"payment: 100 EUR");
        assert!(matches!(
            consumer.read(),
            Err(CryptoError::AuthenticationFailed)
        ));
    }

    #[test]
    fn empty_frames_allowed() {
        let key = [5u8; 16];
        let (mut producer, mut consumer) = pair(&key);
        producer.write(b"").unwrap();
        assert_eq!(consumer.read().unwrap(), b"");
    }
}
