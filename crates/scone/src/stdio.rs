//! Shielded standard I/O streams.
//!
//! The SCF carries keys "to encrypt standard I/O streams" (§V-A): anything
//! the micro-service writes to stdout/stderr, and anything piped into
//! stdin, crosses the enclave boundary encrypted. A [`ShieldedStream`]
//! wraps a byte-frame transport with AES-128-GCM, sequence-numbered nonces,
//! and strict in-order delivery — reordering or replay by the untrusted
//! host surfaces as an authentication failure.

//! [`SwitchlessLog`] is the ring-backed variant of the producer side:
//! sealed stdout frames stream to a host append-log through the
//! switchless [`AsyncShield`] — writes pipeline without any enclave
//! transition, and [`SwitchlessLog::flush`] reaps the write
//! acknowledgements in one parking pass.

use crate::hostos::{Syscall, SyscallRet};
use crate::syscall::AsyncShield;
use crate::SconeError;
use securecloud_crypto::channel::Transport;
use securecloud_crypto::gcm::{nonce_from_seq, AesGcm};
use securecloud_crypto::CryptoError;
use securecloud_sgx::mem::MemorySim;

/// Which end of the stream this endpoint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamRole {
    /// The side that writes application data first (e.g. the enclave for
    /// stdout).
    Producer,
    /// The consuming side (e.g. the trusted log collector).
    Consumer,
}

const DOMAIN_PRODUCER: u32 = 0x7374_6f31; // "sto1"
const DOMAIN_CONSUMER: u32 = 0x7374_6f32; // "sto2"

/// An encrypted, ordered, authenticated byte-frame stream.
///
/// ```
/// use securecloud_crypto::channel::memory_pair;
/// use securecloud_scone::stdio::{ShieldedStream, StreamRole};
///
/// let key = [9u8; 16];
/// let (a, b) = memory_pair();
/// let mut stdout_enclave = ShieldedStream::new(a, &key, StreamRole::Producer);
/// let mut stdout_collector = ShieldedStream::new(b, &key, StreamRole::Consumer);
/// stdout_enclave.write(b"log line 1").unwrap();
/// assert_eq!(stdout_collector.read().unwrap(), b"log line 1");
/// ```
#[derive(Debug)]
pub struct ShieldedStream<T: Transport> {
    transport: T,
    cipher: AesGcm,
    send_domain: u32,
    recv_domain: u32,
    send_seq: u64,
    recv_seq: u64,
}

impl<T: Transport> ShieldedStream<T> {
    /// Wraps `transport` with the stream key from the SCF.
    #[must_use]
    pub fn new(transport: T, key: &[u8; 16], role: StreamRole) -> Self {
        let (send_domain, recv_domain) = match role {
            StreamRole::Producer => (DOMAIN_PRODUCER, DOMAIN_CONSUMER),
            StreamRole::Consumer => (DOMAIN_CONSUMER, DOMAIN_PRODUCER),
        };
        ShieldedStream {
            transport,
            cipher: AesGcm::new(key),
            send_domain,
            recv_domain,
            send_seq: 0,
            recv_seq: 0,
        }
    }

    /// Encrypts and sends one frame.
    ///
    /// # Errors
    ///
    /// [`CryptoError::TransportClosed`] if the peer is gone.
    pub fn write(&mut self, data: &[u8]) -> Result<(), CryptoError> {
        let nonce = nonce_from_seq(self.send_domain, self.send_seq);
        let seq_bytes = self.send_seq.to_be_bytes();
        self.send_seq += 1;
        let sealed = self.cipher.seal(&nonce, data, &seq_bytes);
        self.transport.send_frame(sealed)
    }

    /// Receives and decrypts the next frame, enforcing order.
    ///
    /// # Errors
    ///
    /// [`CryptoError::AuthenticationFailed`] on tampering, replay, or
    /// reordering; [`CryptoError::TransportClosed`] if the peer is gone.
    pub fn read(&mut self) -> Result<Vec<u8>, CryptoError> {
        let sealed = self.transport.recv_frame()?;
        let nonce = nonce_from_seq(self.recv_domain, self.recv_seq);
        let seq_bytes = self.recv_seq.to_be_bytes();
        let plain = self.cipher.open(&nonce, &sealed, &seq_bytes)?;
        self.recv_seq += 1;
        Ok(plain)
    }
}

/// Encrypted stdout over the switchless rings: each log line is sealed
/// with the stream cipher (same nonce/sequence discipline as
/// [`ShieldedStream`]) and appended to a host file as a length-prefixed
/// frame. Writes are submitted without waiting — the ring overlaps them —
/// and [`SwitchlessLog::flush`] collects and validates the pending
/// acknowledgements.
#[derive(Debug)]
pub struct SwitchlessLog {
    shield: AsyncShield,
    cipher: AesGcm,
    seq: u64,
    fd: u64,
    offset: u64,
    unflushed: usize,
}

impl SwitchlessLog {
    /// Opens (creating) the host append-log at `path` over `shield`.
    ///
    /// # Errors
    ///
    /// [`SconeError::HostViolation`] if the host refuses the open.
    pub fn create(
        mut shield: AsyncShield,
        mem: &mut MemorySim,
        path: &str,
        key: &[u8; 16],
    ) -> Result<Self, SconeError> {
        let ret = shield.call(
            mem,
            Syscall::Open {
                path: path.to_string(),
                create: true,
            },
        )?;
        let SyscallRet::Fd(fd) = ret else {
            return Err(SconeError::HostViolation(format!(
                "open of log {path} answered {ret:?}"
            )));
        };
        Ok(SwitchlessLog {
            shield,
            cipher: AesGcm::new(key),
            seq: 0,
            fd,
            offset: 0,
            unflushed: 0,
        })
    }

    /// Seals `line` and submits its append without waiting for the ack.
    ///
    /// # Errors
    ///
    /// [`SconeError::ShieldStopped`] on a ring protocol violation.
    pub fn write(&mut self, mem: &mut MemorySim, line: &[u8]) -> Result<(), SconeError> {
        let nonce = nonce_from_seq(DOMAIN_PRODUCER, self.seq);
        let seq_bytes = self.seq.to_be_bytes();
        self.seq += 1;
        let sealed = self.cipher.seal(&nonce, line, &seq_bytes);
        let mut frame = Vec::with_capacity(4 + sealed.len());
        frame.extend_from_slice(&(sealed.len() as u32).to_be_bytes());
        frame.extend_from_slice(&sealed);
        let len = frame.len() as u64;
        self.shield.submit(
            mem,
            Syscall::Pwrite {
                fd: self.fd,
                offset: self.offset,
                data: frame,
            },
        )?;
        self.offset += len;
        self.unflushed += 1;
        Ok(())
    }

    /// Reaps every pending write acknowledgement, verifying each one.
    ///
    /// # Errors
    ///
    /// [`SconeError::HostViolation`] if the host failed or short-changed
    /// an append.
    pub fn flush(&mut self, mem: &mut MemorySim) -> Result<(), SconeError> {
        while self.unflushed > 0 {
            let completion = self.shield.complete(mem)?;
            self.unflushed -= 1;
            if !matches!(completion.ret, SyscallRet::Done(_)) {
                return Err(SconeError::HostViolation(format!(
                    "log append answered {:?}",
                    completion.ret
                )));
            }
        }
        Ok(())
    }

    /// Frames written so far.
    #[must_use]
    pub fn frames_written(&self) -> u64 {
        self.seq
    }

    /// Collector side: decodes a raw host append-log back into plaintext
    /// lines, enforcing the frame order the enclave sealed.
    ///
    /// # Errors
    ///
    /// [`CryptoError::AuthenticationFailed`] on tampering, truncation,
    /// reordering, or replay of any frame.
    pub fn decode_log(key: &[u8; 16], raw: &[u8]) -> Result<Vec<Vec<u8>>, CryptoError> {
        let cipher = AesGcm::new(key);
        let mut lines = Vec::new();
        let mut cursor = 0usize;
        let mut seq = 0u64;
        while cursor < raw.len() {
            if cursor + 4 > raw.len() {
                return Err(CryptoError::AuthenticationFailed);
            }
            let len =
                u32::from_be_bytes(raw[cursor..cursor + 4].try_into().expect("4 bytes")) as usize;
            cursor += 4;
            if cursor + len > raw.len() {
                return Err(CryptoError::AuthenticationFailed);
            }
            let nonce = nonce_from_seq(DOMAIN_PRODUCER, seq);
            let plain = cipher.open(&nonce, &raw[cursor..cursor + len], &seq.to_be_bytes())?;
            cursor += len;
            seq += 1;
            lines.push(plain);
        }
        Ok(lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostos::MemHost;
    use securecloud_crypto::channel::{memory_pair, MemoryTransport};
    use securecloud_sgx::costs::{CostModel, MemoryGeometry};
    use std::sync::Arc;

    fn pair(
        key: &[u8; 16],
    ) -> (
        ShieldedStream<MemoryTransport>,
        ShieldedStream<MemoryTransport>,
    ) {
        let (a, b) = memory_pair();
        (
            ShieldedStream::new(a, key, StreamRole::Producer),
            ShieldedStream::new(b, key, StreamRole::Consumer),
        )
    }

    #[test]
    fn duplex_roundtrip() {
        let key = [1u8; 16];
        let (mut producer, mut consumer) = pair(&key);
        producer.write(b"stdout line").unwrap();
        producer.write(b"another").unwrap();
        assert_eq!(consumer.read().unwrap(), b"stdout line");
        assert_eq!(consumer.read().unwrap(), b"another");
        // stdin flows the other way on the same key without nonce collision.
        consumer.write(b"stdin data").unwrap();
        assert_eq!(producer.read().unwrap(), b"stdin data");
    }

    #[test]
    fn wrong_key_fails() {
        let (a, b) = memory_pair();
        let mut producer = ShieldedStream::new(a, &[1u8; 16], StreamRole::Producer);
        let mut consumer = ShieldedStream::new(b, &[2u8; 16], StreamRole::Consumer);
        producer.write(b"x").unwrap();
        assert!(matches!(
            consumer.read(),
            Err(CryptoError::AuthenticationFailed)
        ));
    }

    #[test]
    fn reordering_detected() {
        let key = [3u8; 16];
        let (raw_a, raw_b) = memory_pair();
        let mut producer = ShieldedStream::new(raw_a, &key, StreamRole::Producer);
        producer.write(b"first").unwrap();
        producer.write(b"second").unwrap();
        // The host drops the first frame: the consumer sees "second" at
        // sequence 0 and must reject it.
        let _stolen = raw_b.recv_frame().unwrap();
        let mut consumer = ShieldedStream::new(raw_b, &key, StreamRole::Consumer);
        assert!(matches!(
            consumer.read(),
            Err(CryptoError::AuthenticationFailed)
        ));
    }

    #[test]
    fn replay_detected() {
        let key = [4u8; 16];
        let (raw_a, raw_b) = memory_pair();
        let mut producer = ShieldedStream::new(raw_a, &key, StreamRole::Producer);
        // Two identical payments: the host captures the first frame and
        // replays it in place of the second.
        producer.write(b"payment: 100 EUR").unwrap();
        producer.write(b"payment: 100 EUR").unwrap();
        let frame0 = raw_b.recv_frame().unwrap();
        let frame1 = raw_b.recv_frame().unwrap();
        // Ciphertexts differ despite equal plaintext (sequence in nonce).
        assert_ne!(frame0, frame1);
        // Decrypting the replayed frame0 at sequence 1 must fail.
        let nonce1 = securecloud_crypto::gcm::nonce_from_seq(DOMAIN_PRODUCER, 1);
        assert!(AesGcm::new(&key)
            .open(&nonce1, &frame0, &1u64.to_be_bytes())
            .is_err());
        // And through the stream API: deliver frame0 twice.
        let (raw_c, raw_d) = memory_pair();
        raw_c.send_frame(frame0.clone()).unwrap();
        raw_c.send_frame(frame0).unwrap();
        let mut consumer = ShieldedStream::new(raw_d, &key, StreamRole::Consumer);
        assert_eq!(consumer.read().unwrap(), b"payment: 100 EUR");
        assert!(matches!(
            consumer.read(),
            Err(CryptoError::AuthenticationFailed)
        ));
    }

    #[test]
    fn switchless_log_roundtrips_without_transitions() {
        let key = [6u8; 16];
        let host = Arc::new(MemHost::new());
        let shield = AsyncShield::switchless(host.clone(), 8);
        let mut mem = MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::sgx_v1());
        let mut log = SwitchlessLog::create(shield, &mut mem, "/stdout.log", &key).unwrap();
        for i in 0..20 {
            log.write(&mut mem, format!("log line {i}").as_bytes())
                .unwrap();
        }
        log.flush(&mut mem).unwrap();
        assert_eq!(log.frames_written(), 20);
        let raw = host.raw_file("/stdout.log").unwrap();
        assert!(
            !raw.windows(8).any(|w| w == b"log line"),
            "plaintext leaked into the host log"
        );
        let lines = SwitchlessLog::decode_log(&key, &raw).unwrap();
        assert_eq!(lines.len(), 20);
        assert_eq!(lines[7], b"log line 7");
        // Far below one transition pair per line: the whole run is
        // switchless.
        assert!(mem.cycles() < 21 * CostModel::sgx_v1().transition_pair());
    }

    #[test]
    fn switchless_log_detects_reordering() {
        let key = [7u8; 16];
        let host = Arc::new(MemHost::new());
        let shield = AsyncShield::switchless(host.clone(), 4);
        let mut mem = MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::zero());
        let mut log = SwitchlessLog::create(shield, &mut mem, "/l", &key).unwrap();
        log.write(&mut mem, b"first").unwrap();
        log.write(&mut mem, b"second").unwrap();
        log.flush(&mut mem).unwrap();
        let raw = host.raw_file("/l").unwrap();
        // The host swaps the two frames: decode must fail.
        let len0 = u32::from_be_bytes(raw[0..4].try_into().unwrap()) as usize;
        let (frame0, frame1) = raw.split_at(4 + len0);
        let mut swapped = frame1.to_vec();
        swapped.extend_from_slice(frame0);
        assert!(matches!(
            SwitchlessLog::decode_log(&key, &swapped),
            Err(CryptoError::AuthenticationFailed)
        ));
    }

    #[test]
    fn empty_frames_allowed() {
        let key = [5u8; 16];
        let (mut producer, mut consumer) = pair(&key);
        producer.write(b"").unwrap();
        assert_eq!(consumer.read().unwrap(), b"");
    }
}
