//! A SCONE-like secure container runtime (paper §IV, §V-A).
//!
//! SCONE ("Secure Linux Containers with Intel SGX", OSDI'16) is the
//! foundation of the SecureCloud micro-service layer: it runs unmodified
//! application logic inside an enclave and shields its interaction with the
//! untrusted world. This crate reproduces its architecture:
//!
//! * [`syscall`] — the *external system call interface*: arguments are
//!   copied out, results sanity-checked and copied in; available in a
//!   naive synchronous mode (one enclave transition round-trip per call)
//!   and SCONE's asynchronous queue mode.
//! * [`fshield`] — transparent encryption/authentication of file data with
//!   an *FS protection file* holding per-file keys and chunk MACs.
//! * [`stdio`] — encrypted standard I/O streams.
//! * [`rings`] — shared-memory submission/completion rings: the switchless
//!   transport that replaces the per-call queue handoff with SPSC slots in
//!   untrusted memory, serviced by the host without any enclave transition.
//! * [`tasks`] — SCONE's "tailored threading": a user-level M:N task
//!   scheduler multiplexing application threads over the async syscall
//!   rings without enclave transitions.
//! * [`executor`] — an in-enclave cooperative futures executor: wakers,
//!   a ready queue, and a parking path that blocks on ring completions
//!   instead of busy-polling.
//! * [`scf`] — the startup configuration file and the attested provisioning
//!   flow that releases it only to verified enclaves.
//! * [`runtime`] — the assembled secure-container runtime.
//! * [`hostos`] — the untrusted host interface (with adversarial test
//!   hooks: corruption and rollback).

pub mod executor;
pub mod fshield;
pub mod hostos;
pub mod rings;
pub mod runtime;
pub mod scf;
pub mod stdio;
pub mod syscall;
pub mod tasks;

use securecloud_crypto::CryptoError;
use securecloud_sgx::SgxError;
use std::error::Error as StdError;
use std::fmt;

/// Errors from the SCONE runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SconeError {
    /// The untrusted host violated the syscall protocol (Iago-style).
    HostViolation(String),
    /// Shielded data failed authentication: tampered, rolled back, or lost.
    Tampered(String),
    /// A shielded path does not exist.
    NotFound(String),
    /// A shielded path already exists.
    AlreadyExists(String),
    /// The async syscall engine has stopped or has nothing in flight.
    ShieldStopped,
    /// Configuration / provisioning failure.
    Config(String),
    /// Underlying cryptographic failure.
    Crypto(CryptoError),
    /// Underlying enclave failure.
    Sgx(SgxError),
}

impl fmt::Display for SconeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SconeError::HostViolation(why) => write!(f, "host protocol violation: {why}"),
            SconeError::Tampered(why) => write!(f, "shield integrity failure: {why}"),
            SconeError::NotFound(path) => write!(f, "shielded file not found: {path}"),
            SconeError::AlreadyExists(path) => write!(f, "shielded file exists: {path}"),
            SconeError::ShieldStopped => write!(f, "async syscall engine stopped"),
            SconeError::Config(why) => write!(f, "configuration failure: {why}"),
            SconeError::Crypto(e) => write!(f, "cryptographic failure: {e}"),
            SconeError::Sgx(e) => write!(f, "enclave failure: {e}"),
        }
    }
}

impl StdError for SconeError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            SconeError::Crypto(e) => Some(e),
            SconeError::Sgx(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for SconeError {
    fn from(e: CryptoError) -> Self {
        SconeError::Crypto(e)
    }
}

impl From<SgxError> for SconeError {
    fn from(e: SgxError) -> Self {
        SconeError::Sgx(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        let errors = [
            SconeError::HostViolation("x".into()),
            SconeError::Tampered("y".into()),
            SconeError::NotFound("/p".into()),
            SconeError::AlreadyExists("/p".into()),
            SconeError::ShieldStopped,
            SconeError::Config("z".into()),
            SconeError::Crypto(CryptoError::TransportClosed),
            SconeError::Sgx(SgxError::Destroyed),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversions() {
        use std::error::Error;
        let e: SconeError = CryptoError::AuthenticationFailed.into();
        assert!(e.source().is_some());
        let e: SconeError = SgxError::Destroyed.into();
        assert!(e.source().is_some());
    }
}
