//! SCONE's "tailored threading": a user-level M:N task scheduler.
//!
//! Kernel threads cannot be scheduled inside an enclave without paying
//! transitions, so SCONE multiplexes M application threads onto N enclave
//! threads with a *user-level* scheduler: when a thread issues a system
//! call, it parks on the asynchronous syscall queue and another thread
//! runs; a user-level context switch costs tens of cycles instead of a
//! ~8 000-cycle enclave exit.
//!
//! Tasks are cooperative state machines: [`Task::resume`] runs until the
//! task either finishes, yields, or issues a syscall (returned as
//! [`Poll::Syscall`]); the scheduler submits it on the [`AsyncShield`] and
//! resumes the task when the completion arrives.

use crate::hostos::{Syscall, SyscallRet};
use crate::syscall::AsyncShield;
use crate::SconeError;
use securecloud_sgx::mem::MemorySim;
use securecloud_telemetry::{Counter, Telemetry};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Cycles charged per user-level context switch (register save/restore —
/// the whole point is that this is ~100x cheaper than an enclave exit).
pub const USER_SWITCH_CYCLES: u64 = 60;

/// What a task wants after being resumed.
#[derive(Debug)]
pub enum Poll {
    /// Run me again later (cooperative yield).
    Yield,
    /// Issue this syscall and resume me with its result.
    Syscall(Syscall),
    /// The task is finished.
    Done,
}

/// A cooperative task. `last_result` carries the completion of the
/// syscall requested by the previous [`Poll::Syscall`], if any.
pub trait Task {
    /// Resumes the task.
    fn resume(&mut self, mem: &mut MemorySim, last_result: Option<SyscallRet>) -> Poll;
}

/// Closure adapter: the closure is the task's step function.
pub struct FnTask<F>(pub F);

impl<F> Task for FnTask<F>
where
    F: FnMut(&mut MemorySim, Option<SyscallRet>) -> Poll,
{
    fn resume(&mut self, mem: &mut MemorySim, last_result: Option<SyscallRet>) -> Poll {
        (self.0)(mem, last_result)
    }
}

/// Scheduler statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Task resumptions (user-level context switches).
    pub switches: u64,
    /// Syscalls issued through the async queue.
    pub syscalls: u64,
    /// Tasks run to completion.
    pub completed: u64,
    /// Completion polls that woke no runnable task. The ready-queue
    /// design makes these structurally ~0: the scheduler only blocks for
    /// a completion when every live task is parked on one, so each wake
    /// delivers exactly one task.
    pub spurious_polls: u64,
}

/// Live scheduler counters; [`SchedulerStats`] snapshots read from these,
/// and `set_telemetry` adopts the same handles into the shared registry.
#[derive(Debug, Default)]
struct SchedulerMetrics {
    switches: Counter,
    syscalls: Counter,
    completed: Counter,
    spurious_polls: Counter,
}

impl SchedulerMetrics {
    fn adopt_into(&self, telemetry: &Telemetry) {
        let registry = telemetry.registry();
        registry.adopt_counter(
            "securecloud_scone_scheduler_switches_total",
            &[],
            &self.switches,
        );
        registry.adopt_counter(
            "securecloud_scone_scheduler_syscalls_total",
            &[],
            &self.syscalls,
        );
        registry.adopt_counter(
            "securecloud_scone_scheduler_completed_total",
            &[],
            &self.completed,
        );
        registry.adopt_counter(
            "securecloud_sched_spurious_polls_total",
            &[],
            &self.spurious_polls,
        );
    }
}

struct Slot {
    task: Box<dyn Task>,
    deliver: Option<SyscallRet>,
    parked: bool,
    done: bool,
}

/// The user-level M:N scheduler: many tasks, one enclave thread, one
/// host-side ring servicer behind the [`AsyncShield`].
///
/// Scheduling is ready-queue driven: runnable tasks sit on a FIFO, parked
/// tasks are *never* re-scanned, and when the ready queue drains with
/// syscalls outstanding the scheduler blocks on the shield's completion
/// signal — one wake, one runnable task, no busy-polling.
pub struct TaskScheduler {
    shield: AsyncShield,
    slots: Vec<Slot>,
    ready: VecDeque<usize>,
    waiting: HashMap<u64, usize>, // syscall id -> slot
    live: usize,
    metrics: SchedulerMetrics,
}

impl std::fmt::Debug for TaskScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskScheduler")
            .field("tasks", &self.slots.len())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl TaskScheduler {
    /// Creates a scheduler issuing syscalls through `shield`.
    #[must_use]
    pub fn new(shield: AsyncShield) -> Self {
        TaskScheduler {
            shield,
            slots: Vec::new(),
            ready: VecDeque::new(),
            waiting: HashMap::new(),
            live: 0,
            metrics: SchedulerMetrics::default(),
        }
    }

    /// Adopts the scheduler's counters into `telemetry`'s registry and
    /// instruments the underlying async shield.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.metrics.adopt_into(&telemetry);
        self.shield.set_telemetry(telemetry);
    }

    /// Adds a task (immediately runnable).
    pub fn spawn(&mut self, task: Box<dyn Task>) {
        self.slots.push(Slot {
            task,
            deliver: None,
            parked: false,
            done: false,
        });
        self.ready.push_back(self.slots.len() - 1);
        self.live += 1;
    }

    /// Number of unfinished tasks.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.live
    }

    /// Scheduler statistics.
    #[must_use]
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            switches: self.metrics.switches.value(),
            syscalls: self.metrics.syscalls.value(),
            completed: self.metrics.completed.value(),
            spurious_polls: self.metrics.spurious_polls.value(),
        }
    }

    /// Runs until every task completes.
    ///
    /// # Errors
    ///
    /// Propagates [`SconeError`] from the syscall shield (host violations
    /// abort the run — the enclave must not act on forged results).
    pub fn run(&mut self, mem: &mut MemorySim) -> Result<SchedulerStats, SconeError> {
        while self.live > 0 {
            let Some(idx) = self.ready.pop_front() else {
                // Every live task is parked on a syscall: block on the
                // ring's completion signal and wake exactly the owner.
                let completion = self.shield.complete(mem)?;
                match self.waiting.remove(&completion.id) {
                    Some(slot) => {
                        self.slots[slot].deliver = Some(completion.ret);
                        self.slots[slot].parked = false;
                        self.ready.push_back(slot);
                    }
                    None => {
                        // A wake that unblocked nothing. Structurally this
                        // cannot happen — the counter exists to prove it.
                        self.metrics.spurious_polls.inc();
                    }
                }
                continue;
            };
            mem.charge_cycles(USER_SWITCH_CYCLES);
            self.metrics.switches.inc();
            let delivered = self.slots[idx].deliver.take();
            match self.slots[idx].task.resume(mem, delivered) {
                Poll::Yield => self.ready.push_back(idx),
                Poll::Done => {
                    self.slots[idx].done = true;
                    self.live -= 1;
                    self.metrics.completed.inc();
                }
                Poll::Syscall(call) => {
                    let id = self.shield.submit(mem, call)?;
                    self.metrics.syscalls.inc();
                    self.slots[idx].parked = true;
                    self.waiting.insert(id, idx);
                }
            }
        }
        Ok(self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostos::MemHost;
    use securecloud_sgx::costs::{CostModel, MemoryGeometry};
    use std::sync::Arc;

    fn mem() -> MemorySim {
        MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::sgx_v1())
    }

    /// A task that opens a file and writes `n` records, then finishes.
    fn writer(path: &'static str, n: usize) -> Box<dyn Task> {
        let mut fd: Option<u64> = None;
        let mut written = 0usize;
        let mut opened = false;
        Box::new(FnTask(
            move |_mem: &mut MemorySim, last: Option<SyscallRet>| {
                if !opened {
                    opened = true;
                    return Poll::Syscall(Syscall::Open {
                        path: path.to_string(),
                        create: true,
                    });
                }
                if fd.is_none() {
                    match last {
                        Some(SyscallRet::Fd(f)) => fd = Some(f),
                        other => panic!("expected fd, got {other:?}"),
                    }
                }
                if written == n {
                    return Poll::Done;
                }
                written += 1;
                Poll::Syscall(Syscall::Pwrite {
                    fd: fd.expect("opened"),
                    offset: (written * 8) as u64,
                    data: written.to_le_bytes().to_vec(),
                })
            },
        ))
    }

    #[test]
    fn many_tasks_interleave_and_complete() {
        let host = Arc::new(MemHost::new());
        let mut scheduler = TaskScheduler::new(AsyncShield::new(host.clone()));
        for i in 0..8 {
            let path: &'static str = Box::leak(format!("/file{i}").into_boxed_str());
            scheduler.spawn(writer(path, 10));
        }
        let mut mem = mem();
        let stats = scheduler.run(&mut mem).unwrap();
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.syscalls, 8 * 11); // 1 open + 10 writes each
        assert!(stats.switches >= stats.syscalls);
        // Every file was fully written on the host.
        for i in 0..8 {
            let raw = host.raw_file(&format!("/file{i}")).unwrap();
            assert_eq!(raw.len(), 11 * 8);
        }
        assert_eq!(scheduler.pending(), 0);
    }

    #[test]
    fn pure_compute_tasks_never_transition() {
        let host = Arc::new(MemHost::new());
        let mut scheduler = TaskScheduler::new(AsyncShield::new(host.clone()));
        for _ in 0..4 {
            let mut steps = 0;
            scheduler.spawn(Box::new(FnTask(move |mem: &mut MemorySim, _| {
                mem.charge_ops(100);
                steps += 1;
                if steps < 5 {
                    Poll::Yield
                } else {
                    Poll::Done
                }
            })));
        }
        let mut mem = mem();
        let stats = scheduler.run(&mut mem).unwrap();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.syscalls, 0);
        assert_eq!(host.call_count(), 0);
        // Cost is compute + cheap user switches only: far below one
        // enclave transition per switch.
        assert!(mem.cycles() < stats.switches * 8_000);
    }

    #[test]
    fn user_switches_are_cheaper_than_transitions() {
        // The M:N claim in one number: scheduling overhead per switch is
        // USER_SWITCH_CYCLES, not the ~8k of an enclave exit+entry.
        let host = Arc::new(MemHost::new());
        let mut scheduler = TaskScheduler::new(AsyncShield::new(host));
        scheduler.spawn(Box::new(FnTask(|_mem: &mut MemorySim, _| Poll::Done)));
        let mut mem = mem();
        let before = mem.cycles();
        scheduler.run(&mut mem).unwrap();
        assert_eq!(mem.cycles() - before, USER_SWITCH_CYCLES);
    }

    #[test]
    fn completion_signal_path_has_no_spurious_polls() {
        // The headline satellite claim: with the ready-queue design the
        // scheduler never wakes without work, across a mixed workload of
        // syscall-heavy and compute-only tasks.
        let host = Arc::new(MemHost::new());
        let mut scheduler = TaskScheduler::new(AsyncShield::switchless(host.clone(), 8));
        for i in 0..6 {
            let path: &'static str = Box::leak(format!("/sp{i}").into_boxed_str());
            scheduler.spawn(writer(path, 7));
        }
        let mut spins = 0;
        scheduler.spawn(Box::new(FnTask(move |_mem: &mut MemorySim, _| {
            spins += 1;
            if spins < 50 {
                Poll::Yield
            } else {
                Poll::Done
            }
        })));
        let mut mem = mem();
        let stats = scheduler.run(&mut mem).unwrap();
        assert_eq!(stats.completed, 7);
        assert_eq!(stats.spurious_polls, 0);
    }

    #[test]
    fn scheduler_over_deterministic_rings_is_reproducible() {
        let run = || {
            let host = Arc::new(MemHost::new());
            let mut scheduler = TaskScheduler::new(AsyncShield::switchless(host.clone(), 4));
            for i in 0..5 {
                let path: &'static str = Box::leak(format!("/det{i}").into_boxed_str());
                scheduler.spawn(writer(path, 9));
            }
            let mut mem = mem();
            let stats = scheduler.run(&mut mem).unwrap();
            (stats, mem.cycles(), host.raw_file("/det0").unwrap())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tasks_with_mixed_workloads() {
        let host = Arc::new(MemHost::new());
        let mut scheduler = TaskScheduler::new(AsyncShield::new(host.clone()));
        scheduler.spawn(writer("/mixed", 3));
        let mut count = 0;
        scheduler.spawn(Box::new(FnTask(move |_mem: &mut MemorySim, _| {
            count += 1;
            if count < 100 {
                Poll::Yield
            } else {
                Poll::Done
            }
        })));
        let mut mem = mem();
        let stats = scheduler.run(&mut mem).unwrap();
        assert_eq!(stats.completed, 2);
        assert!(host.raw_file("/mixed").is_some());
    }
}
