//! Startup configuration files (SCF) and the configuration service.
//!
//! Per §V-A: *"Each secure container requires a startup configuration file
//! (SCF). The SCF contains keys to encrypt standard I/O streams, the hash
//! and encryption key of the FS protection file, application arguments, as
//! well as environment variables. Only an enclave whose identity has been
//! verified can access the SCF, which is received through a TLS-protected
//! connection that is established during enclave startup."*
//!
//! The [`ConfigService`] holds SCFs keyed by enclave measurement and
//! releases one only after verifying the requesting enclave's quote — with
//! the quote's report data bound to the channel key, preventing relays.

use crate::SconeError;
use securecloud_crypto::channel::{ChannelConfig, Identity, SecureChannel, Transport};
use securecloud_crypto::sha256::Sha256;
use securecloud_crypto::wire::Wire;
use securecloud_crypto::x25519::PublicKey;
use securecloud_crypto::{impl_wire_struct, CryptoError};
use securecloud_sgx::attest::{AttestationService, Quote};
use securecloud_sgx::enclave::{Enclave, Measurement};
use std::collections::{BTreeMap, HashMap};

/// Symmetric keys protecting the standard I/O streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdioKeys {
    /// Key for the stdin stream.
    pub stdin: [u8; 16],
    /// Key for the stdout stream.
    pub stdout: [u8; 16],
    /// Key for the stderr stream.
    pub stderr: [u8; 16],
}

impl_wire_struct!(StdioKeys {
    stdin,
    stdout,
    stderr
});

impl StdioKeys {
    /// Generates three fresh random keys.
    #[must_use]
    pub fn generate() -> Self {
        StdioKeys {
            stdin: securecloud_crypto::random_array(),
            stdout: securecloud_crypto::random_array(),
            stderr: securecloud_crypto::random_array(),
        }
    }
}

/// A startup configuration file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scf {
    /// Application arguments.
    pub args: Vec<String>,
    /// Environment variables.
    pub env: BTreeMap<String, String>,
    /// Key decrypting the FS protection file.
    pub fs_protection_key: [u8; 16],
    /// Expected hash of the sealed FS protection file (integrity pin).
    pub fs_protection_digest: [u8; 32],
    /// Standard I/O stream keys.
    pub stdio: StdioKeys,
}

impl_wire_struct!(Scf {
    args,
    env,
    fs_protection_key,
    fs_protection_digest,
    stdio
});

/// The binding an enclave must put in its quote's report data: the hash of
/// the channel public key it will use to receive the SCF.
#[must_use]
pub fn channel_binding(channel_key: &PublicKey) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"securecloud scf channel binding v1");
    h.update(channel_key);
    h.finalize()
}

/// The trusted configuration service releasing SCFs to attested enclaves.
#[derive(Debug)]
pub struct ConfigService {
    identity: Identity,
    attestation: AttestationService,
    scfs: HashMap<Measurement, Scf>,
}

impl ConfigService {
    /// Creates a service with a fresh channel identity and the given
    /// attestation verifier.
    #[must_use]
    pub fn new(attestation: AttestationService) -> Self {
        ConfigService {
            identity: Identity::generate("scone-config-service"),
            attestation,
            scfs: HashMap::new(),
        }
    }

    /// The service's channel public key, pinned by clients.
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        self.identity.public_key()
    }

    /// Registers the SCF to release to enclaves measuring `measurement`.
    pub fn register(&mut self, measurement: Measurement, scf: Scf) {
        self.scfs.insert(measurement, scf);
    }

    /// Mutable access to the attestation policy.
    pub fn attestation_mut(&mut self) -> &mut AttestationService {
        &mut self.attestation
    }

    /// Serves one SCF request over `transport`.
    ///
    /// The handshake authenticates the enclave's quote; the SCF is released
    /// only if the quote verifies, its report data binds the channel key the
    /// enclave is using, and an SCF is registered for the measurement.
    ///
    /// # Errors
    ///
    /// [`SconeError`] describing the failed verification step. On failure an
    /// error marker is sent to the client instead of the SCF.
    pub fn serve_one<T: Transport>(&self, transport: T) -> Result<Measurement, SconeError> {
        let mut channel =
            SecureChannel::respond(transport, &self.identity, ChannelConfig::default())
                .map_err(SconeError::Crypto)?;
        let outcome = self.authorize(&channel);
        match outcome {
            Ok((measurement, scf)) => {
                let mut frame = vec![1u8];
                frame.extend_from_slice(&scf.to_wire());
                channel.send(&frame).map_err(SconeError::Crypto)?;
                Ok(measurement)
            }
            Err(e) => {
                let mut frame = vec![0u8];
                frame.extend_from_slice(e.to_string().as_bytes());
                let _ = channel.send(&frame);
                Err(e)
            }
        }
    }

    fn authorize<T: Transport>(
        &self,
        channel: &SecureChannel<T>,
    ) -> Result<(Measurement, &Scf), SconeError> {
        let quote = Quote::from_bytes(channel.peer_attestation())
            .map_err(|e| SconeError::Config(format!("malformed quote: {e}")))?;
        let report = self.attestation.verify(&quote).map_err(SconeError::Sgx)?;
        let expected_binding = channel_binding(&channel.peer_static_key());
        if !securecloud_crypto::ct_eq(&report.report_data[..32], &expected_binding) {
            return Err(SconeError::Config(
                "quote is not bound to the requesting channel key (possible relay)".into(),
            ));
        }
        let scf = self.scfs.get(&report.measurement).ok_or_else(|| {
            SconeError::Config(format!(
                "no SCF registered for measurement {}",
                report.measurement.to_hex()
            ))
        })?;
        Ok((report.measurement, scf))
    }
}

/// Enclave-side SCF fetch: attests over `transport` to the pinned config
/// service and returns the provisioned SCF.
///
/// Charges the enclave for the handshake's public-key cryptography.
///
/// # Errors
///
/// [`SconeError::Crypto`] on handshake failure, [`SconeError::Config`] if
/// the service refuses or answers malformed data.
pub fn fetch_scf<T: Transport>(
    enclave: &mut Enclave,
    channel_identity: &Identity,
    transport: T,
    service_key: PublicKey,
) -> Result<Scf, SconeError> {
    let binding = channel_binding(&channel_identity.public_key());
    let quote = enclave.quote(&binding);
    // Four X25519 operations plus AEAD: ~600k cycles inside the enclave.
    enclave.memory().charge_cycles(600_000);
    let config = ChannelConfig {
        expected_peer: Some(service_key),
        attestation_payload: quote.to_bytes(),
        verify_peer: None,
    };
    let mut channel =
        SecureChannel::initiate(transport, channel_identity, config).map_err(SconeError::Crypto)?;
    let frame = channel.recv().map_err(SconeError::Crypto)?;
    match frame.split_first() {
        Some((1, body)) => Scf::from_wire(body).map_err(SconeError::Crypto),
        Some((0, body)) => Err(SconeError::Config(format!(
            "config service refused: {}",
            String::from_utf8_lossy(body)
        ))),
        _ => Err(SconeError::Crypto(CryptoError::Malformed(
            "empty SCF frame".into(),
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use securecloud_crypto::channel::memory_pair;
    use securecloud_sgx::enclave::{EnclaveConfig, Platform};
    use std::thread;

    fn scf_fixture() -> Scf {
        Scf {
            args: vec!["meter-analytics".into(), "--window=60".into()],
            env: BTreeMap::from([("REGION".to_string(), "eu-central".to_string())]),
            fs_protection_key: securecloud_crypto::random_array(),
            fs_protection_digest: [7u8; 32],
            stdio: StdioKeys::generate(),
        }
    }

    struct Setup {
        platform: Platform,
        enclave: Enclave,
        service: ConfigService,
    }

    fn setup() -> Setup {
        let platform = Platform::new();
        let enclave = platform
            .launch(EnclaveConfig::new("app", b"application code"))
            .unwrap();
        let mut attestation = AttestationService::new();
        attestation.register_platform(&platform);
        attestation.allow_measurement(enclave.measurement());
        let mut service = ConfigService::new(attestation);
        service.register(enclave.measurement(), scf_fixture());
        Setup {
            platform,
            enclave,
            service,
        }
    }

    #[test]
    fn scf_wire_roundtrip() {
        let scf = scf_fixture();
        assert_eq!(Scf::from_wire(&scf.to_wire()).unwrap(), scf);
    }

    #[test]
    fn provisioning_happy_path() {
        let Setup {
            mut enclave,
            service,
            ..
        } = setup();
        let (client_t, server_t) = memory_pair();
        let service_key = service.public_key();
        let server = thread::spawn(move || service.serve_one(server_t));
        let identity = Identity::generate("enclave-channel");
        let scf = fetch_scf(&mut enclave, &identity, client_t, service_key).unwrap();
        assert_eq!(scf, scf_fixture_normalized(&scf));
        assert_eq!(server.join().unwrap().unwrap(), enclave.measurement());
        assert!(enclave.memory().cycles() > 0, "handshake must be charged");
    }

    // The fixture has random keys; compare the stable fields.
    fn scf_fixture_normalized(scf: &Scf) -> Scf {
        Scf {
            args: vec!["meter-analytics".into(), "--window=60".into()],
            env: BTreeMap::from([("REGION".to_string(), "eu-central".to_string())]),
            fs_protection_key: scf.fs_protection_key,
            fs_protection_digest: [7u8; 32],
            stdio: scf.stdio.clone(),
        }
    }

    #[test]
    fn unregistered_measurement_is_refused() {
        let Setup {
            platform, service, ..
        } = setup();
        let mut other = platform
            .launch(EnclaveConfig::new("other", b"different code"))
            .unwrap();
        // Allow the measurement at the attestation layer but register no SCF.
        let mut service = service;
        service
            .attestation_mut()
            .allow_measurement(other.measurement());
        let (client_t, server_t) = memory_pair();
        let key = service.public_key();
        let server = thread::spawn(move || service.serve_one(server_t));
        let identity = Identity::generate("other-channel");
        let err = fetch_scf(&mut other, &identity, client_t, key);
        assert!(matches!(err, Err(SconeError::Config(_))));
        assert!(server.join().unwrap().is_err());
    }

    #[test]
    fn unattested_measurement_is_refused() {
        let Setup {
            platform,
            mut service,
            ..
        } = setup();
        let mut rogue = platform
            .launch(EnclaveConfig::new("rogue", b"malicious code"))
            .unwrap();
        service.register(rogue.measurement(), scf_fixture());
        // Attestation allowlist does NOT include the rogue measurement.
        let (client_t, server_t) = memory_pair();
        let key = service.public_key();
        let server = thread::spawn(move || service.serve_one(server_t));
        let identity = Identity::generate("rogue-channel");
        let err = fetch_scf(&mut rogue, &identity, client_t, key);
        assert!(err.is_err());
        assert!(server.join().unwrap().is_err());
    }

    #[test]
    fn relayed_quote_is_refused() {
        // The attacker owns the channel but presents an honest enclave's
        // quote that is bound to a *different* channel key.
        let Setup {
            enclave, service, ..
        } = setup();
        let honest_identity = Identity::generate("honest-channel");
        let quote = enclave.quote(&channel_binding(&honest_identity.public_key()));
        let attacker_identity = Identity::generate("attacker-channel");
        let (client_t, server_t) = memory_pair();
        let key = service.public_key();
        let server = thread::spawn(move || service.serve_one(server_t));
        let config = ChannelConfig {
            expected_peer: Some(key),
            attestation_payload: quote.to_bytes(),
            verify_peer: None,
        };
        let mut channel = SecureChannel::initiate(client_t, &attacker_identity, config).unwrap();
        let frame = channel.recv().unwrap();
        assert_eq!(frame[0], 0, "service must refuse the relayed quote");
        assert!(server.join().unwrap().is_err());
    }

    #[test]
    fn garbage_attestation_payload_is_refused() {
        let Setup { service, .. } = setup();
        let (client_t, server_t) = memory_pair();
        let key = service.public_key();
        let server = thread::spawn(move || service.serve_one(server_t));
        let identity = Identity::generate("garbage");
        let config = ChannelConfig {
            expected_peer: Some(key),
            attestation_payload: b"not a quote".to_vec(),
            verify_peer: None,
        };
        let mut channel = SecureChannel::initiate(client_t, &identity, config).unwrap();
        let frame = channel.recv().unwrap();
        assert_eq!(frame[0], 0);
        assert!(server.join().unwrap().is_err());
    }

    #[test]
    fn wrong_service_key_aborts_client() {
        let Setup {
            mut enclave,
            service,
            ..
        } = setup();
        let (client_t, server_t) = memory_pair();
        let server = thread::spawn(move || service.serve_one(server_t));
        let identity = Identity::generate("enclave-channel");
        let wrong_key = Identity::generate("imposter").public_key();
        let err = fetch_scf(&mut enclave, &identity, client_t, wrong_key);
        assert!(matches!(err, Err(SconeError::Crypto(_))));
        drop(server); // server thread errors out when the client hangs up
    }
}
