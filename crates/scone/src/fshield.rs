//! The file-system shield.
//!
//! Per §V-A of the paper, the SCONE client encrypts all files that must be
//! protected and creates an *FS protection file* containing the message
//! authentication codes for file chunks as well as the encryption keys; the
//! protection file is itself encrypted.
//!
//! Files are split into 4 KiB chunks, each sealed with AES-128-GCM under a
//! per-file key. The chunk nonce encodes the chunk index and a write
//! version, and the resulting tag is recorded in the [`FsProtection`]
//! structure — so the untrusted host can neither tamper with a chunk
//! (tag mismatch) nor roll it back to an older version (recorded tag is the
//! newer one).

use crate::hostos::{Syscall, SyscallRet};
use crate::syscall::{AsyncShield, ShieldDriver, SyncShield};
use crate::SconeError;
use securecloud_crypto::gcm::{AesGcm, NONCE_LEN, TAG_LEN};
use securecloud_crypto::sha256::Sha256;
use securecloud_crypto::wire::Wire;
use securecloud_crypto::{impl_wire_struct, CryptoError};
use securecloud_sgx::mem::MemorySim;
use securecloud_telemetry::Telemetry;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Plaintext bytes per encrypted chunk.
pub const CHUNK_SIZE: usize = 4096;

/// AEAD cost charged per plaintext byte (software AES in-enclave).
const AEAD_CYCLES_PER_BYTE: u64 = 2;

/// Authenticated metadata for one chunk of a shielded file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Write version, incremented on every chunk update (rollback defence).
    pub version: u64,
    /// GCM tag of the current chunk ciphertext.
    pub tag: [u8; TAG_LEN],
}

impl_wire_struct!(ChunkMeta { version, tag });

/// Authenticated metadata for one shielded file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// The file's AES-128 key.
    pub key: [u8; 16],
    /// Logical file length in bytes.
    pub len: u64,
    /// Per-chunk versions and tags.
    pub chunks: Vec<ChunkMeta>,
}

impl_wire_struct!(FileMeta { key, len, chunks });

/// The FS protection file: keys and MACs for every shielded file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsProtection {
    /// Per-path metadata.
    pub files: BTreeMap<String, FileMeta>,
    /// Monotone generation counter, bumped on every flush.
    pub generation: u64,
}

impl_wire_struct!(FsProtection { files, generation });

impl FsProtection {
    /// Creates an empty protection structure.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Encrypts the protection structure under `key` for storage in the
    /// (untrusted) image.
    #[must_use]
    pub fn seal(&self, key: &[u8; 16]) -> Vec<u8> {
        let nonce: [u8; NONCE_LEN] = securecloud_crypto::random_array();
        let mut out = nonce.to_vec();
        out.extend_from_slice(&AesGcm::new(key).seal(
            &nonce,
            &self.to_wire(),
            b"securecloud fs-protection v1",
        ));
        out
    }

    /// Decrypts a sealed protection structure.
    ///
    /// # Errors
    ///
    /// [`SconeError::Crypto`] on tampering or a wrong key.
    pub fn open_sealed(key: &[u8; 16], sealed: &[u8]) -> Result<Self, SconeError> {
        if sealed.len() < NONCE_LEN {
            return Err(SconeError::Crypto(CryptoError::AuthenticationFailed));
        }
        let (nonce, body) = sealed.split_at(NONCE_LEN);
        let nonce: [u8; NONCE_LEN] = nonce.try_into().expect("split size");
        let plain = AesGcm::new(key)
            .open(&nonce, body, b"securecloud fs-protection v1")
            .map_err(SconeError::Crypto)?;
        FsProtection::from_wire(&plain).map_err(SconeError::Crypto)
    }

    /// Hash of a sealed protection blob, as referenced from the SCF.
    #[must_use]
    pub fn digest(sealed: &[u8]) -> [u8; 32] {
        Sha256::digest(sealed)
    }

    /// Signs (but does not encrypt) the protection structure. Per §V-A of
    /// the paper, an image creator who wants to allow further
    /// customisation "would only sign the FS protection file, but not
    /// encrypt it. This way, the image's integrity is ensured" — the
    /// customiser can read and extend the metadata, then seal the final
    /// result themselves.
    #[must_use]
    pub fn sign(&self, key: &[u8; 32]) -> Vec<u8> {
        let body = self.to_wire();
        let tag = securecloud_crypto::hmac::HmacSha256::mac(key, &body);
        let mut out = body;
        out.extend_from_slice(&tag);
        out
    }

    /// Verifies and decodes a signed (plaintext) protection structure.
    ///
    /// # Errors
    ///
    /// [`SconeError::Tampered`] if the signature does not verify,
    /// [`SconeError::Crypto`] if the body does not decode.
    pub fn open_signed(key: &[u8; 32], signed: &[u8]) -> Result<Self, SconeError> {
        if signed.len() < 32 {
            return Err(SconeError::Tampered(
                "signed protection file too short".into(),
            ));
        }
        let (body, tag) = signed.split_at(signed.len() - 32);
        if !securecloud_crypto::hmac::HmacSha256::verify(key, body, tag) {
            return Err(SconeError::Tampered(
                "protection file signature does not verify".into(),
            ));
        }
        FsProtection::from_wire(body).map_err(SconeError::Crypto)
    }
}

fn chunk_nonce(chunk_index: u32, version: u64) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..4].copy_from_slice(&chunk_index.to_be_bytes());
    nonce[4..].copy_from_slice(&version.to_be_bytes());
    nonce
}

fn chunk_path(path: &str, chunk_index: usize) -> String {
    format!("{path}.c{chunk_index}")
}

fn chunk_aad(path: &str, chunk_index: usize, version: u64) -> Vec<u8> {
    let mut aad = Vec::with_capacity(path.len() + 16);
    aad.extend_from_slice(path.as_bytes());
    aad.extend_from_slice(&(chunk_index as u64).to_be_bytes());
    aad.extend_from_slice(&version.to_be_bytes());
    aad
}

/// A shielded view of the untrusted host file system.
///
/// All I/O flows through the shielded syscall interface; plaintext exists
/// only inside the enclave.
#[derive(Debug)]
pub struct ShieldedFs {
    shield: ShieldDriver,
    protection: FsProtection,
}

impl ShieldedFs {
    /// Mounts a shielded FS with existing protection metadata, issuing
    /// syscalls synchronously (one transition pair each).
    #[must_use]
    pub fn mount(shield: SyncShield, protection: FsProtection) -> Self {
        ShieldedFs {
            shield: ShieldDriver::sync(shield),
            protection,
        }
    }

    /// Mounts a shielded FS whose syscalls ride the switchless
    /// submission/completion rings: identical shielding and validation,
    /// zero enclave transitions.
    #[must_use]
    pub fn mount_switchless(shield: AsyncShield, protection: FsProtection) -> Self {
        ShieldedFs {
            shield: ShieldDriver::switchless(shield),
            protection,
        }
    }

    /// The plane syscalls travel on: `"sync"` or `"switchless"`.
    #[must_use]
    pub fn shield_mode(&self) -> &'static str {
        self.shield.mode()
    }

    /// The current protection metadata (keys + MACs).
    #[must_use]
    pub fn protection(&self) -> &FsProtection {
        &self.protection
    }

    /// Routes the underlying shield's syscall telemetry into `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.shield.set_telemetry(telemetry);
    }

    /// Consumes the FS, returning the protection metadata for sealing.
    #[must_use]
    pub fn into_protection(mut self) -> FsProtection {
        self.protection.generation += 1;
        self.protection
    }

    /// Whether `path` exists in the shielded namespace.
    #[must_use]
    pub fn exists(&self, path: &str) -> bool {
        self.protection.files.contains_key(path)
    }

    /// Logical length of `path`.
    ///
    /// # Errors
    ///
    /// [`SconeError::NotFound`] if the file does not exist.
    pub fn len(&self, path: &str) -> Result<u64, SconeError> {
        self.protection
            .files
            .get(path)
            .map(|m| m.len)
            .ok_or_else(|| SconeError::NotFound(path.to_string()))
    }

    /// Creates an empty shielded file with a fresh key.
    ///
    /// # Errors
    ///
    /// [`SconeError::AlreadyExists`] if the path is taken.
    pub fn create(&mut self, path: &str) -> Result<(), SconeError> {
        if self.protection.files.contains_key(path) {
            return Err(SconeError::AlreadyExists(path.to_string()));
        }
        self.protection.files.insert(
            path.to_string(),
            FileMeta {
                key: securecloud_crypto::random_array(),
                len: 0,
                chunks: Vec::new(),
            },
        );
        Ok(())
    }

    /// Writes `data` at `offset`, extending the file as needed. Affected
    /// chunks are re-encrypted with bumped versions.
    ///
    /// # Errors
    ///
    /// [`SconeError::NotFound`] for unknown paths, [`SconeError::Tampered`]
    /// if an existing chunk fails verification during read-modify-write.
    pub fn write(
        &mut self,
        mem: &mut MemorySim,
        path: &str,
        offset: u64,
        data: &[u8],
    ) -> Result<(), SconeError> {
        if data.is_empty() {
            return Ok(());
        }
        if !self.protection.files.contains_key(path) {
            return Err(SconeError::NotFound(path.to_string()));
        }
        let end = offset + data.len() as u64;
        let first_chunk = (offset as usize) / CHUNK_SIZE;
        let last_chunk = (end as usize - 1) / CHUNK_SIZE;
        for chunk_index in first_chunk..=last_chunk {
            let chunk_start = (chunk_index * CHUNK_SIZE) as u64;
            // Plaintext for this chunk: existing content (if any) merged
            // with the overlapping part of `data`.
            let mut plain = if chunk_index
                < self
                    .protection
                    .files
                    .get(path)
                    .expect("checked above")
                    .chunks
                    .len()
            {
                self.read_chunk(mem, path, chunk_index)?
            } else {
                Vec::new()
            };
            let copy_from = offset.max(chunk_start);
            let copy_to = end.min(chunk_start + CHUNK_SIZE as u64);
            let within = (copy_from - chunk_start) as usize;
            let span = (copy_to - copy_from) as usize;
            if plain.len() < within + span {
                plain.resize(within + span, 0);
            }
            let data_off = (copy_from - offset) as usize;
            plain[within..within + span].copy_from_slice(&data[data_off..data_off + span]);
            self.write_chunk(mem, path, chunk_index, &plain)?;
        }
        let meta = self.protection.files.get_mut(path).expect("checked above");
        meta.len = meta.len.max(end);
        Ok(())
    }

    /// Reads `len` bytes at `offset` (short reads at end of file).
    ///
    /// # Errors
    ///
    /// [`SconeError::NotFound`] for unknown paths; [`SconeError::Tampered`]
    /// if any covering chunk fails authentication or was rolled back.
    pub fn read(
        &self,
        mem: &mut MemorySim,
        path: &str,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, SconeError> {
        let meta = self
            .protection
            .files
            .get(path)
            .ok_or_else(|| SconeError::NotFound(path.to_string()))?;
        let end = (offset + len as u64).min(meta.len);
        if offset >= end {
            return Ok(Vec::new());
        }
        let first_chunk = (offset as usize) / CHUNK_SIZE;
        let last_chunk = (end as usize - 1) / CHUNK_SIZE;
        let mut out = Vec::with_capacity((end - offset) as usize);
        for chunk_index in first_chunk..=last_chunk {
            let mut plain = self.read_chunk(mem, path, chunk_index)?;
            let chunk_start = (chunk_index * CHUNK_SIZE) as u64;
            let from = offset.max(chunk_start) - chunk_start;
            let to = (end.min(chunk_start + CHUNK_SIZE as u64) - chunk_start) as usize;
            // A chunk may be stored shorter than the logical span covering
            // it (sparse writes): the authenticated content is what was
            // written, the tail is implicit zeros. Host truncation cannot
            // reach here — it fails the GCM tag in read_chunk.
            if plain.len() < to {
                plain.resize(to, 0);
            }
            out.extend_from_slice(&plain[from as usize..to]);
        }
        Ok(out)
    }

    /// Removes `path` from the namespace and deletes its chunks.
    ///
    /// # Errors
    ///
    /// [`SconeError::NotFound`] if the file does not exist.
    pub fn remove(&mut self, mem: &mut MemorySim, path: &str) -> Result<(), SconeError> {
        let meta = self
            .protection
            .files
            .remove(path)
            .ok_or_else(|| SconeError::NotFound(path.to_string()))?;
        for chunk_index in 0..meta.chunks.len() {
            let _ = self.shield.call(
                mem,
                &Syscall::Unlink {
                    path: chunk_path(path, chunk_index),
                },
            )?;
        }
        Ok(())
    }

    fn read_chunk(
        &self,
        mem: &mut MemorySim,
        path: &str,
        chunk_index: usize,
    ) -> Result<Vec<u8>, SconeError> {
        let meta = self
            .protection
            .files
            .get(path)
            .ok_or_else(|| SconeError::NotFound(path.to_string()))?;
        let chunk_meta = meta.chunks.get(chunk_index).ok_or_else(|| {
            SconeError::Tampered(format!("missing chunk metadata {chunk_index} for {path}"))
        })?;
        // A version-0 chunk is a hole from a sparse write: it was never
        // materialised on the host and reads as zeros.
        if chunk_meta.version == 0 {
            return Ok(vec![0u8; CHUNK_SIZE]);
        }
        let host_path = chunk_path(path, chunk_index);
        let fd = self.open_host(mem, &host_path, false)?;
        let sealed = match self.shield.call(
            mem,
            &Syscall::Pread {
                fd,
                offset: 0,
                len: CHUNK_SIZE + TAG_LEN,
            },
        )? {
            SyscallRet::Data(d) => d,
            other => {
                return Err(SconeError::HostViolation(format!(
                    "pread answered {other:?}"
                )))
            }
        };
        self.close_host(mem, fd)?;
        if sealed.len() < TAG_LEN {
            return Err(SconeError::Tampered(format!(
                "chunk {chunk_index} of {path} truncated"
            )));
        }
        // Rollback defence: the stored tag must be the one we recorded last.
        let stored_tag = &sealed[sealed.len() - TAG_LEN..];
        if !securecloud_crypto::ct_eq(stored_tag, &chunk_meta.tag) {
            return Err(SconeError::Tampered(format!(
                "chunk {chunk_index} of {path} does not match recorded MAC (tampered or rolled back)"
            )));
        }
        let nonce = chunk_nonce(chunk_index as u32, chunk_meta.version);
        let aad = chunk_aad(path, chunk_index, chunk_meta.version);
        mem.charge_cycles(sealed.len() as u64 * AEAD_CYCLES_PER_BYTE);
        AesGcm::new(&meta.key)
            .open(&nonce, &sealed, &aad)
            .map_err(|_| {
                SconeError::Tampered(format!("chunk {chunk_index} of {path} failed to decrypt"))
            })
    }

    fn write_chunk(
        &mut self,
        mem: &mut MemorySim,
        path: &str,
        chunk_index: usize,
        plain: &[u8],
    ) -> Result<(), SconeError> {
        debug_assert!(plain.len() <= CHUNK_SIZE);
        let meta = self
            .protection
            .files
            .get_mut(path)
            .ok_or_else(|| SconeError::NotFound(path.to_string()))?;
        while meta.chunks.len() <= chunk_index {
            meta.chunks.push(ChunkMeta {
                version: 0,
                tag: [0u8; TAG_LEN],
            });
        }
        let version = meta.chunks[chunk_index].version + 1;
        let nonce = chunk_nonce(chunk_index as u32, version);
        let aad = chunk_aad(path, chunk_index, version);
        mem.charge_cycles(plain.len() as u64 * AEAD_CYCLES_PER_BYTE);
        let sealed = AesGcm::new(&meta.key).seal(&nonce, plain, &aad);
        let tag: [u8; TAG_LEN] = sealed[sealed.len() - TAG_LEN..]
            .try_into()
            .expect("tag length");
        meta.chunks[chunk_index] = ChunkMeta { version, tag };

        let host_path = chunk_path(path, chunk_index);
        let fd = self.open_host(mem, &host_path, true)?;
        let sealed_len = sealed.len() as u64;
        match self.shield.call(
            mem,
            &Syscall::Pwrite {
                fd,
                offset: 0,
                data: sealed,
            },
        )? {
            SyscallRet::Done(_) => {}
            other => {
                return Err(SconeError::HostViolation(format!(
                    "pwrite answered {other:?}"
                )))
            }
        }
        // Shrink the host file if the chunk got shorter.
        self.shield.call(
            mem,
            &Syscall::Ftruncate {
                fd,
                len: sealed_len,
            },
        )?;
        self.close_host(mem, fd)
    }

    fn open_host(&self, mem: &mut MemorySim, path: &str, create: bool) -> Result<u64, SconeError> {
        match self.shield.call(
            mem,
            &Syscall::Open {
                path: path.to_string(),
                create,
            },
        )? {
            SyscallRet::Fd(fd) => Ok(fd),
            SyscallRet::Error(e) => Err(SconeError::Tampered(format!(
                "host lost shielded file {path}: {e}"
            ))),
            other => Err(SconeError::HostViolation(format!(
                "open answered {other:?}"
            ))),
        }
    }

    fn close_host(&self, mem: &mut MemorySim, fd: u64) -> Result<(), SconeError> {
        self.shield.call(mem, &Syscall::Close { fd })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostos::{HostOs, MemHost};
    use securecloud_sgx::costs::{CostModel, MemoryGeometry};
    use std::sync::Arc;

    fn setup() -> (Arc<MemHost>, ShieldedFs, MemorySim) {
        let host = Arc::new(MemHost::new());
        let fs = ShieldedFs::mount(SyncShield::new(host.clone()), FsProtection::new());
        let mem = MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::zero());
        (host, fs, mem)
    }

    #[test]
    fn write_read_roundtrip() {
        let (_host, mut fs, mut mem) = setup();
        fs.create("/secrets.db").unwrap();
        fs.write(&mut mem, "/secrets.db", 0, b"hello shielded world")
            .unwrap();
        assert_eq!(
            fs.read(&mut mem, "/secrets.db", 0, 100).unwrap(),
            b"hello shielded world"
        );
        assert_eq!(fs.read(&mut mem, "/secrets.db", 6, 8).unwrap(), b"shielded");
        assert_eq!(fs.len("/secrets.db").unwrap(), 20);
    }

    #[test]
    fn switchless_mount_matches_sync_byte_for_byte() {
        let run = |switchless: bool| {
            let host = Arc::new(MemHost::new());
            let mut fs = if switchless {
                ShieldedFs::mount_switchless(
                    AsyncShield::switchless(host.clone(), 8),
                    FsProtection::new(),
                )
            } else {
                ShieldedFs::mount(SyncShield::new(host.clone()), FsProtection::new())
            };
            let mut mem = MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::zero());
            fs.create("/db").unwrap();
            let data: Vec<u8> = (0..2 * CHUNK_SIZE + 77).map(|i| (i % 241) as u8).collect();
            fs.write(&mut mem, "/db", 0, &data).unwrap();
            fs.write(&mut mem, "/db", 100, b"overwrite").unwrap();
            let read = fs.read(&mut mem, "/db", 0, data.len()).unwrap();
            let mut files: Vec<(String, Vec<u8>)> = host
                .paths()
                .into_iter()
                .map(|p| {
                    let raw = host.raw_file(&p).unwrap();
                    (p, raw)
                })
                .collect();
            files.sort();
            (read, files, fs.into_protection())
        };
        let sync = run(false);
        let switchless = run(true);
        assert_eq!(sync.0, switchless.0, "reads must agree");
        assert_eq!(
            sync.2.files.keys().collect::<Vec<_>>(),
            switchless.2.files.keys().collect::<Vec<_>>()
        );
        // Same chunk layout on the host (ciphertext differs only if keys
        // or versions diverged — they must not).
        assert_eq!(
            sync.1
                .iter()
                .map(|(p, d)| (p.clone(), d.len()))
                .collect::<Vec<_>>(),
            switchless
                .1
                .iter()
                .map(|(p, d)| (p.clone(), d.len()))
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn multi_chunk_files() {
        let (_host, mut fs, mut mem) = setup();
        fs.create("/big").unwrap();
        let data: Vec<u8> = (0..3 * CHUNK_SIZE + 100).map(|i| (i % 251) as u8).collect();
        fs.write(&mut mem, "/big", 0, &data).unwrap();
        assert_eq!(fs.read(&mut mem, "/big", 0, data.len()).unwrap(), data);
        // Read spanning a chunk boundary.
        let cross = fs
            .read(&mut mem, "/big", CHUNK_SIZE as u64 - 10, 20)
            .unwrap();
        assert_eq!(cross, data[CHUNK_SIZE - 10..CHUNK_SIZE + 10]);
    }

    #[test]
    fn overwrite_within_chunk() {
        let (_host, mut fs, mut mem) = setup();
        fs.create("/f").unwrap();
        fs.write(&mut mem, "/f", 0, b"aaaaaaaaaa").unwrap();
        fs.write(&mut mem, "/f", 3, b"BBB").unwrap();
        assert_eq!(fs.read(&mut mem, "/f", 0, 10).unwrap(), b"aaaBBBaaaa");
    }

    #[test]
    fn host_sees_only_ciphertext() {
        let (host, mut fs, mut mem) = setup();
        fs.create("/plain").unwrap();
        fs.write(&mut mem, "/plain", 0, b"super secret content")
            .unwrap();
        for path in host.paths() {
            let raw = host.raw_file(&path).unwrap();
            assert!(
                !raw.windows(6).any(|w| w == b"secret"),
                "plaintext leaked into host file {path}"
            );
        }
    }

    #[test]
    fn corruption_detected() {
        let (host, mut fs, mut mem) = setup();
        fs.create("/f").unwrap();
        fs.write(&mut mem, "/f", 0, b"data to protect").unwrap();
        host.corrupt_file("/f.c0", 3);
        assert!(matches!(
            fs.read(&mut mem, "/f", 0, 10),
            Err(SconeError::Tampered(_))
        ));
    }

    #[test]
    fn rollback_detected() {
        let (host, mut fs, mut mem) = setup();
        fs.create("/f").unwrap();
        fs.write(&mut mem, "/f", 0, b"version 1").unwrap();
        host.snapshot_file("/f.c0");
        fs.write(&mut mem, "/f", 0, b"version 2").unwrap();
        host.rollback_file("/f.c0");
        assert!(matches!(
            fs.read(&mut mem, "/f", 0, 9),
            Err(SconeError::Tampered(_))
        ));
    }

    #[test]
    fn deleted_host_chunk_detected() {
        let (host, mut fs, mut mem) = setup();
        fs.create("/f").unwrap();
        fs.write(&mut mem, "/f", 0, b"payload").unwrap();
        host.execute(&Syscall::Unlink {
            path: "/f.c0".into(),
        });
        assert!(matches!(
            fs.read(&mut mem, "/f", 0, 7),
            Err(SconeError::Tampered(_))
        ));
    }

    #[test]
    fn protection_seal_roundtrip() {
        let (_host, mut fs, mut mem) = setup();
        fs.create("/a").unwrap();
        fs.write(&mut mem, "/a", 0, b"x").unwrap();
        let protection = fs.into_protection();
        let key: [u8; 16] = securecloud_crypto::random_array();
        let sealed = protection.seal(&key);
        let reopened = FsProtection::open_sealed(&key, &sealed).unwrap();
        assert_eq!(reopened, protection);
        // Wrong key fails.
        let wrong: [u8; 16] = securecloud_crypto::random_array();
        assert!(FsProtection::open_sealed(&wrong, &sealed).is_err());
        // Tampered blob fails.
        let mut bad = sealed.clone();
        bad[20] ^= 1;
        assert!(FsProtection::open_sealed(&key, &bad).is_err());
    }

    #[test]
    fn signed_protection_supports_customisation() {
        // Base image creator signs (integrity only, readable metadata).
        let (host, mut fs, mut mem) = setup();
        fs.create("/base/app").unwrap();
        fs.write(&mut mem, "/base/app", 0, b"base layer").unwrap();
        let base_protection = fs.into_protection();
        let signing_key: [u8; 32] = securecloud_crypto::random_array();
        let signed = base_protection.sign(&signing_key);

        // The customiser verifies integrity, reads the metadata, and adds
        // their own protected file on top.
        let reopened = FsProtection::open_signed(&signing_key, &signed).unwrap();
        assert_eq!(reopened, base_protection);
        let mut fs2 = ShieldedFs::mount(SyncShield::new(host), reopened);
        fs2.create("/custom/extra").unwrap();
        fs2.write(&mut mem, "/custom/extra", 0, b"customised")
            .unwrap();
        // Base content still reads through the customised mount.
        assert_eq!(
            fs2.read(&mut mem, "/base/app", 0, 10).unwrap(),
            b"base layer"
        );
        // The customiser seals the final protection file themselves.
        let final_key: [u8; 16] = securecloud_crypto::random_array();
        let sealed = fs2.into_protection().seal(&final_key);
        assert!(FsProtection::open_sealed(&final_key, &sealed).is_ok());

        // Tampering with the signed blob is caught.
        let mut bad = signed.clone();
        bad[3] ^= 1;
        assert!(matches!(
            FsProtection::open_signed(&signing_key, &bad),
            Err(SconeError::Tampered(_))
        ));
        // Wrong key is caught.
        let wrong: [u8; 32] = securecloud_crypto::random_array();
        assert!(FsProtection::open_signed(&wrong, &signed).is_err());
        assert!(FsProtection::open_signed(&signing_key, &signed[..16]).is_err());
    }

    #[test]
    fn remount_with_protection_reads_existing_data() {
        let (host, mut fs, mut mem) = setup();
        fs.create("/persist").unwrap();
        fs.write(&mut mem, "/persist", 0, b"durable bytes").unwrap();
        let protection = fs.into_protection();
        // A new enclave instance mounts the same host state.
        let fs2 = ShieldedFs::mount(SyncShield::new(host), protection);
        assert_eq!(
            fs2.read(&mut mem, "/persist", 0, 13).unwrap(),
            b"durable bytes"
        );
    }

    #[test]
    fn create_duplicate_and_missing_ops() {
        let (_host, mut fs, mut mem) = setup();
        fs.create("/f").unwrap();
        assert!(matches!(fs.create("/f"), Err(SconeError::AlreadyExists(_))));
        assert!(matches!(
            fs.read(&mut mem, "/missing", 0, 1),
            Err(SconeError::NotFound(_))
        ));
        assert!(matches!(
            fs.write(&mut mem, "/missing", 0, b"x"),
            Err(SconeError::NotFound(_))
        ));
        assert!(matches!(
            fs.remove(&mut mem, "/missing"),
            Err(SconeError::NotFound(_))
        ));
    }

    #[test]
    fn remove_deletes_chunks() {
        let (host, mut fs, mut mem) = setup();
        fs.create("/f").unwrap();
        fs.write(&mut mem, "/f", 0, &vec![1u8; CHUNK_SIZE * 2])
            .unwrap();
        assert_eq!(host.paths().len(), 2);
        fs.remove(&mut mem, "/f").unwrap();
        assert!(host.paths().is_empty());
        assert!(!fs.exists("/f"));
    }

    #[test]
    fn sparse_write_beyond_end() {
        let (_host, mut fs, mut mem) = setup();
        fs.create("/sparse").unwrap();
        fs.write(&mut mem, "/sparse", 10, b"tail").unwrap();
        let out = fs.read(&mut mem, "/sparse", 0, 14).unwrap();
        assert_eq!(&out[..10], &[0u8; 10]);
        assert_eq!(&out[10..], b"tail");
    }
}
