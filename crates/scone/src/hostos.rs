//! The untrusted host operating system.
//!
//! Everything in this module lives *outside* the enclave trust boundary: it
//! sees only ciphertext for shielded files and can misbehave arbitrarily.
//! Tests use the adversarial hooks ([`MemHost::corrupt_file`],
//! [`MemHost::rollback_file`]) to verify that the shields detect tampering.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A system call request crossing the enclave boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Syscall {
    /// Opens `path`, creating it if `create` is set; returns a descriptor.
    Open {
        /// Host path.
        path: String,
        /// Create the file if missing.
        create: bool,
    },
    /// Reads up to `len` bytes from `fd` at `offset`.
    Pread {
        /// Descriptor from [`Syscall::Open`].
        fd: u64,
        /// Byte offset.
        offset: u64,
        /// Maximum bytes to return.
        len: usize,
    },
    /// Writes `data` to `fd` at `offset`.
    Pwrite {
        /// Descriptor from [`Syscall::Open`].
        fd: u64,
        /// Byte offset.
        offset: u64,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// Truncates `fd` to `len` bytes.
    Ftruncate {
        /// Descriptor from [`Syscall::Open`].
        fd: u64,
        /// New length.
        len: u64,
    },
    /// Closes `fd`.
    Close {
        /// Descriptor to close.
        fd: u64,
    },
    /// Removes `path`.
    Unlink {
        /// Host path.
        path: String,
    },
    /// Returns the length of `fd`'s file.
    Fstat {
        /// Descriptor from [`Syscall::Open`].
        fd: u64,
    },
}

impl Syscall {
    /// The syscall's kind name, used as a telemetry label
    /// (`securecloud_scone_syscall_cycles{kind="pread",...}`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Syscall::Open { .. } => "open",
            Syscall::Pread { .. } => "pread",
            Syscall::Pwrite { .. } => "pwrite",
            Syscall::Ftruncate { .. } => "ftruncate",
            Syscall::Close { .. } => "close",
            Syscall::Unlink { .. } => "unlink",
            Syscall::Fstat { .. } => "fstat",
        }
    }
}

/// Result of a host system call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyscallRet {
    /// Open succeeded with a descriptor.
    Fd(u64),
    /// Read returned these bytes.
    Data(Vec<u8>),
    /// Write/truncate/close/unlink succeeded; writes report a byte count.
    Done(u64),
    /// Stat result: file length.
    Len(u64),
    /// The call failed.
    Error(String),
}

/// The untrusted host interface the SCONE runtime issues syscalls against.
pub trait HostOs: Send + Sync {
    /// Executes one raw system call.
    fn execute(&self, call: &Syscall) -> SyscallRet;
}

impl<H: HostOs + ?Sized> HostOs for Arc<H> {
    fn execute(&self, call: &Syscall) -> SyscallRet {
        (**self).execute(call)
    }
}

type FileRef = Arc<Mutex<Vec<u8>>>;

#[derive(Debug, Default)]
struct HostState {
    files: HashMap<String, FileRef>,
    fds: HashMap<u64, (String, FileRef)>,
    // Snapshots for the rollback attack hook.
    snapshots: HashMap<String, Vec<u8>>,
}

/// An in-memory host OS with adversarial test hooks.
#[derive(Default)]
pub struct MemHost {
    state: Mutex<HostState>,
    next_fd: AtomicU64,
    calls: AtomicU64,
}

impl fmt::Debug for MemHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemHost")
            .field("calls", &self.calls.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl MemHost {
    /// Creates an empty host.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total syscalls executed (for tests and benchmarks).
    #[must_use]
    pub fn call_count(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Returns the raw (encrypted, if shielded) bytes of `path`.
    #[must_use]
    pub fn raw_file(&self, path: &str) -> Option<Vec<u8>> {
        let state = self.state.lock();
        state.files.get(path).map(|f| f.lock().clone())
    }

    /// Lists all stored paths.
    #[must_use]
    pub fn paths(&self) -> Vec<String> {
        let state = self.state.lock();
        let mut paths: Vec<String> = state.files.keys().cloned().collect();
        paths.sort();
        paths
    }

    /// Adversarial hook: flips a byte of `path` at `offset`.
    pub fn corrupt_file(&self, path: &str, offset: usize) {
        let state = self.state.lock();
        if let Some(file) = state.files.get(path) {
            let mut bytes = file.lock();
            if offset < bytes.len() {
                bytes[offset] ^= 0xff;
            }
        }
    }

    /// Adversarial hook: snapshots the current content of `path`.
    pub fn snapshot_file(&self, path: &str) {
        let mut state = self.state.lock();
        let content = state.files.get(path).map(|f| f.lock().clone());
        if let Some(content) = content {
            state.snapshots.insert(path.to_string(), content);
        }
    }

    /// Adversarial hook: restores `path` to its snapshot (a rollback attack).
    pub fn rollback_file(&self, path: &str) {
        let state = self.state.lock();
        if let Some(old) = state.snapshots.get(path).cloned() {
            if let Some(file) = state.files.get(path) {
                *file.lock() = old;
            }
        }
    }
}

impl HostOs for MemHost {
    fn execute(&self, call: &Syscall) -> SyscallRet {
        self.calls.fetch_add(1, Ordering::Relaxed);
        match call {
            Syscall::Open { path, create } => {
                let mut state = self.state.lock();
                let file = match state.files.get(path) {
                    Some(f) => f.clone(),
                    None if *create => {
                        let f = Arc::new(Mutex::new(Vec::new()));
                        state.files.insert(path.clone(), f.clone());
                        f
                    }
                    None => return SyscallRet::Error(format!("no such file: {path}")),
                };
                let fd = self.next_fd.fetch_add(1, Ordering::Relaxed) + 3;
                state.fds.insert(fd, (path.clone(), file));
                SyscallRet::Fd(fd)
            }
            Syscall::Pread { fd, offset, len } => {
                let state = self.state.lock();
                let Some((_, file)) = state.fds.get(fd) else {
                    return SyscallRet::Error(format!("bad fd {fd}"));
                };
                let bytes = file.lock();
                let start = (*offset as usize).min(bytes.len());
                let end = (start + len).min(bytes.len());
                SyscallRet::Data(bytes[start..end].to_vec())
            }
            Syscall::Pwrite { fd, offset, data } => {
                let state = self.state.lock();
                let Some((_, file)) = state.fds.get(fd) else {
                    return SyscallRet::Error(format!("bad fd {fd}"));
                };
                let mut bytes = file.lock();
                let end = *offset as usize + data.len();
                if bytes.len() < end {
                    bytes.resize(end, 0);
                }
                bytes[*offset as usize..end].copy_from_slice(data);
                SyscallRet::Done(data.len() as u64)
            }
            Syscall::Ftruncate { fd, len } => {
                let state = self.state.lock();
                let Some((_, file)) = state.fds.get(fd) else {
                    return SyscallRet::Error(format!("bad fd {fd}"));
                };
                file.lock().resize(*len as usize, 0);
                SyscallRet::Done(0)
            }
            Syscall::Close { fd } => {
                let mut state = self.state.lock();
                if state.fds.remove(fd).is_none() {
                    return SyscallRet::Error(format!("bad fd {fd}"));
                }
                SyscallRet::Done(0)
            }
            Syscall::Unlink { path } => {
                let mut state = self.state.lock();
                if state.files.remove(path).is_none() {
                    return SyscallRet::Error(format!("no such file: {path}"));
                }
                SyscallRet::Done(0)
            }
            Syscall::Fstat { fd } => {
                let state = self.state.lock();
                let Some((_, file)) = state.fds.get(fd) else {
                    return SyscallRet::Error(format!("bad fd {fd}"));
                };
                let len = file.lock().len() as u64;
                SyscallRet::Len(len)
            }
        }
    }
}

/// A [`HostOs`] decorator that fails syscalls on command of a
/// [`FaultInjector`](securecloud_faults::FaultInjector).
///
/// The shielded runtime sits above this, so injected failures exercise the
/// shields' error paths exactly as a flaky or malicious host would: the
/// failure surfaces as [`SyscallRet::Error`] and the runtime converts it
/// into a [`crate::SconeError::HostViolation`].
pub struct FaultyHost<H: HostOs> {
    inner: H,
    injector: Arc<securecloud_faults::FaultInjector>,
}

impl<H: HostOs> FaultyHost<H> {
    /// Wraps `inner`, consulting `injector` before every syscall.
    pub fn new(inner: H, injector: Arc<securecloud_faults::FaultInjector>) -> Self {
        FaultyHost { inner, injector }
    }

    /// The wrapped host.
    pub fn inner(&self) -> &H {
        &self.inner
    }
}

impl<H: HostOs> fmt::Debug for FaultyHost<H> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyHost").finish_non_exhaustive()
    }
}

impl<H: HostOs> HostOs for FaultyHost<H> {
    fn execute(&self, call: &Syscall) -> SyscallRet {
        if self.injector.syscall_should_fail() {
            return SyscallRet::Error("injected host fault".into());
        }
        self.inner.execute(call)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_write_read_roundtrip() {
        let host = MemHost::new();
        let SyscallRet::Fd(fd) = host.execute(&Syscall::Open {
            path: "/data".into(),
            create: true,
        }) else {
            panic!("open failed");
        };
        host.execute(&Syscall::Pwrite {
            fd,
            offset: 0,
            data: b"hello".to_vec(),
        });
        assert_eq!(
            host.execute(&Syscall::Pread {
                fd,
                offset: 1,
                len: 3
            }),
            SyscallRet::Data(b"ell".to_vec())
        );
        assert_eq!(host.execute(&Syscall::Fstat { fd }), SyscallRet::Len(5));
        assert_eq!(host.execute(&Syscall::Close { fd }), SyscallRet::Done(0));
        assert!(matches!(
            host.execute(&Syscall::Close { fd }),
            SyscallRet::Error(_)
        ));
    }

    #[test]
    fn open_missing_without_create_fails() {
        let host = MemHost::new();
        assert!(matches!(
            host.execute(&Syscall::Open {
                path: "/missing".into(),
                create: false
            }),
            SyscallRet::Error(_)
        ));
    }

    #[test]
    fn sparse_write_zero_fills() {
        let host = MemHost::new();
        let SyscallRet::Fd(fd) = host.execute(&Syscall::Open {
            path: "/sparse".into(),
            create: true,
        }) else {
            panic!()
        };
        host.execute(&Syscall::Pwrite {
            fd,
            offset: 4,
            data: b"x".to_vec(),
        });
        assert_eq!(
            host.execute(&Syscall::Pread {
                fd,
                offset: 0,
                len: 5
            }),
            SyscallRet::Data(vec![0, 0, 0, 0, b'x'])
        );
    }

    #[test]
    fn corrupt_and_rollback_hooks() {
        let host = MemHost::new();
        let SyscallRet::Fd(fd) = host.execute(&Syscall::Open {
            path: "/f".into(),
            create: true,
        }) else {
            panic!()
        };
        host.execute(&Syscall::Pwrite {
            fd,
            offset: 0,
            data: b"v1".to_vec(),
        });
        host.snapshot_file("/f");
        host.execute(&Syscall::Pwrite {
            fd,
            offset: 0,
            data: b"v2".to_vec(),
        });
        assert_eq!(host.raw_file("/f").unwrap(), b"v2");
        host.rollback_file("/f");
        assert_eq!(host.raw_file("/f").unwrap(), b"v1");
        host.corrupt_file("/f", 0);
        assert_ne!(host.raw_file("/f").unwrap(), b"v1");
    }

    #[test]
    fn unlink_removes() {
        let host = MemHost::new();
        host.execute(&Syscall::Open {
            path: "/f".into(),
            create: true,
        });
        assert_eq!(host.paths(), vec!["/f".to_string()]);
        host.execute(&Syscall::Unlink { path: "/f".into() });
        assert!(host.paths().is_empty());
        assert!(matches!(
            host.execute(&Syscall::Unlink { path: "/f".into() }),
            SyscallRet::Error(_)
        ));
    }

    #[test]
    fn call_count_tracks() {
        let host = MemHost::new();
        assert_eq!(host.call_count(), 0);
        host.execute(&Syscall::Open {
            path: "/f".into(),
            create: true,
        });
        host.execute(&Syscall::Unlink { path: "/f".into() });
        assert_eq!(host.call_count(), 2);
    }

    #[test]
    fn faulty_host_injects_failures() {
        use securecloud_faults::{FaultInjector, FaultKind, FaultPlan};
        let plan = FaultPlan::new().at(0, FaultKind::SyscallFail { count: 1 });
        let injector = Arc::new(FaultInjector::with_plan(3, plan));
        injector.advance_to(0);
        let host = FaultyHost::new(MemHost::new(), injector);
        // First call eats the armed failure; the wrapped host never sees it.
        assert!(matches!(
            host.execute(&Syscall::Open {
                path: "/f".into(),
                create: true,
            }),
            SyscallRet::Error(_)
        ));
        assert_eq!(host.inner().call_count(), 0);
        // Subsequent calls pass through.
        assert!(matches!(
            host.execute(&Syscall::Open {
                path: "/f".into(),
                create: true,
            }),
            SyscallRet::Fd(_)
        ));
    }
}
