//! Property tests for the switchless ring runtime: a seeded workload
//! driven through the in-enclave executor over the shared-memory rings
//! produces byte-identical host state and read results to the synchronous
//! transition-per-call shield, at every ring depth — and repeat runs at a
//! fixed depth are cycle- and telemetry-identical (the determinism
//! contract behind `repro --jobs N`).

use proptest::prelude::*;
use securecloud_scone::executor::{ExecStats, Executor};
use securecloud_scone::hostos::{MemHost, Syscall, SyscallRet};
use securecloud_scone::syscall::{AsyncShield, SyncShield};
use securecloud_sgx::costs::{CostModel, MemoryGeometry};
use securecloud_sgx::mem::MemorySim;
use securecloud_telemetry::export::prometheus_text;
use securecloud_telemetry::Telemetry;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// One file operation; each worker replays its own list against its own
/// host file, so the final host bytes are interleaving-independent.
#[derive(Debug, Clone)]
enum Op {
    Write(u16, Vec<u8>),
    Read(u16, u16),
    Truncate(u16),
    Stat,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..2_000, prop::collection::vec(any::<u8>(), 1..200))
            .prop_map(|(off, data)| Op::Write(off, data)),
        (0u16..3_000, 0u16..500).prop_map(|(off, len)| Op::Read(off, len)),
        (0u16..2_500).prop_map(Op::Truncate),
        Just(Op::Stat),
    ]
}

fn arb_workload() -> impl Strategy<Value = Vec<Vec<Op>>> {
    prop::collection::vec(prop::collection::vec(arb_op(), 1..12), 1..4)
}

fn path(worker: usize) -> String {
    format!("/prop/w{worker}")
}

fn mem() -> MemorySim {
    MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::sgx_v1())
}

fn op_syscall(fd: u64, op: &Op) -> Syscall {
    match op {
        Op::Write(off, data) => Syscall::Pwrite {
            fd,
            offset: u64::from(*off),
            data: data.clone(),
        },
        Op::Read(off, len) => Syscall::Pread {
            fd,
            offset: u64::from(*off),
            len: *len as usize,
        },
        Op::Truncate(len) => Syscall::Ftruncate {
            fd,
            len: u64::from(*len),
        },
        Op::Stat => Syscall::Fstat { fd },
    }
}

/// Runs the workload through the synchronous shield, worker by worker.
/// Returns (per-worker syscall results, host, cycles).
fn run_sync(workload: &[Vec<Op>]) -> (Vec<Vec<SyscallRet>>, Arc<MemHost>, u64) {
    let host = Arc::new(MemHost::new());
    let shield = SyncShield::new(host.clone());
    let mut mem = mem();
    let mut results = Vec::new();
    for (worker, ops) in workload.iter().enumerate() {
        let ret = shield
            .call(
                &mut mem,
                &Syscall::Open {
                    path: path(worker),
                    create: true,
                },
            )
            .expect("open");
        let SyscallRet::Fd(fd) = ret else {
            panic!("open returned {ret:?}")
        };
        let mut worker_results = Vec::new();
        for op in ops {
            worker_results.push(shield.call(&mut mem, &op_syscall(fd, op)).expect("op"));
        }
        shield
            .call(&mut mem, &Syscall::Close { fd })
            .expect("close");
        results.push(worker_results);
    }
    (results, host, mem.cycles())
}

/// Runs the workload as one cooperative task per worker over the ring
/// plane. Returns (per-worker results, host, cycles, stats, telemetry).
fn run_rings(
    workload: &[Vec<Op>],
    depth: usize,
) -> (
    Vec<Vec<SyscallRet>>,
    Arc<MemHost>,
    u64,
    ExecStats,
    Arc<Telemetry>,
) {
    let host = Arc::new(MemHost::new());
    let shield = AsyncShield::switchless(host.clone(), depth);
    let mut exec = Executor::new(shield);
    let telemetry = Arc::new(Telemetry::new());
    exec.set_telemetry(telemetry.clone());
    let results: Rc<RefCell<Vec<Vec<SyscallRet>>>> =
        Rc::new(RefCell::new(vec![Vec::new(); workload.len()]));
    for (worker, ops) in workload.iter().enumerate() {
        let handle = exec.handle();
        let ops = ops.clone();
        let results = Rc::clone(&results);
        exec.spawn(async move {
            let ret = handle
                .syscall(Syscall::Open {
                    path: path(worker),
                    create: true,
                })
                .await
                .expect("open");
            let SyscallRet::Fd(fd) = ret else {
                panic!("open returned {ret:?}")
            };
            for op in &ops {
                let ret = handle.syscall(op_syscall(fd, op)).await.expect("op");
                results.borrow_mut()[worker].push(ret);
            }
            handle.syscall(Syscall::Close { fd }).await.expect("close");
        });
    }
    let mut mem = mem();
    let stats = exec.run(&mut mem).expect("executor run");
    let cycles = mem.cycles();
    let results = Rc::try_unwrap(results)
        .expect("tasks completed")
        .into_inner();
    (results, host, cycles, stats, telemetry)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The ring runtime is observably identical to the sync shield: same
    /// per-op results and same final host bytes, at every ring depth.
    #[test]
    fn ring_runtime_matches_sync_shield_at_every_depth(workload in arb_workload()) {
        let (sync_results, sync_host, _) = run_sync(&workload);
        for depth in [1usize, 8, 64] {
            let (ring_results, ring_host, _, stats, _) = run_rings(&workload, depth);
            prop_assert_eq!(&ring_results, &sync_results, "depth {}", depth);
            let issued: usize = workload.iter().map(|ops| ops.len() + 2).sum();
            prop_assert_eq!(stats.syscalls, issued as u64);
            for worker in 0..workload.len() {
                prop_assert_eq!(
                    sync_host.raw_file(&path(worker)),
                    ring_host.raw_file(&path(worker)),
                    "depth {}, worker {}", depth, worker
                );
            }
        }
    }

    /// At a fixed depth, repeat runs are bit-identical in every observable:
    /// results, cycles, executor stats, and the telemetry registry.
    #[test]
    fn ring_runtime_replays_are_cycle_and_telemetry_identical(workload in arb_workload()) {
        let (r1, _, cycles1, stats1, t1) = run_rings(&workload, 8);
        let (r2, _, cycles2, stats2, t2) = run_rings(&workload, 8);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(cycles1, cycles2);
        prop_assert_eq!(stats1, stats2);
        prop_assert_eq!(
            prometheus_text(t1.registry()),
            prometheus_text(t2.registry())
        );
    }
}
