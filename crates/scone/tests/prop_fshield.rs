//! Model-based property tests for the file-system shield: an arbitrary
//! sequence of create/write/read/remove operations behaves exactly like a
//! plain in-memory file map — while the host only ever sees ciphertext.

use proptest::prelude::*;
use securecloud_scone::fshield::{FsProtection, ShieldedFs};
use securecloud_scone::hostos::MemHost;
use securecloud_scone::syscall::SyncShield;
use securecloud_sgx::costs::{CostModel, MemoryGeometry};
use securecloud_sgx::mem::MemorySim;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum FsOp {
    Create(u8),
    Write(u8, u16, Vec<u8>),
    Read(u8, u16, u16),
    Remove(u8),
}

fn arb_op() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        (0u8..4).prop_map(FsOp::Create),
        (
            0u8..4,
            0u16..9000,
            prop::collection::vec(any::<u8>(), 1..600)
        )
            .prop_map(|(f, off, data)| FsOp::Write(f, off, data)),
        (0u8..4, 0u16..10_000, 0u16..2_000).prop_map(|(f, off, len)| FsOp::Read(f, off, len)),
        (0u8..4).prop_map(FsOp::Remove),
    ]
}

fn path(f: u8) -> String {
    format!("/f{f}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shielded_fs_matches_plain_model(ops in prop::collection::vec(arb_op(), 0..40)) {
        let host = Arc::new(MemHost::new());
        let mut fs = ShieldedFs::mount(SyncShield::new(host.clone()), FsProtection::new());
        let mut mem = MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::zero());
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();

        for op in &ops {
            match op {
                FsOp::Create(f) => {
                    let p = path(*f);
                    let expect_err = model.contains_key(&p);
                    let result = fs.create(&p);
                    prop_assert_eq!(result.is_err(), expect_err);
                    if !expect_err {
                        model.insert(p, Vec::new());
                    }
                }
                FsOp::Write(f, off, data) => {
                    let p = path(*f);
                    let result = fs.write(&mut mem, &p, u64::from(*off), data);
                    match model.get_mut(&p) {
                        None => prop_assert!(result.is_err()),
                        Some(content) => {
                            prop_assert!(result.is_ok());
                            let end = *off as usize + data.len();
                            if content.len() < end {
                                content.resize(end, 0);
                            }
                            content[*off as usize..end].copy_from_slice(data);
                        }
                    }
                }
                FsOp::Read(f, off, len) => {
                    let p = path(*f);
                    let result = fs.read(&mut mem, &p, u64::from(*off), *len as usize);
                    match model.get(&p) {
                        None => prop_assert!(result.is_err()),
                        Some(content) => {
                            let start = (*off as usize).min(content.len());
                            let end = (start + *len as usize).min(content.len());
                            prop_assert_eq!(result.unwrap(), &content[start..end]);
                        }
                    }
                }
                FsOp::Remove(f) => {
                    let p = path(*f);
                    let expect_err = !model.contains_key(&p);
                    let result = fs.remove(&mut mem, &p);
                    prop_assert_eq!(result.is_err(), expect_err);
                    model.remove(&p);
                }
            }
        }

        // Host-side ciphertext never contains a 16-byte plaintext window
        // of any live file (spot-check the longest file).
        if let Some((_, content)) = model.iter().max_by_key(|(_, c)| c.len()) {
            if content.len() >= 16 {
                let window = &content[..16];
                // Skip degenerate all-equal windows (e.g. zero padding),
                // which can legitimately collide with ciphertext bytes.
                if window.iter().any(|&b| b != window[0]) {
                    for p in host.paths() {
                        let raw = host.raw_file(&p).unwrap();
                        prop_assert!(
                            !raw.windows(16).any(|w| w == window),
                            "plaintext window leaked into {p}"
                        );
                    }
                }
            }
        }
    }

    /// Remount with the protection metadata preserves every file.
    #[test]
    fn remount_preserves_state(
        files in prop::collection::btree_map("f[0-9]", prop::collection::vec(any::<u8>(), 0..5000), 0..4),
    ) {
        let host = Arc::new(MemHost::new());
        let mut fs = ShieldedFs::mount(SyncShield::new(host.clone()), FsProtection::new());
        let mut mem = MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::zero());
        for (name, content) in &files {
            let p = format!("/{name}");
            fs.create(&p).unwrap();
            fs.write(&mut mem, &p, 0, content).unwrap();
        }
        let protection = fs.into_protection();
        let fs2 = ShieldedFs::mount(SyncShield::new(host), protection);
        for (name, content) in &files {
            let p = format!("/{name}");
            prop_assert_eq!(&fs2.read(&mut mem, &p, 0, content.len() + 10).unwrap(), content);
        }
    }
}
