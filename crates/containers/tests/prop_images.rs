//! Property tests for image layering semantics and the secure build
//! pipeline's confidentiality/integrity invariants.

use proptest::prelude::*;
use securecloud_containers::build::SecureImageBuilder;
use securecloud_containers::image::{Image, Layer};
use securecloud_containers::registry::Registry;
use securecloud_scone::fshield::FsProtection;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum LayerOp {
    Add(String, Vec<u8>),
    Whiteout(String),
}

fn arb_path() -> impl Strategy<Value = String> {
    "[a-d]".prop_map(|s| format!("/{s}"))
}

fn arb_layer() -> impl Strategy<Value = Vec<LayerOp>> {
    prop::collection::vec(
        prop_oneof![
            (arb_path(), prop::collection::vec(any::<u8>(), 0..32))
                .prop_map(|(p, c)| LayerOp::Add(p, c)),
            arb_path().prop_map(LayerOp::Whiteout),
        ],
        0..5,
    )
}

proptest! {
    /// Image flattening equals a sequential map interpretation of the
    /// layer operations.
    #[test]
    fn flatten_matches_model(layers in prop::collection::vec(arb_layer(), 0..6)) {
        let mut image = Image::new("svc", "v1", b"bin");
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        for ops in &layers {
            let mut layer = Layer::new();
            // Model semantics: all adds apply, then all whiteouts (matches
            // Layer's structure of files + whiteouts).
            for op in ops {
                if let LayerOp::Add(path, content) = op {
                    layer = layer.with_file(path, content);
                }
            }
            for op in ops {
                if let LayerOp::Whiteout(path) = op {
                    layer = layer.with_whiteout(path);
                }
            }
            for op in ops {
                if let LayerOp::Add(path, content) = op {
                    model.insert(path.clone(), content.clone());
                }
            }
            for op in ops {
                if let LayerOp::Whiteout(path) = op {
                    model.remove(path);
                }
            }
            image = image.with_layer(layer);
        }
        prop_assert_eq!(image.flatten(), model);
    }

    /// Content addressing: equal images share an id; any content change
    /// changes it; the registry returns exactly what was pushed.
    #[test]
    fn content_addressing(
        name in "[a-z]{1,8}",
        content in prop::collection::vec(any::<u8>(), 1..64),
        flip in 0usize..64,
    ) {
        let a = Image::new(&name, "v1", b"bin")
            .with_layer(Layer::new().with_file("/f", &content));
        let b = Image::new(&name, "v1", b"bin")
            .with_layer(Layer::new().with_file("/f", &content));
        prop_assert_eq!(a.id(), b.id());
        let mut mutated = content.clone();
        mutated[flip % content.len()] ^= 1;
        let c = Image::new(&name, "v1", b"bin")
            .with_layer(Layer::new().with_file("/f", &mutated));
        prop_assert_ne!(a.id(), c.id());

        let registry = Registry::new();
        let id = registry.push(a.clone());
        prop_assert_eq!(registry.pull(id).unwrap(), a);
    }

    /// The secure build never leaks protected plaintext into the image,
    /// and the SCF always pins the exact protection file it ships.
    #[test]
    fn secure_build_confidentiality(
        secret in prop::collection::vec(any::<u8>(), 24..200),
    ) {
        prop_assume!(secret.windows(2).any(|w| w[0] != w[1]));
        let built = SecureImageBuilder::new("svc", "v1", b"binary")
            .protect_file("/data/secret", &secret)
            .build()
            .unwrap();
        let window = &secret[..16];
        if window.iter().any(|&b| b != window[0]) {
            for (path, content) in built.image.flatten() {
                prop_assert!(
                    !content.windows(16).any(|w| w == window),
                    "secret window leaked into {path}"
                );
            }
        }
        let sealed = built.image.flatten().remove("/scone/fs.protection").unwrap();
        prop_assert_eq!(FsProtection::digest(&sealed), built.scf.fs_protection_digest);
        // The pinned key actually opens it and describes the secret file.
        let protection =
            FsProtection::open_sealed(&built.scf.fs_protection_key, &sealed).unwrap();
        prop_assert_eq!(
            protection.files.get("/data/secret").map(|m| m.len),
            Some(secret.len() as u64)
        );
    }
}
