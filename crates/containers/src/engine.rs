//! The container engine: lifecycle of plain and secure containers.
//!
//! From the engine's perspective, secure containers are indistinguishable
//! from regular containers (§V-A): both are materialised from registry
//! images onto a per-container untrusted host file system. A secure
//! container additionally launches an enclave from the image entrypoint and
//! runs the SCONE bootstrap (attested SCF provisioning + shielded FS
//! mount) before entering the `Running` state.

use crate::build::{BuiltImage, PROTECTION_PATH};
use crate::image::ImageId;
use crate::registry::Registry;
use crate::ContainerError;
use parking_lot::RwLock;
use securecloud_crypto::channel::memory_pair;
use securecloud_scone::hostos::{HostOs, MemHost, Syscall, SyscallRet};
use securecloud_scone::runtime::SconeRuntime;
use securecloud_scone::scf::ConfigService;
use securecloud_sgx::enclave::{EnclaveConfig, Platform};
use std::collections::HashMap;
use std::sync::Arc;

/// Container identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContainerId(pub u64);

/// Lifecycle state of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerState {
    /// Image materialised, not started.
    Created,
    /// Running (for secure containers: enclave provisioned).
    Running,
    /// Stopped.
    Stopped,
}

/// Resource usage counters, the basis for the paper's "accounting and
/// billing" and for GenPack's monitoring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Simulated CPU cycles consumed (secure containers only).
    pub cpu_cycles: u64,
    /// Bytes of image content materialised on the host.
    pub image_bytes: u64,
    /// Host syscalls served.
    pub host_calls: u64,
}

/// A container managed by the [`Engine`].
#[derive(Debug)]
pub struct Container {
    id: ContainerId,
    image: ImageId,
    state: ContainerState,
    host: Arc<MemHost>,
    image_bytes: u64,
    runtime: Option<SconeRuntime>,
}

impl Container {
    /// The container's id.
    #[must_use]
    pub fn id(&self) -> ContainerId {
        self.id
    }

    /// The image this container was created from.
    #[must_use]
    pub fn image(&self) -> ImageId {
        self.image
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn state(&self) -> ContainerState {
        self.state
    }

    /// Whether this container hosts an enclave.
    #[must_use]
    pub fn is_secure(&self) -> bool {
        self.runtime.is_some()
    }

    /// The container's untrusted host file system.
    #[must_use]
    pub fn host(&self) -> &Arc<MemHost> {
        &self.host
    }

    /// The SCONE runtime, for secure containers in the `Running` state.
    pub fn runtime_mut(&mut self) -> Option<&mut SconeRuntime> {
        self.runtime.as_mut()
    }

    /// Resource usage snapshot.
    #[must_use]
    pub fn usage(&mut self) -> ResourceUsage {
        ResourceUsage {
            cpu_cycles: self
                .runtime
                .as_mut()
                .map_or(0, |r| r.enclave_mut().memory().cycles()),
            image_bytes: self.image_bytes,
            host_calls: self.host.call_count(),
        }
    }
}

/// The engine: registry access, platform, configuration service, and the
/// set of managed containers.
#[derive(Debug)]
pub struct Engine {
    registry: Arc<Registry>,
    platform: Platform,
    config_service: Arc<RwLock<ConfigService>>,
    containers: HashMap<ContainerId, Container>,
    next_id: u64,
}

impl Engine {
    /// Creates an engine over `registry` on `platform`, provisioning SCFs
    /// from `config_service`.
    #[must_use]
    pub fn new(
        registry: Arc<Registry>,
        platform: Platform,
        config_service: Arc<RwLock<ConfigService>>,
    ) -> Self {
        Engine {
            registry,
            platform,
            config_service,
            containers: HashMap::new(),
            next_id: 1,
        }
    }

    /// Publishes a built secure image: pushes it to the registry, registers
    /// its SCF and allows its measurement at the config service. Returns
    /// the image id. (In production, push and SCF registration happen from
    /// the trusted build environment; this helper keeps tests honest about
    /// *what* must be registered where.)
    pub fn deploy(&self, built: BuiltImage) -> ImageId {
        let mut service = self.config_service.write();
        service
            .attestation_mut()
            .allow_measurement(built.measurement);
        service.register(built.measurement, built.scf);
        self.registry.push(built.image)
    }

    /// Creates and starts a container from `image_id`.
    ///
    /// # Errors
    ///
    /// * [`ContainerError::ImageNotFound`] — unknown image,
    /// * [`ContainerError::Start`] — the secure bootstrap failed (bad
    ///   attestation, tampered protection file, missing SCF).
    pub fn run(&mut self, image_id: ImageId) -> Result<ContainerId, ContainerError> {
        let image = self.registry.pull(image_id)?;
        let host = Arc::new(MemHost::new());
        let flat = image.flatten();
        let mut image_bytes = 0u64;
        for (path, content) in &flat {
            image_bytes += content.len() as u64;
            let SyscallRet::Fd(fd) = host.execute(&Syscall::Open {
                path: path.clone(),
                create: true,
            }) else {
                return Err(ContainerError::Start(format!("cannot materialise {path}")));
            };
            host.execute(&Syscall::Pwrite {
                fd,
                offset: 0,
                data: content.clone(),
            });
            host.execute(&Syscall::Close { fd });
        }

        let runtime = if image.secure {
            let sealed_protection = flat.get(PROTECTION_PATH).ok_or_else(|| {
                ContainerError::Start("secure image lacks FS protection file".into())
            })?;
            let enclave = self
                .platform
                .launch(EnclaveConfig::new(&image.reference(), &image.entrypoint))
                .map_err(|e| ContainerError::Start(e.to_string()))?;
            let (client_t, server_t) = memory_pair();
            let service = Arc::clone(&self.config_service);
            let service_key = service.read().public_key();
            let server = std::thread::spawn(move || service.read().serve_one(server_t));
            let runtime = SconeRuntime::bootstrap(
                enclave,
                client_t,
                service_key,
                host.clone() as Arc<dyn HostOs>,
                sealed_protection,
            );
            let served = server.join().expect("config service thread");
            match runtime {
                Ok(rt) => {
                    served.map_err(|e| ContainerError::Start(e.to_string()))?;
                    Some(rt)
                }
                Err(e) => return Err(ContainerError::Start(e.to_string())),
            }
        } else {
            None
        };

        let id = ContainerId(self.next_id);
        self.next_id += 1;
        self.containers.insert(
            id,
            Container {
                id,
                image: image_id,
                state: ContainerState::Running,
                host,
                image_bytes,
                runtime,
            },
        );
        Ok(id)
    }

    /// Creates and starts a container by `name:tag`.
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn run_by_reference(&mut self, reference: &str) -> Result<ContainerId, ContainerError> {
        let id = self.registry.resolve(reference)?;
        self.run(id)
    }

    /// Stops a container. For secure containers the enclave is destroyed.
    ///
    /// # Errors
    ///
    /// [`ContainerError::ContainerNotFound`] for unknown ids.
    pub fn stop(&mut self, id: ContainerId) -> Result<(), ContainerError> {
        let container = self
            .containers
            .get_mut(&id)
            .ok_or(ContainerError::ContainerNotFound(id))?;
        if let Some(runtime) = &mut container.runtime {
            runtime.enclave_mut().destroy();
        }
        container.state = ContainerState::Stopped;
        Ok(())
    }

    /// Access to a container.
    #[must_use]
    pub fn container(&self, id: ContainerId) -> Option<&Container> {
        self.containers.get(&id)
    }

    /// Mutable access to a container.
    pub fn container_mut(&mut self, id: ContainerId) -> Option<&mut Container> {
        self.containers.get_mut(&id)
    }

    /// Ids of all managed containers.
    #[must_use]
    pub fn container_ids(&self) -> Vec<ContainerId> {
        let mut ids: Vec<_> = self.containers.keys().copied().collect();
        ids.sort_by_key(|id| id.0);
        ids
    }

    /// The engine's platform (for attestation wiring in tests).
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::SecureImageBuilder;
    use crate::image::{Image, Layer};
    use securecloud_sgx::attest::AttestationService;

    fn engine() -> Engine {
        let platform = Platform::new();
        let mut attestation = AttestationService::new();
        attestation.register_platform(&platform);
        let config_service = Arc::new(RwLock::new(ConfigService::new(attestation)));
        Engine::new(Arc::new(Registry::new()), platform, config_service)
    }

    fn built_image() -> BuiltImage {
        SecureImageBuilder::new("meter", "v1", b"meter service binary")
            .protect_file("/data/keys", b"secret key material")
            .plain_file("/etc/motd", b"hello")
            .arg("--window=60")
            .env("REGION", "eu")
            .build()
            .unwrap()
    }

    #[test]
    fn secure_container_end_to_end() {
        let mut engine = engine();
        let image_id = engine.deploy(built_image());
        let cid = engine.run(image_id).unwrap();
        let container = engine.container_mut(cid).unwrap();
        assert!(container.is_secure());
        assert_eq!(container.state(), ContainerState::Running);
        let runtime = container.runtime_mut().unwrap();
        assert_eq!(runtime.args(), ["--window=60"]);
        assert_eq!(runtime.env("REGION"), Some("eu"));
        // The protected file is readable inside, ciphertext outside.
        let content = runtime.read_file("/data/keys", 0, 100).unwrap();
        assert_eq!(content, b"secret key material");
        let usage = container.usage();
        assert!(usage.cpu_cycles > 0);
        assert!(usage.image_bytes > 0);
    }

    #[test]
    fn plain_container_runs_without_enclave() {
        let mut engine = engine();
        let image =
            Image::new("plain", "v1", b"bin").with_layer(Layer::new().with_file("/app", b"code"));
        let id = engine.registry.push(image);
        let cid = engine.run(id).unwrap();
        let container = engine.container(cid).unwrap();
        assert!(!container.is_secure());
        assert_eq!(container.state(), ContainerState::Running);
        assert_eq!(container.host().raw_file("/app").unwrap(), b"code");
    }

    #[test]
    fn tampered_registry_image_fails_to_start() {
        let mut engine = engine();
        let built = built_image();
        let measurement = built.measurement;
        let scf = built.scf.clone();
        // Attacker republishes the image with a modified protection file.
        let mut image = built.image.clone();
        let mut evil_layer = Layer::new();
        evil_layer = evil_layer.with_file(PROTECTION_PATH, b"forged protection");
        image.layers.push(evil_layer);
        {
            let mut service = engine.config_service.write();
            service.attestation_mut().allow_measurement(measurement);
            service.register(measurement, scf);
        }
        let id = engine.registry.push(image);
        let err = engine.run(id);
        assert!(matches!(err, Err(ContainerError::Start(_))));
    }

    #[test]
    fn modified_binary_fails_attestation() {
        let mut engine = engine();
        let built = built_image();
        engine.deploy(built.clone());
        // Attacker swaps the entrypoint; measurement changes, SCF withheld.
        let mut evil = built.image.clone();
        evil.entrypoint = b"trojaned binary".to_vec();
        let evil_id = engine.registry.push(evil);
        assert!(matches!(engine.run(evil_id), Err(ContainerError::Start(_))));
    }

    #[test]
    fn unknown_image_and_container() {
        let mut engine = engine();
        assert!(matches!(
            engine.run(ImageId([9u8; 32])),
            Err(ContainerError::ImageNotFound(_))
        ));
        assert!(matches!(
            engine.run_by_reference("ghost:latest"),
            Err(ContainerError::ImageNotFound(_))
        ));
        assert!(matches!(
            engine.stop(ContainerId(404)),
            Err(ContainerError::ContainerNotFound(_))
        ));
    }

    #[test]
    fn stop_destroys_enclave() {
        let mut engine = engine();
        let image_id = engine.deploy(built_image());
        let cid = engine.run(image_id).unwrap();
        engine.stop(cid).unwrap();
        let container = engine.container_mut(cid).unwrap();
        assert_eq!(container.state(), ContainerState::Stopped);
        let runtime = container.runtime_mut().unwrap();
        assert!(runtime.enclave().is_destroyed());
        assert!(
            runtime.read_file("/data/keys", 0, 1).is_err(),
            "destroyed enclave must not serve shielded reads"
        );
    }

    #[test]
    fn secure_state_survives_restart_via_new_container() {
        // Persisted shielded writes travel with the host FS, and a new
        // container from the same image starts cleanly.
        let mut engine = engine();
        let image_id = engine.deploy(built_image());
        let c1 = engine.run(image_id).unwrap();
        engine.stop(c1).unwrap();
        let c2 = engine.run(image_id).unwrap();
        let container = engine.container_mut(c2).unwrap();
        let runtime = container.runtime_mut().unwrap();
        assert_eq!(
            runtime.read_file("/data/keys", 0, 100).unwrap(),
            b"secret key material"
        );
    }

    #[test]
    fn container_ids_listed_in_order() {
        let mut engine = engine();
        let image_id = engine.deploy(built_image());
        let a = engine.run(image_id).unwrap();
        let b = engine.run(image_id).unwrap();
        assert_eq!(engine.container_ids(), vec![a, b]);
    }
}
