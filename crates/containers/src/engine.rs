//! The container engine: lifecycle of plain and secure containers.
//!
//! From the engine's perspective, secure containers are indistinguishable
//! from regular containers (§V-A): both are materialised from registry
//! images onto a per-container untrusted host file system. A secure
//! container additionally launches an enclave from the image entrypoint and
//! runs the SCONE bootstrap (attested SCF provisioning + shielded FS
//! mount) before entering the `Running` state.
//!
//! The engine also **supervises** containers: an aborted container whose
//! [`RestartPolicy`] allows it is restarted on the engine's virtual clock
//! with exponential backoff plus seeded jitter. Every restart launches a
//! *fresh* enclave and re-runs the full attested bootstrap — a restarted
//! container is re-attested from scratch, never resumed. A container that
//! keeps failing past its restart budget is quarantined.

use crate::build::{BuiltImage, PROTECTION_PATH};
use crate::image::{Image, ImageId};
use crate::registry::Registry;
use crate::ContainerError;
use parking_lot::RwLock;
use securecloud_crypto::channel::memory_pair;
use securecloud_faults::{DetRng, FaultInjector};
use securecloud_scone::hostos::{FaultyHost, HostOs, MemHost, Syscall, SyscallRet};
use securecloud_scone::runtime::SconeRuntime;
use securecloud_scone::scf::ConfigService;
use securecloud_sgx::enclave::{EnclaveConfig, Platform};
use securecloud_telemetry::{OwnedSpan, Telemetry, TraceContext};
use std::collections::HashMap;
use std::sync::Arc;

/// Container identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContainerId(pub u64);

/// Lifecycle state of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerState {
    /// Image materialised, not started.
    Created,
    /// Running (for secure containers: enclave provisioned).
    Running,
    /// Stopped.
    Stopped,
}

/// When the supervisor restarts a container that terminated abnormally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartPolicy {
    /// Never restart (the default; matches the pre-supervision engine).
    #[default]
    Never,
    /// Restart after aborts (enclave faults, crashes).
    OnFailure,
    /// Restart after any abnormal termination. Administrative
    /// [`Engine::stop`] never triggers a restart under any policy.
    Always,
}

/// Supervision health, tracked alongside the lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerHealth {
    /// Alive and serving.
    Running,
    /// Terminated abnormally; a restart is scheduled on the virtual clock.
    Backoff,
    /// Not running and no restart scheduled (stopped administratively, or
    /// the policy forbids restarting).
    Failed,
    /// Exhausted its restart budget; the supervisor has given up.
    Quarantined,
}

/// Supervision parameters for one container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisionConfig {
    /// When to restart.
    pub policy: RestartPolicy,
    /// First backoff delay; doubles per restart.
    pub backoff_base_ms: u64,
    /// Upper bound on the exponential backoff.
    pub backoff_cap_ms: u64,
    /// Maximum seeded jitter added to each delay (0 disables jitter).
    pub jitter_ms: u64,
    /// Restart attempts before quarantine.
    pub max_restarts: u32,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig {
            policy: RestartPolicy::Never,
            backoff_base_ms: 100,
            backoff_cap_ms: 10_000,
            jitter_ms: 50,
            max_restarts: 5,
        }
    }
}

/// Resource usage counters, the basis for the paper's "accounting and
/// billing" and for GenPack's monitoring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Simulated CPU cycles consumed (secure containers only).
    pub cpu_cycles: u64,
    /// Bytes of image content materialised on the host.
    pub image_bytes: u64,
    /// Host syscalls served.
    pub host_calls: u64,
}

/// A container managed by the [`Engine`].
#[derive(Debug)]
pub struct Container {
    id: ContainerId,
    image: ImageId,
    state: ContainerState,
    host: Arc<MemHost>,
    image_bytes: u64,
    runtime: Option<SconeRuntime>,
    supervision: SupervisionConfig,
    health: ContainerHealth,
    restarts: u32,
    restart_due_ms: Option<u64>,
    last_fault: Option<String>,
    fault_ctx: TraceContext,
}

impl Container {
    /// The container's id.
    #[must_use]
    pub fn id(&self) -> ContainerId {
        self.id
    }

    /// The image this container was created from.
    #[must_use]
    pub fn image(&self) -> ImageId {
        self.image
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn state(&self) -> ContainerState {
        self.state
    }

    /// Whether this container hosts an enclave.
    #[must_use]
    pub fn is_secure(&self) -> bool {
        self.runtime.is_some()
    }

    /// The container's untrusted host file system.
    #[must_use]
    pub fn host(&self) -> &Arc<MemHost> {
        &self.host
    }

    /// The SCONE runtime, for secure containers in the `Running` state.
    pub fn runtime_mut(&mut self) -> Option<&mut SconeRuntime> {
        self.runtime.as_mut()
    }

    /// Supervision health.
    #[must_use]
    pub fn health(&self) -> ContainerHealth {
        self.health
    }

    /// How many times the supervisor has restarted this container.
    #[must_use]
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// Virtual time of the next scheduled restart, while in backoff.
    #[must_use]
    pub fn restart_due_ms(&self) -> Option<u64> {
        self.restart_due_ms
    }

    /// The most recent fault that took this container down.
    #[must_use]
    pub fn last_fault(&self) -> Option<&str> {
        self.last_fault.as_deref()
    }

    /// Resource usage snapshot.
    #[must_use = "usage is a snapshot; discarding it does nothing"]
    pub fn usage(&mut self) -> ResourceUsage {
        ResourceUsage {
            cpu_cycles: self
                .runtime
                .as_mut()
                .map_or(0, |r| r.enclave_mut().memory().cycles()),
            image_bytes: self.image_bytes,
            host_calls: self.host.call_count(),
        }
    }
}

/// The engine: registry access, platform, configuration service, and the
/// set of managed containers.
#[derive(Debug)]
pub struct Engine {
    registry: Arc<Registry>,
    platform: Platform,
    config_service: Arc<RwLock<ConfigService>>,
    containers: HashMap<ContainerId, Container>,
    next_id: u64,
    now_ms: u64,
    jitter_rng: DetRng,
    injector: Option<Arc<FaultInjector>>,
    telemetry: Option<Arc<Telemetry>>,
}

impl Engine {
    /// Creates an engine over `registry` on `platform`, provisioning SCFs
    /// from `config_service`.
    #[must_use]
    pub fn new(
        registry: Arc<Registry>,
        platform: Platform,
        config_service: Arc<RwLock<ConfigService>>,
    ) -> Self {
        Engine {
            registry,
            platform,
            config_service,
            containers: HashMap::new(),
            next_id: 1,
            now_ms: 0,
            jitter_rng: DetRng::new(0x5EC0_C10D),
            injector: None,
            telemetry: None,
        }
    }

    /// Attaches the shared telemetry: supervision events become trace
    /// events/spans, restart counters feed the registry, and every
    /// subsequently bootstrapped secure runtime is instrumented too. The
    /// engine publishes its virtual clock on each [`Engine::advance`].
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Current virtual time in milliseconds.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Reseeds the generator used for restart-backoff jitter.
    pub fn set_supervision_seed(&mut self, seed: u64) {
        self.jitter_rng = DetRng::new(seed);
    }

    /// Attaches a fault injector. The engine records supervision events
    /// (aborts, restarts, quarantines) into its trace, and every secure
    /// runtime bootstrapped *after* this call reaches its host through a
    /// [`FaultyHost`], so armed [`FaultKind::SyscallFail`] faults surface
    /// as shield-layer host violations.
    ///
    /// [`FaultKind::SyscallFail`]: securecloud_faults::FaultKind::SyscallFail
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.injector = Some(injector);
    }

    fn record(&self, line: String) {
        if let Some(injector) = &self.injector {
            injector.record(line);
        }
    }

    /// Publishes a built secure image: pushes it to the registry, registers
    /// its SCF and allows its measurement at the config service. Returns
    /// the image id. (In production, push and SCF registration happen from
    /// the trusted build environment; this helper keeps tests honest about
    /// *what* must be registered where.)
    pub fn deploy(&self, built: BuiltImage) -> ImageId {
        let mut service = self.config_service.write();
        service
            .attestation_mut()
            .allow_measurement(built.measurement);
        service.register(built.measurement, built.scf);
        self.registry.push(built.image)
    }

    /// Creates and starts a container from `image_id`.
    ///
    /// # Errors
    ///
    /// * [`ContainerError::ImageNotFound`] — unknown image,
    /// * [`ContainerError::Start`] — the secure bootstrap failed (bad
    ///   attestation, tampered protection file, missing SCF).
    pub fn run(&mut self, image_id: ImageId) -> Result<ContainerId, ContainerError> {
        self.run_supervised(image_id, SupervisionConfig::default())
    }

    /// Creates and starts a container from `image_id` under `supervision`.
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn run_supervised(
        &mut self,
        image_id: ImageId,
        supervision: SupervisionConfig,
    ) -> Result<ContainerId, ContainerError> {
        let image = self.registry.pull(image_id)?;
        let host = Arc::new(MemHost::new());
        let flat = image.flatten();
        let mut image_bytes = 0u64;
        for (path, content) in &flat {
            image_bytes += content.len() as u64;
            let SyscallRet::Fd(fd) = host.execute(&Syscall::Open {
                path: path.clone(),
                create: true,
            }) else {
                return Err(ContainerError::Start(format!("cannot materialise {path}")));
            };
            host.execute(&Syscall::Pwrite {
                fd,
                offset: 0,
                data: content.clone(),
            });
            host.execute(&Syscall::Close { fd });
        }

        let runtime = if image.secure {
            Some(Self::bootstrap_runtime(
                &self.platform,
                &self.config_service,
                &image,
                &host,
                self.telemetry.as_ref(),
                self.injector.as_ref(),
            )?)
        } else {
            None
        };

        let id = ContainerId(self.next_id);
        self.next_id += 1;
        self.containers.insert(
            id,
            Container {
                id,
                image: image_id,
                state: ContainerState::Running,
                host,
                image_bytes,
                runtime,
                supervision,
                health: ContainerHealth::Running,
                restarts: 0,
                restart_due_ms: None,
                last_fault: None,
                fault_ctx: TraceContext::none(),
            },
        );
        Ok(id)
    }

    /// Launches a fresh enclave from `image` and runs the full attested
    /// SCONE bootstrap against `host`. Used for the first start and for
    /// every supervised restart — re-attestation is never skipped.
    fn bootstrap_runtime(
        platform: &Platform,
        config_service: &Arc<RwLock<ConfigService>>,
        image: &Image,
        host: &Arc<MemHost>,
        telemetry: Option<&Arc<Telemetry>>,
        injector: Option<&Arc<FaultInjector>>,
    ) -> Result<SconeRuntime, ContainerError> {
        let span = telemetry.map(|t| {
            t.counter("securecloud_containers_bootstraps_total").inc();
            OwnedSpan::open_with(
                t.clone(),
                "containers",
                "attested_bootstrap",
                vec![("image", image.reference())],
            )
        });
        let sealed_protection = image
            .flatten()
            .get(PROTECTION_PATH)
            .cloned()
            .ok_or_else(|| ContainerError::Start("secure image lacks FS protection file".into()))?;
        let enclave = platform
            .launch(EnclaveConfig::new(&image.reference(), &image.entrypoint))
            .map_err(|e| ContainerError::Start(e.to_string()))?;
        let (client_t, server_t) = memory_pair();
        let service = Arc::clone(config_service);
        let service_key = service.read().public_key();
        let server = std::thread::spawn(move || service.read().serve_one(server_t));
        // With an injector attached, the runtime's syscalls pass through a
        // FaultyHost so armed SyscallFail faults hit the shield layer.
        let host_os: Arc<dyn HostOs> = match injector {
            Some(injector) => Arc::new(FaultyHost::new(Arc::clone(host), Arc::clone(injector))),
            None => host.clone() as Arc<dyn HostOs>,
        };
        let runtime =
            SconeRuntime::bootstrap(enclave, client_t, service_key, host_os, &sealed_protection);
        let served = server.join().expect("config service thread");
        drop(span);
        match runtime {
            Ok(mut rt) => {
                served.map_err(|e| ContainerError::Start(e.to_string()))?;
                if let Some(t) = telemetry {
                    rt.set_telemetry(t);
                }
                Ok(rt)
            }
            Err(e) => {
                if let Some(t) = telemetry {
                    t.counter("securecloud_containers_bootstrap_failures_total")
                        .inc();
                }
                Err(ContainerError::Start(e.to_string()))
            }
        }
    }

    /// Creates and starts a container by `name:tag`.
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn run_by_reference(&mut self, reference: &str) -> Result<ContainerId, ContainerError> {
        let id = self.registry.resolve(reference)?;
        self.run(id)
    }

    /// Stops a container administratively. For secure containers the
    /// enclave is destroyed. No restart is scheduled, whatever the policy.
    ///
    /// # Errors
    ///
    /// [`ContainerError::ContainerNotFound`] for unknown ids.
    pub fn stop(&mut self, id: ContainerId) -> Result<(), ContainerError> {
        let container = self
            .containers
            .get_mut(&id)
            .ok_or(ContainerError::ContainerNotFound(id))?;
        if let Some(runtime) = &mut container.runtime {
            runtime.enclave_mut().destroy();
        }
        container.state = ContainerState::Stopped;
        container.health = ContainerHealth::Failed;
        container.restart_due_ms = None;
        Ok(())
    }

    /// Aborts a container abnormally (an enclave fault, a crash): the
    /// enclave — and with it all enclave memory — is lost. Under
    /// [`RestartPolicy::Never`] the container is left `Failed`; otherwise a
    /// restart is scheduled with exponential backoff plus seeded jitter.
    ///
    /// # Errors
    ///
    /// [`ContainerError::ContainerNotFound`] for unknown ids.
    pub fn abort(&mut self, id: ContainerId, reason: &str) -> Result<(), ContainerError> {
        self.abort_traced(id, reason, TraceContext::none())
    }

    /// Like [`Engine::abort`], but attributes the abort to a causal trace:
    /// the abort event, every subsequent restart attempt, and an eventual
    /// quarantine all become children of `cause`, so the fault schedule that
    /// killed a container is visible from its restart chain.
    ///
    /// # Errors
    ///
    /// [`ContainerError::ContainerNotFound`] for unknown ids.
    pub fn abort_traced(
        &mut self,
        id: ContainerId,
        reason: &str,
        cause: TraceContext,
    ) -> Result<(), ContainerError> {
        let container = self
            .containers
            .get_mut(&id)
            .ok_or(ContainerError::ContainerNotFound(id))?;
        if let Some(runtime) = &mut container.runtime {
            runtime.enclave_mut().abort(reason);
        }
        container.state = ContainerState::Stopped;
        container.last_fault = Some(reason.to_string());
        container.fault_ctx = cause;
        self.record(format!("container c{} aborted: {reason}", id.0));
        if let Some(t) = &self.telemetry {
            t.counter("securecloud_containers_aborts_total").inc();
            let args = vec![
                ("container", format!("c{}", id.0)),
                ("reason", reason.to_string()),
            ];
            if cause.is_none() {
                t.event("containers", "container_aborted", args);
            } else {
                let leaf = t.mint_child(cause);
                t.event_ctx("containers", "container_aborted", args, leaf);
            }
        }
        match self.containers[&id].supervision.policy {
            RestartPolicy::Never => {
                let container = self.containers.get_mut(&id).expect("present above");
                container.health = ContainerHealth::Failed;
                container.restart_due_ms = None;
            }
            RestartPolicy::OnFailure | RestartPolicy::Always => {
                self.schedule_restart_or_quarantine(id);
            }
        }
        Ok(())
    }

    /// Advances the engine's virtual clock, restarting containers whose
    /// backoff delay has elapsed. Every restart launches a fresh enclave
    /// and re-runs the attested bootstrap on the container's *existing*
    /// host file system (persisted shielded state survives; enclave memory
    /// does not). A restart that itself fails re-enters backoff until the
    /// restart budget quarantines the container.
    pub fn advance(&mut self, ms: u64) {
        self.now_ms += ms;
        if let Some(t) = &self.telemetry {
            t.clock().set_at_least_ms(self.now_ms);
        }
        let now = self.now_ms;
        let mut due: Vec<ContainerId> = self
            .containers
            .iter()
            .filter(|(_, c)| {
                c.health == ContainerHealth::Backoff && c.restart_due_ms.is_some_and(|t| t <= now)
            })
            .map(|(&id, _)| id)
            .collect();
        due.sort_by_key(|id| id.0);
        for id in due {
            let (attempt, fault_ctx) = {
                let container = self.containers.get_mut(&id).expect("listed above");
                container.restarts += 1;
                (container.restarts, container.fault_ctx)
            };
            let span = self.telemetry.clone().map(|t| {
                // A traced abort makes the restart a child span of the fault
                // that caused it; untraced aborts keep the plain span.
                let ctx = if fault_ctx.is_none() {
                    TraceContext::none()
                } else {
                    t.mint_child(fault_ctx)
                };
                OwnedSpan::open_ctx(
                    t,
                    "containers",
                    "restart",
                    vec![
                        ("container", format!("c{}", id.0)),
                        ("attempt", attempt.to_string()),
                    ],
                    ctx,
                )
            });
            match self.try_restart(id) {
                Ok(()) => {
                    self.record(format!("container c{} restarted attempt {attempt}", id.0));
                    if let Some(t) = &self.telemetry {
                        t.counter("securecloud_containers_restarts_total").inc();
                    }
                }
                Err(e) => {
                    self.record(format!(
                        "container c{} restart attempt {attempt} failed: {e}",
                        id.0
                    ));
                    self.schedule_restart_or_quarantine(id);
                }
            }
            drop(span);
        }
    }

    fn try_restart(&mut self, id: ContainerId) -> Result<(), ContainerError> {
        let (image_id, host, secure) = {
            let container = self
                .containers
                .get(&id)
                .ok_or(ContainerError::ContainerNotFound(id))?;
            (
                container.image,
                container.host.clone(),
                container.is_secure(),
            )
        };
        let image = self.registry.pull(image_id)?;
        let runtime = if secure {
            Some(Self::bootstrap_runtime(
                &self.platform,
                &self.config_service,
                &image,
                &host,
                self.telemetry.as_ref(),
                self.injector.as_ref(),
            )?)
        } else {
            None
        };
        let container = self.containers.get_mut(&id).expect("present above");
        container.runtime = runtime;
        container.state = ContainerState::Running;
        container.health = ContainerHealth::Running;
        container.restart_due_ms = None;
        container.fault_ctx = TraceContext::none();
        Ok(())
    }

    fn schedule_restart_or_quarantine(&mut self, id: ContainerId) {
        let now = self.now_ms;
        let container = self.containers.get_mut(&id).expect("caller checked");
        let config = container.supervision;
        let fault_ctx = container.fault_ctx;
        if container.restarts >= config.max_restarts {
            container.health = ContainerHealth::Quarantined;
            container.restart_due_ms = None;
            let restarts = container.restarts;
            self.record(format!(
                "container c{} quarantined after {restarts} restarts",
                id.0
            ));
            if let Some(t) = &self.telemetry {
                t.counter("securecloud_containers_quarantines_total").inc();
                let args = vec![
                    ("container", format!("c{}", id.0)),
                    ("restarts", restarts.to_string()),
                ];
                if fault_ctx.is_none() {
                    t.event("containers", "container_quarantined", args);
                } else {
                    let leaf = t.mint_child(fault_ctx);
                    t.event_ctx("containers", "container_quarantined", args, leaf);
                }
            }
            return;
        }
        let doublings = container.restarts.min(32);
        let exponential = config
            .backoff_base_ms
            .saturating_mul(1u64 << doublings)
            .min(config.backoff_cap_ms);
        let jitter = if config.jitter_ms > 0 {
            self.jitter_rng.below(config.jitter_ms)
        } else {
            0
        };
        let delay = exponential + jitter;
        container.health = ContainerHealth::Backoff;
        container.restart_due_ms = Some(now + delay);
        self.record(format!("container c{} backoff {delay}ms", id.0));
        if let Some(t) = &self.telemetry {
            t.event(
                "containers",
                "backoff_scheduled",
                vec![
                    ("container", format!("c{}", id.0)),
                    ("delay_ms", delay.to_string()),
                ],
            );
        }
    }

    /// Access to a container.
    #[must_use]
    pub fn container(&self, id: ContainerId) -> Option<&Container> {
        self.containers.get(&id)
    }

    /// Mutable access to a container.
    pub fn container_mut(&mut self, id: ContainerId) -> Option<&mut Container> {
        self.containers.get_mut(&id)
    }

    /// Ids of all managed containers.
    #[must_use]
    pub fn container_ids(&self) -> Vec<ContainerId> {
        let mut ids: Vec<_> = self.containers.keys().copied().collect();
        ids.sort_by_key(|id| id.0);
        ids
    }

    /// The engine's platform (for attestation wiring in tests).
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::SecureImageBuilder;
    use crate::image::{Image, Layer};
    use securecloud_sgx::attest::AttestationService;

    fn engine() -> Engine {
        let platform = Platform::new();
        let mut attestation = AttestationService::new();
        attestation.register_platform(&platform);
        let config_service = Arc::new(RwLock::new(ConfigService::new(attestation)));
        Engine::new(Arc::new(Registry::new()), platform, config_service)
    }

    fn built_image() -> BuiltImage {
        SecureImageBuilder::new("meter", "v1", b"meter service binary")
            .protect_file("/data/keys", b"secret key material")
            .plain_file("/etc/motd", b"hello")
            .arg("--window=60")
            .env("REGION", "eu")
            .build()
            .unwrap()
    }

    #[test]
    fn secure_container_end_to_end() {
        let mut engine = engine();
        let image_id = engine.deploy(built_image());
        let cid = engine.run(image_id).unwrap();
        let container = engine.container_mut(cid).unwrap();
        assert!(container.is_secure());
        assert_eq!(container.state(), ContainerState::Running);
        let runtime = container.runtime_mut().unwrap();
        assert_eq!(runtime.args(), ["--window=60"]);
        assert_eq!(runtime.env("REGION"), Some("eu"));
        // The protected file is readable inside, ciphertext outside.
        let content = runtime.read_file("/data/keys", 0, 100).unwrap();
        assert_eq!(content, b"secret key material");
        let usage = container.usage();
        assert!(usage.cpu_cycles > 0);
        assert!(usage.image_bytes > 0);
    }

    #[test]
    fn plain_container_runs_without_enclave() {
        let mut engine = engine();
        let image =
            Image::new("plain", "v1", b"bin").with_layer(Layer::new().with_file("/app", b"code"));
        let id = engine.registry.push(image);
        let cid = engine.run(id).unwrap();
        let container = engine.container(cid).unwrap();
        assert!(!container.is_secure());
        assert_eq!(container.state(), ContainerState::Running);
        assert_eq!(container.host().raw_file("/app").unwrap(), b"code");
    }

    #[test]
    fn tampered_registry_image_fails_to_start() {
        let mut engine = engine();
        let built = built_image();
        let measurement = built.measurement;
        let scf = built.scf.clone();
        // Attacker republishes the image with a modified protection file.
        let mut image = built.image.clone();
        let mut evil_layer = Layer::new();
        evil_layer = evil_layer.with_file(PROTECTION_PATH, b"forged protection");
        image.layers.push(evil_layer);
        {
            let mut service = engine.config_service.write();
            service.attestation_mut().allow_measurement(measurement);
            service.register(measurement, scf);
        }
        let id = engine.registry.push(image);
        let err = engine.run(id);
        assert!(matches!(err, Err(ContainerError::Start(_))));
    }

    #[test]
    fn modified_binary_fails_attestation() {
        let mut engine = engine();
        let built = built_image();
        engine.deploy(built.clone());
        // Attacker swaps the entrypoint; measurement changes, SCF withheld.
        let mut evil = built.image.clone();
        evil.entrypoint = b"trojaned binary".to_vec();
        let evil_id = engine.registry.push(evil);
        assert!(matches!(engine.run(evil_id), Err(ContainerError::Start(_))));
    }

    #[test]
    fn unknown_image_and_container() {
        let mut engine = engine();
        assert!(matches!(
            engine.run(ImageId([9u8; 32])),
            Err(ContainerError::ImageNotFound(_))
        ));
        assert!(matches!(
            engine.run_by_reference("ghost:latest"),
            Err(ContainerError::ImageNotFound(_))
        ));
        assert!(matches!(
            engine.stop(ContainerId(404)),
            Err(ContainerError::ContainerNotFound(_))
        ));
    }

    #[test]
    fn stop_destroys_enclave() {
        let mut engine = engine();
        let image_id = engine.deploy(built_image());
        let cid = engine.run(image_id).unwrap();
        engine.stop(cid).unwrap();
        let container = engine.container_mut(cid).unwrap();
        assert_eq!(container.state(), ContainerState::Stopped);
        let runtime = container.runtime_mut().unwrap();
        assert!(runtime.enclave().is_destroyed());
        assert!(
            runtime.read_file("/data/keys", 0, 1).is_err(),
            "destroyed enclave must not serve shielded reads"
        );
    }

    #[test]
    fn secure_state_survives_restart_via_new_container() {
        // Persisted shielded writes travel with the host FS, and a new
        // container from the same image starts cleanly.
        let mut engine = engine();
        let image_id = engine.deploy(built_image());
        let c1 = engine.run(image_id).unwrap();
        engine.stop(c1).unwrap();
        let c2 = engine.run(image_id).unwrap();
        let container = engine.container_mut(c2).unwrap();
        let runtime = container.runtime_mut().unwrap();
        assert_eq!(
            runtime.read_file("/data/keys", 0, 100).unwrap(),
            b"secret key material"
        );
    }

    #[test]
    fn container_ids_listed_in_order() {
        let mut engine = engine();
        let image_id = engine.deploy(built_image());
        let a = engine.run(image_id).unwrap();
        let b = engine.run(image_id).unwrap();
        assert_eq!(engine.container_ids(), vec![a, b]);
    }

    fn supervised(policy: RestartPolicy) -> SupervisionConfig {
        SupervisionConfig {
            policy,
            backoff_base_ms: 100,
            backoff_cap_ms: 1_000,
            jitter_ms: 0, // exact delays, for assertions
            max_restarts: 3,
        }
    }

    #[test]
    fn abort_without_policy_fails_permanently() {
        let mut engine = engine();
        let image_id = engine.deploy(built_image());
        let cid = engine.run(image_id).unwrap();
        engine.abort(cid, "machine fault").unwrap();
        let container = engine.container(cid).unwrap();
        assert_eq!(container.health(), ContainerHealth::Failed);
        assert_eq!(container.last_fault(), Some("machine fault"));
        engine.advance(1_000_000);
        assert_eq!(
            engine.container(cid).unwrap().state(),
            ContainerState::Stopped,
            "RestartPolicy::Never never restarts"
        );
    }

    #[test]
    fn aborted_container_restarts_with_fresh_attested_enclave() {
        let mut engine = engine();
        let image_id = engine.deploy(built_image());
        let cid = engine
            .run_supervised(image_id, supervised(RestartPolicy::OnFailure))
            .unwrap();
        let old_enclave_id = {
            let container = engine.container_mut(cid).unwrap();
            container.runtime_mut().unwrap().enclave().id()
        };
        engine.abort(cid, "injected enclave abort").unwrap();
        {
            let container = engine.container_mut(cid).unwrap();
            assert_eq!(container.health(), ContainerHealth::Backoff);
            assert_eq!(container.restart_due_ms(), Some(100), "base backoff");
            let runtime = container.runtime_mut().unwrap();
            assert!(runtime.enclave().is_aborted());
        }
        // Not yet due.
        engine.advance(99);
        assert_eq!(
            engine.container(cid).unwrap().health(),
            ContainerHealth::Backoff
        );
        // Due: restarted, re-bootstrapped, fresh enclave.
        engine.advance(1);
        let container = engine.container_mut(cid).unwrap();
        assert_eq!(container.health(), ContainerHealth::Running);
        assert_eq!(container.state(), ContainerState::Running);
        assert_eq!(container.restarts(), 1);
        let runtime = container.runtime_mut().unwrap();
        assert_ne!(runtime.enclave().id(), old_enclave_id, "fresh enclave");
        assert!(!runtime.enclave().is_aborted());
        // Re-attestation succeeded: the SCF was re-provisioned and the
        // shielded FS remounted over the surviving host file system.
        assert_eq!(
            runtime.read_file("/data/keys", 0, 100).unwrap(),
            b"secret key material"
        );
    }

    #[test]
    fn backoff_doubles_and_quarantines_at_budget() {
        let mut engine = engine();
        let image_id = engine.deploy(built_image());
        let cid = engine
            .run_supervised(image_id, supervised(RestartPolicy::Always))
            .unwrap();
        // Crash-loop: abort immediately after each restart.
        let mut expected_delays = Vec::new();
        for round in 0..3 {
            engine.abort(cid, "crash loop").unwrap();
            let container = engine.container(cid).unwrap();
            assert_eq!(container.health(), ContainerHealth::Backoff);
            let due = container.restart_due_ms().unwrap();
            expected_delays.push(due - engine.now_ms());
            engine.advance(due - engine.now_ms());
            assert_eq!(
                engine.container(cid).unwrap().health(),
                ContainerHealth::Running,
                "restart {round} came back"
            );
        }
        assert_eq!(expected_delays, vec![100, 200, 400], "exponential backoff");
        // Fourth abort: restart budget (3) is spent -> quarantine.
        engine.abort(cid, "crash loop").unwrap();
        let container = engine.container(cid).unwrap();
        assert_eq!(container.health(), ContainerHealth::Quarantined);
        assert_eq!(container.restart_due_ms(), None);
        engine.advance(1_000_000);
        assert_eq!(
            engine.container(cid).unwrap().health(),
            ContainerHealth::Quarantined,
            "quarantine is terminal"
        );
    }

    #[test]
    fn backoff_jitter_is_seeded_and_bounded() {
        let delays = |seed: u64| {
            let mut engine = engine();
            engine.set_supervision_seed(seed);
            let image_id = engine.deploy(built_image());
            let config = SupervisionConfig {
                jitter_ms: 50,
                max_restarts: 10,
                ..supervised(RestartPolicy::OnFailure)
            };
            let cid = engine.run_supervised(image_id, config).unwrap();
            let mut delays = Vec::new();
            for _ in 0..4 {
                engine.abort(cid, "x").unwrap();
                let due = engine.container(cid).unwrap().restart_due_ms().unwrap();
                delays.push(due - engine.now_ms());
                engine.advance(due - engine.now_ms());
            }
            delays
        };
        let a = delays(7);
        assert_eq!(a, delays(7), "same seed, same jitter");
        for (i, &delay) in a.iter().enumerate() {
            let exponential = 100u64 << i;
            assert!(
                delay >= exponential && delay < exponential + 50,
                "delay {delay} outside [{exponential}, {exponential}+50)"
            );
        }
    }

    #[test]
    fn traced_abort_links_restart_chain_to_cause() {
        let mut engine = engine();
        let telemetry = Arc::new(Telemetry::new());
        telemetry.set_trace_seed(42);
        engine.set_telemetry(telemetry.clone());
        let image_id = engine.deploy(built_image());
        let cid = engine
            .run_supervised(image_id, supervised(RestartPolicy::OnFailure))
            .unwrap();
        let cause = telemetry.mint_root();
        engine.abort_traced(cid, "injected fault", cause).unwrap();
        let due = engine.container(cid).unwrap().restart_due_ms().unwrap();
        engine.advance(due - engine.now_ms());
        assert_eq!(
            engine.container(cid).unwrap().health(),
            ContainerHealth::Running
        );
        let events = telemetry.trace_events();
        let aborted = events
            .iter()
            .find(|e| e.name == "container_aborted")
            .unwrap();
        assert_eq!(aborted.trace_id, cause.trace_id);
        assert_eq!(aborted.parent_span_id, cause.span_id);
        let restart = events
            .iter()
            .find(|e| e.name == "restart" && e.phase == securecloud_telemetry::Phase::Begin)
            .unwrap();
        assert_eq!(
            restart.trace_id, cause.trace_id,
            "restart joins the fault's trace"
        );
        assert_eq!(restart.parent_span_id, cause.span_id);
        // After a successful restart the cause is consumed: a later untraced
        // abort produces an untraced abort event.
        engine.abort(cid, "plain fault").unwrap();
        let plain = telemetry
            .trace_events()
            .into_iter()
            .rev()
            .find(|e| e.name == "container_aborted")
            .unwrap();
        assert_eq!(plain.trace_id, 0);
    }

    #[test]
    fn administrative_stop_never_restarts() {
        let mut engine = engine();
        let image_id = engine.deploy(built_image());
        let cid = engine
            .run_supervised(image_id, supervised(RestartPolicy::Always))
            .unwrap();
        engine.stop(cid).unwrap();
        let container = engine.container(cid).unwrap();
        assert_eq!(container.health(), ContainerHealth::Failed);
        engine.advance(1_000_000);
        assert_eq!(
            engine.container(cid).unwrap().state(),
            ContainerState::Stopped
        );
    }
}
