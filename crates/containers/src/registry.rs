//! An untrusted, content-addressed image registry.
//!
//! Per §V-A: *"the secure image is published using the standard Docker
//! registry. As all security-relevant parts of the image are protected by
//! the FS protection file, we do not need to trust the Docker registry."*
//! Tests in the engine module demonstrate that tampering with a published
//! secure image is detected at container start.

use crate::image::{Image, ImageId};
use crate::ContainerError;
use parking_lot::RwLock;
use std::collections::HashMap;

/// An in-memory registry. Content is addressed by [`ImageId`]; `name:tag`
/// references resolve through a mutable tag map (which an attacker who
/// controls the registry may repoint — hence ids, not tags, are the unit of
/// trust).
#[derive(Debug, Default)]
pub struct Registry {
    blobs: RwLock<HashMap<ImageId, Image>>,
    tags: RwLock<HashMap<String, ImageId>>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes an image and points its `name:tag` at it.
    pub fn push(&self, image: Image) -> ImageId {
        let id = image.id();
        self.tags.write().insert(image.reference(), id);
        self.blobs.write().insert(id, image);
        id
    }

    /// Fetches an image by content id.
    ///
    /// # Errors
    ///
    /// [`ContainerError::ImageNotFound`] if the id is unknown.
    pub fn pull(&self, id: ImageId) -> Result<Image, ContainerError> {
        self.blobs
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| ContainerError::ImageNotFound(id.to_hex()))
    }

    /// Resolves a `name:tag` reference to an id.
    ///
    /// # Errors
    ///
    /// [`ContainerError::ImageNotFound`] if the reference is unknown.
    pub fn resolve(&self, reference: &str) -> Result<ImageId, ContainerError> {
        self.tags
            .read()
            .get(reference)
            .copied()
            .ok_or_else(|| ContainerError::ImageNotFound(reference.to_string()))
    }

    /// Fetches by `name:tag` (resolve + pull).
    ///
    /// # Errors
    ///
    /// [`ContainerError::ImageNotFound`] if either step fails.
    pub fn pull_by_reference(&self, reference: &str) -> Result<Image, ContainerError> {
        self.pull(self.resolve(reference)?)
    }

    /// Number of stored images.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blobs.read().len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blobs.read().is_empty()
    }

    /// Adversarial hook: repoints a tag at a different image (registry
    /// compromise / malicious mirror).
    pub fn repoint_tag(&self, reference: &str, id: ImageId) {
        self.tags.write().insert(reference.to_string(), id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Layer;

    #[test]
    fn push_pull_roundtrip() {
        let registry = Registry::new();
        let image =
            Image::new("svc", "v1", b"bin").with_layer(Layer::new().with_file("/etc/app", b"conf"));
        let id = registry.push(image.clone());
        assert_eq!(registry.pull(id).unwrap(), image);
        assert_eq!(registry.pull_by_reference("svc:v1").unwrap(), image);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn unknown_lookups_fail() {
        let registry = Registry::new();
        assert!(matches!(
            registry.pull_by_reference("nope:latest"),
            Err(ContainerError::ImageNotFound(_))
        ));
        assert!(registry.pull(ImageId([0u8; 32])).is_err());
    }

    #[test]
    fn tag_repointing_changes_resolution_not_content() {
        let registry = Registry::new();
        let good = Image::new("svc", "v1", b"good");
        let evil = Image::new("svc-evil", "v1", b"evil");
        let good_id = registry.push(good.clone());
        let evil_id = registry.push(evil.clone());
        registry.repoint_tag("svc:v1", evil_id);
        // Tag now lies, but content addressing is immutable.
        assert_eq!(registry.pull_by_reference("svc:v1").unwrap(), evil);
        assert_eq!(registry.pull(good_id).unwrap(), good);
    }

    #[test]
    fn same_content_same_slot() {
        let registry = Registry::new();
        let id1 = registry.push(Image::new("a", "1", b"x"));
        let id2 = registry.push(Image::new("a", "1", b"x"));
        assert_eq!(id1, id2);
        assert_eq!(registry.len(), 1);
    }
}
