//! The SCONE client: secure image build pipeline (paper Figure 2).
//!
//! The image creator works in a *trusted environment* and:
//!
//! 1. statically links the micro-service against the SCONE library, so the
//!    enclave measurement covers all code,
//! 2. encrypts every file that must be protected, producing ciphertext
//!    chunks and the *FS protection file* (keys + MACs),
//! 3. seals the protection file and adds it to the image,
//! 4. emits the SCF (protection key, protection-file digest, stdio keys,
//!    arguments, environment) to be registered with the configuration
//!    service — the SCF is **not** part of the image.

use crate::image::{Image, Layer};
use crate::ContainerError;
use securecloud_scone::fshield::{FsProtection, ShieldedFs};
use securecloud_scone::hostos::MemHost;
use securecloud_scone::scf::{Scf, StdioKeys};
use securecloud_scone::syscall::SyncShield;
use securecloud_sgx::costs::{CostModel, MemoryGeometry};
use securecloud_sgx::enclave::Measurement;
use securecloud_sgx::mem::MemorySim;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Path of the sealed FS protection file inside every secure image.
pub const PROTECTION_PATH: &str = "/scone/fs.protection";

/// Marker bytes standing in for the statically linked SCONE runtime
/// library; linking them into the entrypoint makes the runtime part of the
/// enclave measurement.
pub const SCONE_LIB: &[u8] = b"\x7fSCONE-STATIC-RUNTIME-v1\x7f";

/// The output of a secure image build.
#[derive(Debug, Clone)]
pub struct BuiltImage {
    /// The publishable image (safe to push to an untrusted registry).
    pub image: Image,
    /// The startup configuration file, to be registered with the
    /// configuration service. Contains key material — never published.
    pub scf: Scf,
    /// The enclave measurement the config service should expect.
    pub measurement: Measurement,
}

/// Builder for secure images.
///
/// ```
/// use securecloud_containers::build::SecureImageBuilder;
///
/// let built = SecureImageBuilder::new("meter-svc", "v1", b"compiled service")
///     .protect_file("/data/keys.db", b"sensitive")
///     .plain_file("/etc/banner", b"public")
///     .arg("--serve")
///     .env("MODE", "prod")
///     .build()
///     .unwrap();
/// assert!(built.image.secure);
/// ```
#[derive(Debug, Clone)]
pub struct SecureImageBuilder {
    name: String,
    tag: String,
    binary: Vec<u8>,
    protected: BTreeMap<String, Vec<u8>>,
    plain: BTreeMap<String, Vec<u8>>,
    args: Vec<String>,
    env: BTreeMap<String, String>,
    base: Option<(Image, FsProtection)>,
}

impl SecureImageBuilder {
    /// Starts a build for `name:tag` from the micro-service binary.
    #[must_use]
    pub fn new(name: &str, tag: &str, binary: &[u8]) -> Self {
        SecureImageBuilder {
            name: name.to_string(),
            tag: tag.to_string(),
            binary: binary.to_vec(),
            protected: BTreeMap::new(),
            plain: BTreeMap::new(),
            args: Vec::new(),
            env: BTreeMap::new(),
            base: None,
        }
    }

    /// Starts a *customisation* build on top of a published base image
    /// whose protection file was **signed** (not sealed) by its creator —
    /// the workflow of paper §V-A: "end-users can customize this image by
    /// adding additional file system layers", with the base's integrity
    /// verified and final confidentiality established when the customiser
    /// finishes the build.
    ///
    /// # Errors
    ///
    /// [`ContainerError::Build`] if the signed protection file does not
    /// verify against `signing_key`.
    pub fn customise(
        name: &str,
        tag: &str,
        base: &Image,
        signing_key: &[u8; 32],
    ) -> Result<Self, ContainerError> {
        let signed_protection = base
            .flatten()
            .remove(PROTECTION_PATH)
            .ok_or_else(|| ContainerError::Build("base image lacks a protection file".into()))?;
        let protection = FsProtection::open_signed(signing_key, &signed_protection)
            .map_err(|e| ContainerError::Build(format!("base image rejected: {e}")))?;
        Ok(SecureImageBuilder {
            name: name.to_string(),
            tag: tag.to_string(),
            binary: base.entrypoint.clone(),
            protected: BTreeMap::new(),
            plain: BTreeMap::new(),
            args: Vec::new(),
            env: BTreeMap::new(),
            base: Some((base.clone(), protection)),
        })
    }

    /// Adds a file that must be confidentiality- and integrity-protected.
    #[must_use]
    pub fn protect_file(mut self, path: &str, content: &[u8]) -> Self {
        self.protected.insert(path.to_string(), content.to_vec());
        self
    }

    /// Adds a public file stored in plaintext.
    #[must_use]
    pub fn plain_file(mut self, path: &str, content: &[u8]) -> Self {
        self.plain.insert(path.to_string(), content.to_vec());
        self
    }

    /// Appends an application argument to the SCF.
    #[must_use]
    pub fn arg(mut self, arg: &str) -> Self {
        self.args.push(arg.to_string());
        self
    }

    /// Sets an environment variable in the SCF.
    #[must_use]
    pub fn env(mut self, key: &str, value: &str) -> Self {
        self.env.insert(key.to_string(), value.to_string());
        self
    }

    /// Builds a *customisable base image*: the protection file is signed
    /// with `signing_key` but left unencrypted, so a downstream customiser
    /// (holding the key) can verify it and extend the image via
    /// [`SecureImageBuilder::customise`]. Per §V-A, "confidentiality can
    /// then only be assured after finishing the customization process" —
    /// a base image is not directly runnable (it has no SCF).
    ///
    /// # Errors
    ///
    /// Same as [`SecureImageBuilder::build`].
    pub fn build_customisable(self, signing_key: &[u8; 32]) -> Result<Image, ContainerError> {
        let signing_key = *signing_key;
        let built = self.build_inner(Some(signing_key))?;
        Ok(built.image)
    }

    /// Runs the build pipeline.
    ///
    /// # Errors
    ///
    /// [`ContainerError::Build`] if the binary is empty or a protected path
    /// collides with a plain path.
    pub fn build(self) -> Result<BuiltImage, ContainerError> {
        self.build_inner(None)
    }

    fn build_inner(self, sign_instead: Option<[u8; 32]>) -> Result<BuiltImage, ContainerError> {
        if self.binary.is_empty() {
            return Err(ContainerError::Build("empty service binary".into()));
        }
        if let Some(path) = self.protected.keys().find(|p| self.plain.contains_key(*p)) {
            return Err(ContainerError::Build(format!(
                "{path} is both protected and plain"
            )));
        }

        // Step 1: static link → measured entrypoint. A customised image
        // keeps the base entrypoint (already linked and measured).
        let mut entrypoint = self.binary.clone();
        if self.base.is_none() {
            entrypoint.extend_from_slice(SCONE_LIB);
        }
        let measurement = Measurement::of_code(&entrypoint);

        // Step 2: encrypt protected files through the FS shield against a
        // staging host; the resulting host files are the ciphertext layer.
        // A customisation build starts from the base image's ciphertext
        // chunks and verified protection metadata.
        let staging = Arc::new(MemHost::new());
        let mut build_mem = MemorySim::native(MemoryGeometry::sgx_v1(), CostModel::zero());
        let initial_protection = match &self.base {
            Some((base_image, base_protection)) => {
                use securecloud_scone::hostos::{HostOs, Syscall};
                for (path, content) in base_image.flatten() {
                    if path == PROTECTION_PATH {
                        continue;
                    }
                    if let securecloud_scone::hostos::SyscallRet::Fd(fd) =
                        staging.execute(&Syscall::Open {
                            path: path.clone(),
                            create: true,
                        })
                    {
                        staging.execute(&Syscall::Pwrite {
                            fd,
                            offset: 0,
                            data: content,
                        });
                        staging.execute(&Syscall::Close { fd });
                    }
                }
                base_protection.clone()
            }
            None => FsProtection::new(),
        };
        let mut fs = ShieldedFs::mount(SyncShield::new(staging.clone()), initial_protection);
        for (path, content) in &self.protected {
            fs.create(path)
                .map_err(|e| ContainerError::Build(e.to_string()))?;
            fs.write(&mut build_mem, path, 0, content)
                .map_err(|e| ContainerError::Build(e.to_string()))?;
        }
        let protection = fs.into_protection();

        // Step 3: seal the protection file with a fresh key — or, for a
        // customisable base, sign it in plaintext.
        let fs_protection_key: [u8; 16] = securecloud_crypto::random_array();
        let sealed_protection = match &sign_instead {
            Some(signing_key) => protection.sign(signing_key),
            None => protection.seal(&fs_protection_key),
        };
        let fs_protection_digest = FsProtection::digest(&sealed_protection);

        // Assemble layers: plain files, then ciphertext chunks + the sealed
        // protection file.
        let mut plain_layer = Layer::new();
        for (path, content) in &self.plain {
            plain_layer = plain_layer.with_file(path, content);
        }
        let mut cipher_layer = Layer::new();
        for path in staging.paths() {
            let bytes = staging.raw_file(&path).expect("listed path exists");
            cipher_layer = cipher_layer.with_file(&path, &bytes);
        }
        cipher_layer = cipher_layer.with_file(PROTECTION_PATH, &sealed_protection);

        let mut image = Image::new(&self.name, &self.tag, &entrypoint)
            .with_layer(plain_layer)
            .with_layer(cipher_layer);
        image.secure = true;

        // Step 4: the SCF for the configuration service.
        let scf = Scf {
            args: self.args,
            env: self.env,
            fs_protection_key,
            fs_protection_digest,
            stdio: StdioKeys::generate(),
        };

        Ok(BuiltImage {
            image,
            scf,
            measurement,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BuiltImage {
        SecureImageBuilder::new("svc", "v1", b"service binary")
            .protect_file("/data/secrets", b"api-key=abcd")
            .protect_file("/data/model.bin", &vec![42u8; 10_000])
            .plain_file("/etc/readme", b"public docs")
            .arg("--threads=4")
            .env("LOG", "info")
            .build()
            .unwrap()
    }

    #[test]
    fn secure_image_has_no_plaintext_secrets() {
        let built = sample();
        for (path, content) in built.image.flatten() {
            if path == "/etc/readme" {
                continue;
            }
            assert!(
                !content.windows(7).any(|w| w == b"api-key"),
                "secret leaked into {path}"
            );
        }
    }

    #[test]
    fn image_contains_protection_file_and_chunks() {
        let built = sample();
        let fs = built.image.flatten();
        assert!(fs.contains_key(PROTECTION_PATH));
        assert!(fs.keys().any(|p| p.starts_with("/data/secrets.c")));
        assert!(fs.keys().any(|p| p.starts_with("/data/model.bin.c")));
        assert_eq!(fs.get("/etc/readme").unwrap(), b"public docs");
        assert!(built.image.secure);
    }

    #[test]
    fn measurement_covers_binary_and_runtime() {
        let a = SecureImageBuilder::new("s", "t", b"bin v1")
            .build()
            .unwrap();
        let b = SecureImageBuilder::new("s", "t", b"bin v1")
            .build()
            .unwrap();
        let c = SecureImageBuilder::new("s", "t", b"bin v2")
            .build()
            .unwrap();
        assert_eq!(a.measurement, b.measurement);
        assert_ne!(a.measurement, c.measurement);
        let mut linked = b"bin v1".to_vec();
        linked.extend_from_slice(SCONE_LIB);
        assert_eq!(a.measurement, Measurement::of_code(&linked));
    }

    #[test]
    fn scf_pins_protection_file() {
        let built = sample();
        let sealed = built.image.flatten().remove(PROTECTION_PATH).unwrap();
        assert_eq!(
            FsProtection::digest(&sealed),
            built.scf.fs_protection_digest
        );
        // The SCF key opens it.
        let protection = FsProtection::open_sealed(&built.scf.fs_protection_key, &sealed).unwrap();
        assert_eq!(protection.files.len(), 2);
        assert_eq!(built.scf.args, ["--threads=4"]);
        assert_eq!(built.scf.env.get("LOG").map(String::as_str), Some("info"));
    }

    #[test]
    fn build_validation() {
        assert!(matches!(
            SecureImageBuilder::new("s", "t", b"").build(),
            Err(ContainerError::Build(_))
        ));
        assert!(matches!(
            SecureImageBuilder::new("s", "t", b"bin")
                .protect_file("/f", b"x")
                .plain_file("/f", b"y")
                .build(),
            Err(ContainerError::Build(_))
        ));
    }

    #[test]
    fn builds_are_freshly_keyed() {
        let a = SecureImageBuilder::new("s", "t", b"bin")
            .protect_file("/f", b"same content")
            .build()
            .unwrap();
        let b = SecureImageBuilder::new("s", "t", b"bin")
            .protect_file("/f", b"same content")
            .build()
            .unwrap();
        assert_ne!(a.scf.fs_protection_key, b.scf.fs_protection_key);
        // Fresh keys → different ciphertext → different image ids.
        assert_ne!(a.image.id(), b.image.id());
    }
}

#[cfg(test)]
mod customisation_tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn base_then_customise_then_run() {
        // The base creator publishes a customisable image: signed (not
        // sealed) protection file.
        let signing_key: [u8; 32] = securecloud_crypto::random_array();
        let base = SecureImageBuilder::new("analytics-base", "v1", b"base binary")
            .protect_file("/model/base-weights", &vec![3u8; 5_000])
            .plain_file("/docs/README", b"extend me")
            .build_customisable(&signing_key)
            .unwrap();
        // The registry (untrusted) carries it.
        let registry = Registry::new();
        let base_id = registry.push(base.clone());
        let pulled = registry.pull(base_id).unwrap();

        // A customer verifies and extends it with their own secrets.
        let built = SecureImageBuilder::customise("analytics-acme", "v1", &pulled, &signing_key)
            .unwrap()
            .protect_file("/customer/api-key", b"acme-secret")
            .arg("--tenant=acme")
            .build()
            .unwrap();
        // The customised image keeps the base measurement (same code).
        assert_eq!(built.measurement, Measurement::of_code(&pulled.entrypoint));

        // It runs end to end and serves both base and customer files.
        let platform = securecloud_sgx::enclave::Platform::new();
        let mut attestation = securecloud_sgx::attest::AttestationService::new();
        attestation.register_platform(&platform);
        let config_service = std::sync::Arc::new(parking_lot::RwLock::new(
            securecloud_scone::scf::ConfigService::new(attestation),
        ));
        let mut engine = crate::engine::Engine::new(
            std::sync::Arc::new(Registry::new()),
            platform,
            config_service,
        );
        let image_id = engine.deploy(built);
        let container = engine.run(image_id).unwrap();
        let runtime = engine
            .container_mut(container)
            .unwrap()
            .runtime_mut()
            .unwrap();
        assert_eq!(
            runtime.read_file("/model/base-weights", 0, 5_000).unwrap(),
            vec![3u8; 5_000]
        );
        assert_eq!(
            runtime.read_file("/customer/api-key", 0, 64).unwrap(),
            b"acme-secret"
        );
        assert_eq!(runtime.args(), ["--tenant=acme"]);
    }

    #[test]
    fn customise_rejects_tampered_base() {
        let signing_key: [u8; 32] = securecloud_crypto::random_array();
        let base = SecureImageBuilder::new("base", "v1", b"bin")
            .protect_file("/f", b"x")
            .build_customisable(&signing_key)
            .unwrap();
        // The registry swaps the protection file.
        let mut evil = base.clone();
        evil.layers
            .push(Layer::new().with_file(PROTECTION_PATH, b"forged"));
        assert!(matches!(
            SecureImageBuilder::customise("c", "v1", &evil, &signing_key),
            Err(ContainerError::Build(_))
        ));
        // The wrong key is rejected too.
        let wrong: [u8; 32] = securecloud_crypto::random_array();
        assert!(SecureImageBuilder::customise("c", "v1", &base, &wrong).is_err());
        // Missing protection file.
        let bare = Image::new("bare", "v1", b"bin");
        assert!(SecureImageBuilder::customise("c", "v1", &bare, &signing_key).is_err());
    }
}
