//! Secure containers for the SecureCloud stack (paper §V-A, Figure 2).
//!
//! This crate implements the Docker-shaped substrate the paper deploys
//! micro-services on:
//!
//! * [`image`] — layered container images with content-addressed ids,
//! * [`registry`] — an **untrusted** registry (tests demonstrate that
//!   tampering is caught at container start, so the registry needs no
//!   trust),
//! * [`build`] — the *SCONE client* build pipeline: static linking into a
//!   measured entrypoint, FS encryption, sealed FS protection file, SCF
//!   emission,
//! * [`engine`] — the container engine running plain and secure containers
//!   side by side, with resource accounting.

pub mod build;
pub mod engine;
pub mod image;
pub mod registry;

use engine::ContainerId;
use std::error::Error as StdError;
use std::fmt;

/// Errors from the container subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ContainerError {
    /// The referenced image does not exist.
    ImageNotFound(String),
    /// The referenced container does not exist.
    ContainerNotFound(ContainerId),
    /// The image build pipeline rejected its inputs.
    Build(String),
    /// Starting the container failed (attestation, tampering, provisioning).
    Start(String),
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::ImageNotFound(what) => write!(f, "image not found: {what}"),
            ContainerError::ContainerNotFound(id) => {
                write!(f, "container not found: {}", id.0)
            }
            ContainerError::Build(why) => write!(f, "image build failed: {why}"),
            ContainerError::Start(why) => write!(f, "container start failed: {why}"),
        }
    }
}

impl StdError for ContainerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        for e in [
            ContainerError::ImageNotFound("x".into()),
            ContainerError::ContainerNotFound(ContainerId(1)),
            ContainerError::Build("y".into()),
            ContainerError::Start("z".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
