//! Layered container images.
//!
//! An [`Image`] is a stack of file-system [`Layer`]s plus a code entrypoint,
//! exactly enough of the Docker model for the paper's workflow: developers
//! publish an image featuring their micro-service, and end-users customise
//! it by adding additional layers (§V-A).

use securecloud_crypto::impl_wire_struct;
use securecloud_crypto::sha256::Sha256;
use securecloud_crypto::wire::Wire;
use std::collections::BTreeMap;

/// A content-addressed image identifier (SHA-256 of the canonical encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ImageId(pub [u8; 32]);

impl ImageId {
    /// Hex rendering.
    #[must_use]
    pub fn to_hex(&self) -> String {
        securecloud_crypto::hex(&self.0)
    }
}

/// One file-system layer: path → content. Later layers shadow earlier ones;
/// an empty content entry is a whiteout (deletion).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Layer {
    /// Files added or replaced by this layer.
    pub files: BTreeMap<String, Vec<u8>>,
    /// Paths removed by this layer.
    pub whiteouts: Vec<String>,
}

impl_wire_struct!(Layer { files, whiteouts });

impl Layer {
    /// Creates an empty layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a file (builder style).
    #[must_use]
    pub fn with_file(mut self, path: &str, content: &[u8]) -> Self {
        self.files.insert(path.to_string(), content.to_vec());
        self
    }

    /// Marks a path deleted (builder style).
    #[must_use]
    pub fn with_whiteout(mut self, path: &str) -> Self {
        self.whiteouts.push(path.to_string());
        self
    }

    /// Total bytes in this layer.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.files.values().map(|v| v.len() as u64).sum()
    }
}

/// A container image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Image name (repository).
    pub name: String,
    /// Image tag.
    pub tag: String,
    /// The code entrypoint measured into the enclave for secure images.
    pub entrypoint: Vec<u8>,
    /// Whether this image expects to run inside an enclave.
    pub secure: bool,
    /// File-system layers, bottom first.
    pub layers: Vec<Layer>,
}

impl_wire_struct!(Image {
    name,
    tag,
    entrypoint,
    secure,
    layers
});

impl Image {
    /// Creates a plain (non-secure) image.
    #[must_use]
    pub fn new(name: &str, tag: &str, entrypoint: &[u8]) -> Self {
        Image {
            name: name.to_string(),
            tag: tag.to_string(),
            entrypoint: entrypoint.to_vec(),
            secure: false,
            layers: Vec::new(),
        }
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn with_layer(mut self, layer: Layer) -> Self {
        self.layers.push(layer);
        self
    }

    /// The content-addressed id of this image.
    #[must_use]
    pub fn id(&self) -> ImageId {
        ImageId(Sha256::digest(&self.to_wire()))
    }

    /// Full `name:tag` reference.
    #[must_use]
    pub fn reference(&self) -> String {
        format!("{}:{}", self.name, self.tag)
    }

    /// The flattened file system: layers applied bottom-up with whiteouts.
    #[must_use]
    pub fn flatten(&self) -> BTreeMap<String, Vec<u8>> {
        let mut fs = BTreeMap::new();
        for layer in &self.layers {
            for (path, content) in &layer.files {
                fs.insert(path.clone(), content.clone());
            }
            for path in &layer.whiteouts {
                fs.remove(path);
            }
        }
        fs
    }

    /// Total size across layers (pre-flattening).
    #[must_use]
    pub fn size(&self) -> u64 {
        self.layers.iter().map(Layer::size).sum::<u64>() + self.entrypoint.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layering_and_whiteouts() {
        let image = Image::new("svc", "v1", b"bin")
            .with_layer(
                Layer::new()
                    .with_file("/etc/conf", b"base")
                    .with_file("/bin/app", b"app"),
            )
            .with_layer(
                Layer::new()
                    .with_file("/etc/conf", b"override")
                    .with_whiteout("/bin/app"),
            );
        let fs = image.flatten();
        assert_eq!(fs.get("/etc/conf").unwrap(), b"override");
        assert!(!fs.contains_key("/bin/app"));
    }

    #[test]
    fn id_is_content_addressed() {
        let a = Image::new("svc", "v1", b"bin").with_layer(Layer::new().with_file("/f", b"x"));
        let b = Image::new("svc", "v1", b"bin").with_layer(Layer::new().with_file("/f", b"x"));
        let c = Image::new("svc", "v1", b"bin").with_layer(Layer::new().with_file("/f", b"y"));
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
        assert_eq!(a.id().to_hex().len(), 64);
    }

    #[test]
    fn wire_roundtrip() {
        let image = Image::new("svc", "v2", b"entry")
            .with_layer(Layer::new().with_file("/a", b"1").with_whiteout("/b"));
        assert_eq!(Image::from_wire(&image.to_wire()).unwrap(), image);
    }

    #[test]
    fn size_accounts_layers_and_entrypoint() {
        let image = Image::new("s", "t", b"12345")
            .with_layer(Layer::new().with_file("/a", &[0u8; 100]))
            .with_layer(Layer::new().with_file("/b", &[0u8; 50]));
        assert_eq!(image.size(), 155);
        assert_eq!(image.reference(), "s:t");
    }
}
