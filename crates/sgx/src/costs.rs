//! The SGX cost model: cycle charges for memory-hierarchy and enclave
//! transition events.
//!
//! Defaults follow the SGX1 measurements reported in the paper's references
//! (SCONE, OSDI'16; Costan & Devadas, "Intel SGX Explained"):
//!
//! * enclave transitions (ECALL/OCALL) cost thousands of cycles each way,
//! * a last-level-cache miss that must be served from EPC memory pays the
//!   Memory Encryption Engine (decrypt + integrity check), roughly 2-3x a
//!   native DRAM access,
//! * an EPC page fault is serviced by the (untrusted) OS: the victim page is
//!   encrypted and written back (EWB) and the faulting page decrypted and
//!   verified on reload (ELDU), costing tens of thousands of cycles.

use std::time::Duration;

/// Cycle costs for simulated events. Construct via [`CostModel::sgx_v1`] or
/// the builder-style `with_*` methods.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Clock frequency used to convert cycles to wall time, in GHz.
    pub cpu_ghz: f64,
    /// One-way cost of entering an enclave (EENTER) in cycles.
    pub ecall_cycles: u64,
    /// One-way cost of leaving an enclave (EEXIT/OCALL) in cycles.
    pub ocall_cycles: u64,
    /// Cost of an access served by the cache hierarchy (hit), in cycles.
    pub cache_hit_cycles: u64,
    /// LLC miss served from regular DRAM (native execution), in cycles.
    pub dram_cycles: u64,
    /// LLC miss served from EPC memory: DRAM plus MEE decrypt + integrity
    /// check, in cycles.
    pub epc_miss_cycles: u64,
    /// EPC page fault: OS exit, EWB of the victim, ELDU of the target,
    /// integrity verification, TLB shootdown — in cycles.
    pub epc_fault_cycles: u64,
    /// Baseline compute charge per application operation, in cycles.
    pub compute_op_cycles: u64,
    /// Fixed cost of one host block-device transfer (OCALL to the untrusted
    /// host, request setup, completion), in cycles.
    pub host_io_setup_cycles: u64,
    /// Per-KiB transfer cost of host block-device IO, in cycles.
    pub host_io_per_kib_cycles: u64,
    /// Cost of moving one submission/completion-ring slot between cores:
    /// a cross-core cache-line transfer plus the release/acquire fence pair.
    /// This is the per-operation price of the *switchless* path — orders of
    /// magnitude below [`CostModel::transition_pair`], which is the whole
    /// point of shared-memory rings.
    pub ring_slot_cycles: u64,
}

impl CostModel {
    /// The default SGX1 (Skylake-era) cost model used in the paper's setting.
    #[must_use]
    pub fn sgx_v1() -> Self {
        CostModel {
            cpu_ghz: 3.4,
            ecall_cycles: 4_000,
            ocall_cycles: 4_000,
            cache_hit_cycles: 8,
            dram_cycles: 200,
            epc_miss_cycles: 500,
            epc_fault_cycles: 20_000,
            compute_op_cycles: 40,
            // One host block transfer: OCALL out, syscall + device latency
            // (~12 us at 3.4 GHz), then ~1.6 GB/s of streaming bandwidth.
            host_io_setup_cycles: 40_000,
            host_io_per_kib_cycles: 2_000,
            // One cache line bounced between the enclave core and the host
            // servicer core (~100 cycles on Skylake) plus the fences.
            ring_slot_cycles: 120,
        }
    }

    /// A hypothetical "free hardware" model (all costs zero) — useful in
    /// tests that only check functional behaviour.
    #[must_use]
    pub fn zero() -> Self {
        CostModel {
            cpu_ghz: 1.0,
            ecall_cycles: 0,
            ocall_cycles: 0,
            cache_hit_cycles: 0,
            dram_cycles: 0,
            epc_miss_cycles: 0,
            epc_fault_cycles: 0,
            compute_op_cycles: 0,
            host_io_setup_cycles: 0,
            host_io_per_kib_cycles: 0,
            ring_slot_cycles: 0,
        }
    }

    /// Returns a copy with a different EPC fault cost.
    #[must_use]
    pub fn with_epc_fault_cycles(mut self, cycles: u64) -> Self {
        self.epc_fault_cycles = cycles;
        self
    }

    /// Returns a copy with a different transition cost (applied to both
    /// directions).
    #[must_use]
    pub fn with_transition_cycles(mut self, cycles: u64) -> Self {
        self.ecall_cycles = cycles;
        self.ocall_cycles = cycles;
        self
    }

    /// Returns a copy with a different ring-slot (switchless) cost.
    #[must_use]
    pub fn with_ring_slot_cycles(mut self, cycles: u64) -> Self {
        self.ring_slot_cycles = cycles;
        self
    }

    /// The cost of one full enclave transition round trip (exit + re-enter,
    /// or enter + exit). Every place that charges a transition pair goes
    /// through this helper so the shield, the scheduler, and the sgx
    /// mirrors cannot drift apart.
    #[must_use]
    pub fn transition_pair(&self) -> u64 {
        self.ecall_cycles + self.ocall_cycles
    }

    /// Converts a cycle count to simulated wall-clock time.
    #[must_use]
    pub fn cycles_to_duration(&self, cycles: u64) -> Duration {
        let nanos = cycles as f64 / self.cpu_ghz;
        Duration::from_nanos(nanos as u64)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::sgx_v1()
    }
}

/// Geometry of the simulated memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryGeometry {
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Last-level cache capacity in bytes.
    pub llc_bytes: usize,
    /// Page size in bytes.
    pub page_bytes: usize,
    /// Total EPC capacity in bytes (hardware view: 128 MiB on SGX1).
    pub epc_total_bytes: usize,
    /// EPC bytes consumed by SGX metadata (EPCM, version arrays, SECS/TCS):
    /// on SGX1 roughly 35 MiB of the 128 MiB are unavailable to enclave
    /// data, which is why the paper observes degradation *before* the
    /// 128 MiB mark in Figure 3.
    pub epc_reserved_bytes: usize,
}

impl MemoryGeometry {
    /// SGX1 defaults: 64 B lines, 8 MiB LLC, 4 KiB pages, 128 MiB EPC of
    /// which ~93.5 MiB are usable.
    #[must_use]
    pub fn sgx_v1() -> Self {
        MemoryGeometry {
            line_bytes: 64,
            llc_bytes: 8 << 20,
            page_bytes: 4096,
            epc_total_bytes: 128 << 20,
            epc_reserved_bytes: (34 << 20) + (512 << 10),
        }
    }

    /// A larger-EPC what-if (SGX2/Ice-Lake-era parts shipped with 256 MiB+
    /// of EPC and cheaper paging via EDMM): used by the E8 what-if bench.
    #[must_use]
    pub fn sgx_v2() -> Self {
        MemoryGeometry {
            line_bytes: 64,
            llc_bytes: 24 << 20,
            page_bytes: 4096,
            epc_total_bytes: 256 << 20,
            epc_reserved_bytes: 16 << 20,
        }
    }

    /// EPC bytes usable for enclave data pages.
    #[must_use]
    pub fn epc_usable_bytes(&self) -> usize {
        self.epc_total_bytes.saturating_sub(self.epc_reserved_bytes)
    }

    /// Number of usable EPC pages.
    #[must_use]
    pub fn epc_pages(&self) -> usize {
        self.epc_usable_bytes() / self.page_bytes
    }

    /// Number of LLC lines.
    #[must_use]
    pub fn llc_lines(&self) -> usize {
        self.llc_bytes / self.line_bytes
    }
}

impl Default for MemoryGeometry {
    fn default() -> Self {
        Self::sgx_v1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgx_v1_defaults_are_sane() {
        let c = CostModel::sgx_v1();
        assert!(c.epc_fault_cycles > c.epc_miss_cycles);
        // A 4 KiB host block transfer must dwarf an EPC fault: spilling to
        // host storage only pays off when it saves *many* faults.
        assert!(c.host_io_setup_cycles + 4 * c.host_io_per_kib_cycles > c.epc_fault_cycles);
        assert!(c.epc_miss_cycles > c.dram_cycles);
        assert!(c.dram_cycles > c.cache_hit_cycles);
        let g = MemoryGeometry::sgx_v1();
        assert_eq!(g.epc_total_bytes, 128 << 20);
        assert!(g.epc_usable_bytes() < g.epc_total_bytes);
        assert!(g.epc_usable_bytes() > 90 << 20);
    }

    #[test]
    fn cycles_to_duration_scales_with_frequency() {
        let c = CostModel {
            cpu_ghz: 2.0,
            ..CostModel::sgx_v1()
        };
        assert_eq!(c.cycles_to_duration(2_000_000), Duration::from_micros(1000));
    }

    #[test]
    fn builders_override_fields() {
        let c = CostModel::sgx_v1()
            .with_epc_fault_cycles(99)
            .with_transition_cycles(7)
            .with_ring_slot_cycles(3);
        assert_eq!(c.epc_fault_cycles, 99);
        assert_eq!(c.ecall_cycles, 7);
        assert_eq!(c.ocall_cycles, 7);
        assert_eq!(c.ring_slot_cycles, 3);
        assert_eq!(c.transition_pair(), 14);
    }

    #[test]
    fn ring_slot_is_far_below_a_transition() {
        // The switchless premise: bouncing a ring slot between cores must be
        // orders of magnitude cheaper than an enclave transition pair.
        let c = CostModel::sgx_v1();
        assert!(c.ring_slot_cycles > 0);
        assert!(c.transition_pair() >= 50 * c.ring_slot_cycles);
    }

    #[test]
    fn geometry_counts() {
        let g = MemoryGeometry::sgx_v1();
        assert_eq!(g.llc_lines(), (8 << 20) / 64);
        assert_eq!(g.epc_pages(), g.epc_usable_bytes() / 4096);
    }
}
