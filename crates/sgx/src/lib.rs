//! A behavioural simulator of Intel SGX for the SecureCloud stack.
//!
//! The SecureCloud paper (DSN'18) builds everything on SGX enclaves; this
//! crate substitutes the hardware with a simulator that reproduces the
//! *performance mechanisms* the paper's evaluation depends on:
//!
//! * **EPC paging** ([`mem`]) — the enclave page cache is limited
//!   (128 MiB on SGX1, ~93.5 MiB usable after SGX metadata); touching a
//!   non-resident page pays an OS-serviced fault, which is the cause of the
//!   paper's Figure 3 "memory swapping" cliff.
//! * **MEE overhead** — LLC misses inside an enclave pay memory
//!   encryption-engine decryption and integrity checking, a milder, bounded
//!   overhead (§V-B "cache misses ... less critical than memory swapping").
//! * **Enclave transitions** ([`enclave::Enclave::ecall`]) — entering and
//!   leaving costs thousands of cycles, which is why SCONE batches system
//!   calls asynchronously.
//! * **Measurement, sealing, attestation** ([`enclave`], [`attest`]) — the
//!   trust bootstrap used by SCONE's startup configuration flow.
//!
//! Time is *simulated*: components report their memory accesses and compute
//! operations, and the simulator accumulates cycles from a calibrated
//! [`costs::CostModel`]. Benchmarks read simulated durations, so results are
//! deterministic and hardware-independent.
//!
//! # Example
//!
//! ```
//! use securecloud_sgx::enclave::{EnclaveConfig, Platform};
//!
//! let platform = Platform::new();
//! let mut enclave = platform.launch(EnclaveConfig::new("worker", b"code")).unwrap();
//! let region = enclave.memory().alloc(1 << 20);
//! enclave.ecall(|mem| {
//!     mem.touch_region(region, 0, 4096);
//!     mem.charge_ops(100);
//! }).unwrap();
//! assert!(enclave.memory().cycles() > 0);
//! ```

pub mod attest;
pub mod costs;
pub mod enclave;
pub mod lru;
pub mod mem;

use std::error::Error as StdError;
use std::fmt;

/// Errors from the SGX simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SgxError {
    /// The enclave has been destroyed.
    Destroyed,
    /// A launch or decode argument was invalid.
    InvalidConfig(String),
    /// Attestation verification failed.
    AttestationFailed(String),
    /// A cryptographic operation (seal/unseal) failed.
    Crypto(securecloud_crypto::CryptoError),
}

impl fmt::Display for SgxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgxError::Destroyed => write!(f, "enclave has been destroyed"),
            SgxError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            SgxError::AttestationFailed(why) => write!(f, "attestation failed: {why}"),
            SgxError::Crypto(e) => write!(f, "cryptographic failure: {e}"),
        }
    }
}

impl StdError for SgxError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            SgxError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<securecloud_crypto::CryptoError> for SgxError {
    fn from(e: securecloud_crypto::CryptoError) -> Self {
        SgxError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = SgxError::Crypto(securecloud_crypto::CryptoError::AuthenticationFailed);
        assert!(e.to_string().contains("cryptographic"));
        assert!(e.source().is_some());
        assert!(SgxError::Destroyed.source().is_none());
    }
}
