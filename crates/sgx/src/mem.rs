//! The simulated memory hierarchy.
//!
//! A [`MemorySim`] models one hardware thread's view of memory in either the
//! native domain or the enclave domain. Application code allocates
//! [`Region`]s from a bump allocator and reports its accesses with
//! [`MemorySim::touch`]; the simulator tracks LLC-line and EPC-page
//! residency with LRU sets and charges cycles according to the
//! [`costs::CostModel`](crate::costs::CostModel):
//!
//! * LLC hit → `cache_hit_cycles`,
//! * LLC miss, native domain → `dram_cycles`,
//! * LLC miss, enclave domain, page resident in EPC → `epc_miss_cycles`
//!   (DRAM + MEE decrypt/integrity),
//! * LLC miss, enclave domain, page **not** resident → `epc_fault_cycles`
//!   (OS-serviced EPC paging) and the page becomes resident, evicting the
//!   LRU page when the EPC is full.
//!
//! This is precisely the mechanism behind the paper's Figure 3: as a
//! working set grows past the usable EPC, page faults dominate and
//! in-enclave execution time diverges from native execution time.

use crate::costs::{CostModel, MemoryGeometry};
use crate::lru::LruSet;
use securecloud_telemetry::{Counter, Telemetry};
use std::time::Duration;

/// Execution domain of a [`MemorySim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Regular process memory: no MEE, no EPC limit.
    Native,
    /// Enclave memory: EPC-resident pages only, MEE on every miss.
    Enclave,
}

/// A contiguous allocation in simulated memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: u64,
    len: u64,
}

impl Region {
    /// Base address of the region.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the region is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address of `offset` bytes into the region.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of bounds.
    #[must_use]
    pub fn addr(&self, offset: u64) -> u64 {
        assert!(offset < self.len.max(1), "offset {offset} out of region");
        self.base + offset
    }
}

/// Counters accumulated by a [`MemorySim`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Cache-line touches.
    pub line_accesses: u64,
    /// Touches served by the cache.
    pub cache_hits: u64,
    /// Touches that missed the LLC.
    pub llc_misses: u64,
    /// LLC misses that also faulted a page into the EPC.
    pub epc_faults: u64,
    /// Pages evicted from the EPC.
    pub epc_evictions: u64,
    /// Application compute operations charged.
    pub compute_ops: u64,
    /// Total bytes allocated.
    pub bytes_allocated: u64,
    /// Host block-device read transfers.
    pub host_reads: u64,
    /// Host block-device write transfers.
    pub host_writes: u64,
    /// Bytes read from host block storage.
    pub host_read_bytes: u64,
    /// Bytes written to host block storage.
    pub host_write_bytes: u64,
}

/// Registry-backed mirror counters for a [`MemorySim`].
///
/// The local [`MemStats`] stays the per-instance source of truth (and is
/// what [`MemorySim::reset_metrics`] zeroes for steady-state measurement);
/// these shared counters accumulate *globally* per domain across every
/// simulator attached to the same registry, so a run's total paging and
/// decrypt activity shows up in the exported snapshot.
#[derive(Debug, Clone)]
struct MemMetrics {
    line_accesses: Counter,
    cache_hits: Counter,
    llc_misses: Counter,
    mee_decrypts: Counter,
    epc_faults: Counter,
    epc_evictions: Counter,
    host_io_reads: Counter,
    host_io_writes: Counter,
    host_io_read_bytes: Counter,
    host_io_write_bytes: Counter,
}

impl MemMetrics {
    fn for_domain(telemetry: &Telemetry, domain: Domain) -> Self {
        let domain = match domain {
            Domain::Native => "native",
            Domain::Enclave => "enclave",
        };
        let labels: [(&str, &str); 1] = [("domain", domain)];
        MemMetrics {
            line_accesses: telemetry.counter_with("securecloud_sgx_line_accesses_total", &labels),
            cache_hits: telemetry.counter_with("securecloud_sgx_cache_hits_total", &labels),
            llc_misses: telemetry.counter_with("securecloud_sgx_llc_misses_total", &labels),
            mee_decrypts: telemetry.counter_with("securecloud_sgx_mee_decrypts_total", &labels),
            epc_faults: telemetry.counter_with("securecloud_sgx_epc_faults_total", &labels),
            epc_evictions: telemetry.counter_with("securecloud_sgx_epc_evictions_total", &labels),
            host_io_reads: telemetry.counter_with("securecloud_sgx_host_io_reads_total", &labels),
            host_io_writes: telemetry.counter_with("securecloud_sgx_host_io_writes_total", &labels),
            host_io_read_bytes: telemetry
                .counter_with("securecloud_sgx_host_io_read_bytes_total", &labels),
            host_io_write_bytes: telemetry
                .counter_with("securecloud_sgx_host_io_write_bytes_total", &labels),
        }
    }
}

/// One hardware thread's simulated memory system and clock.
#[derive(Debug)]
pub struct MemorySim {
    domain: Domain,
    geometry: MemoryGeometry,
    costs: CostModel,
    llc: LruSet,
    epc: Option<LruSet>,
    next_addr: u64,
    cycles: u64,
    stats: MemStats,
    metrics: Option<MemMetrics>,
}

impl MemorySim {
    /// Creates a native-domain simulator.
    #[must_use]
    pub fn native(geometry: MemoryGeometry, costs: CostModel) -> Self {
        Self::new(Domain::Native, geometry, costs)
    }

    /// Creates an enclave-domain simulator.
    #[must_use]
    pub fn enclave(geometry: MemoryGeometry, costs: CostModel) -> Self {
        Self::new(Domain::Enclave, geometry, costs)
    }

    /// Creates a simulator for `domain`.
    #[must_use]
    pub fn new(domain: Domain, geometry: MemoryGeometry, costs: CostModel) -> Self {
        let epc = match domain {
            Domain::Native => None,
            Domain::Enclave => Some(LruSet::new(geometry.epc_pages().max(1))),
        };
        MemorySim {
            domain,
            geometry,
            costs,
            llc: LruSet::new(geometry.llc_lines().max(1)),
            epc,
            next_addr: 0x1000, // skip the null page
            cycles: 0,
            stats: MemStats::default(),
            metrics: None,
        }
    }

    /// Mirrors this simulator's access counters into the shared registry,
    /// labeled by domain. Shared counters aggregate across simulators and
    /// are *not* cleared by [`MemorySim::reset_metrics`].
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics = Some(MemMetrics::for_domain(telemetry, self.domain));
    }

    /// The simulator's execution domain.
    #[must_use]
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The memory geometry in effect.
    #[must_use]
    pub fn geometry(&self) -> MemoryGeometry {
        self.geometry
    }

    /// The cost model in effect.
    #[must_use]
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Allocates `bytes` of simulated memory, page-aligned.
    #[must_use]
    pub fn alloc(&mut self, bytes: u64) -> Region {
        let page = self.geometry.page_bytes as u64;
        let base = self.next_addr;
        let span = bytes.div_ceil(page).max(1) * page;
        self.next_addr += span;
        self.stats.bytes_allocated += bytes;
        Region { base, len: bytes }
    }

    /// Releases a region: its pages leave the EPC without writeback charge
    /// (EREMOVE is cheap relative to EWB) and its lines age out naturally.
    pub fn free(&mut self, region: Region) {
        if let Some(epc) = &mut self.epc {
            let page = self.geometry.page_bytes as u64;
            let first = region.base / page;
            let last = (region.base + region.len.max(1) - 1) / page;
            for p in first..=last {
                epc.remove(p);
            }
        }
    }

    /// Reports `len` bytes of access starting at `addr`, charging memory
    /// costs per cache line touched.
    pub fn touch(&mut self, addr: u64, len: usize) {
        if len == 0 {
            return;
        }
        let line = self.geometry.line_bytes as u64;
        let page_shift = self.geometry.page_bytes.trailing_zeros();
        let first_line = addr / line;
        let last_line = (addr + len as u64 - 1) / line;
        let metrics = self.metrics.as_ref();
        for l in first_line..=last_line {
            self.stats.line_accesses += 1;
            if let Some(m) = metrics {
                m.line_accesses.inc();
            }
            if self.llc.touch(l).hit {
                self.stats.cache_hits += 1;
                if let Some(m) = metrics {
                    m.cache_hits.inc();
                }
                self.cycles += self.costs.cache_hit_cycles;
                continue;
            }
            self.stats.llc_misses += 1;
            if let Some(m) = metrics {
                m.llc_misses.inc();
            }
            match &mut self.epc {
                None => self.cycles += self.costs.dram_cycles,
                Some(epc) => {
                    let page = (l * line) >> page_shift;
                    let t = epc.touch(page);
                    if t.hit {
                        // DRAM access through the MEE: decrypt + integrity
                        // check on the missed line.
                        if let Some(m) = metrics {
                            m.mee_decrypts.inc();
                        }
                        self.cycles += self.costs.epc_miss_cycles;
                    } else {
                        self.stats.epc_faults += 1;
                        if let Some(m) = metrics {
                            m.epc_faults.inc();
                        }
                        if t.evicted.is_some() {
                            self.stats.epc_evictions += 1;
                            if let Some(m) = metrics {
                                m.epc_evictions.inc();
                            }
                        }
                        self.cycles += self.costs.epc_fault_cycles;
                    }
                }
            }
        }
    }

    /// Touches a byte range within `region`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the region.
    pub fn touch_region(&mut self, region: Region, offset: u64, len: usize) {
        assert!(
            offset + len as u64 <= region.len,
            "touch of {offset}+{len} exceeds region of {} bytes",
            region.len
        );
        self.touch(region.base + offset, len);
    }

    /// Charges `n` application operations at `compute_op_cycles` each.
    pub fn charge_ops(&mut self, n: u64) {
        self.stats.compute_ops += n;
        self.cycles += n * self.costs.compute_op_cycles;
    }

    /// Charges a raw cycle count (used for transitions, crypto, syscalls).
    pub fn charge_cycles(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// Cycles for one host block-device transfer of `bytes`.
    fn host_io_cycles(&self, bytes: u64) -> u64 {
        self.costs.host_io_setup_cycles + bytes.div_ceil(1024) * self.costs.host_io_per_kib_cycles
    }

    /// Charges one read of `bytes` from host block storage (an OCALL plus
    /// the transfer). The data itself is untrusted: callers must verify it
    /// before use.
    pub fn charge_host_read(&mut self, bytes: u64) {
        self.stats.host_reads += 1;
        self.stats.host_read_bytes += bytes;
        self.cycles += self.host_io_cycles(bytes);
        if let Some(m) = &self.metrics {
            m.host_io_reads.inc();
            m.host_io_read_bytes.add(bytes);
        }
    }

    /// Charges one write of `bytes` to host block storage.
    pub fn charge_host_write(&mut self, bytes: u64) {
        self.stats.host_writes += 1;
        self.stats.host_write_bytes += bytes;
        self.cycles += self.host_io_cycles(bytes);
        if let Some(m) = &self.metrics {
            m.host_io_writes.inc();
            m.host_io_write_bytes.add(bytes);
        }
    }

    /// Total simulated cycles so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total simulated time so far.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.costs.cycles_to_duration(self.cycles)
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Resets the clock and counters, keeping residency state (useful to
    /// measure steady-state behaviour after a warm-up pass).
    pub fn reset_metrics(&mut self) {
        self.cycles = 0;
        self.stats = MemStats::default();
    }

    /// Drops all residency state (cold caches), keeping allocations.
    pub fn flush_residency(&mut self) {
        self.llc.clear();
        if let Some(epc) = &mut self.epc {
            epc.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_geometry() -> MemoryGeometry {
        MemoryGeometry {
            line_bytes: 64,
            llc_bytes: 64 * 4, // 4 lines
            page_bytes: 4096,
            epc_total_bytes: 4096 * 3,
            epc_reserved_bytes: 4096, // 2 usable pages
        }
    }

    fn unit_costs() -> CostModel {
        CostModel {
            cpu_ghz: 1.0,
            ecall_cycles: 0,
            ocall_cycles: 0,
            cache_hit_cycles: 1,
            dram_cycles: 10,
            epc_miss_cycles: 25,
            epc_fault_cycles: 1000,
            compute_op_cycles: 3,
            host_io_setup_cycles: 100,
            host_io_per_kib_cycles: 7,
            ring_slot_cycles: 2,
        }
    }

    #[test]
    fn native_hits_and_misses() {
        let mut sim = MemorySim::native(tiny_geometry(), unit_costs());
        let region = sim.alloc(1024);
        sim.touch_region(region, 0, 64); // cold: miss -> 10
        assert_eq!(sim.cycles(), 10);
        sim.touch_region(region, 0, 64); // hot: hit -> 1
        assert_eq!(sim.cycles(), 11);
        assert_eq!(sim.stats().llc_misses, 1);
        assert_eq!(sim.stats().cache_hits, 1);
        assert_eq!(sim.stats().epc_faults, 0);
    }

    #[test]
    fn enclave_faults_then_hits() {
        let mut sim = MemorySim::enclave(tiny_geometry(), unit_costs());
        let region = sim.alloc(8192);
        sim.touch_region(region, 0, 1); // cold page: fault -> 1000
        assert_eq!(sim.stats().epc_faults, 1);
        assert_eq!(sim.cycles(), 1000);
        sim.touch_region(region, 64, 1); // same page, new line: epc miss -> 25
        assert_eq!(sim.cycles(), 1025);
        sim.touch_region(region, 64, 1); // same line: cache hit -> 1
        assert_eq!(sim.cycles(), 1026);
    }

    #[test]
    fn epc_thrashing_when_working_set_exceeds_capacity() {
        // 2 usable EPC pages; cycle over 3 pages, always at fresh lines so
        // the (4-line) LLC never hits, forcing the page LRU to decide.
        let geometry = tiny_geometry();
        let mut sim = MemorySim::enclave(geometry, unit_costs());
        let region = sim.alloc(3 * 4096);
        let mut line_offset = 0u64;
        for round in 0..10 {
            for p in 0..3u64 {
                sim.touch_region(region, p * 4096 + line_offset, 1);
            }
            line_offset += 64;
            let _ = round;
        }
        // Every access faults: 3 pages in LRU of 2 with round-robin access.
        assert_eq!(sim.stats().epc_faults, 30);
        assert!(sim.stats().epc_evictions >= 27);
    }

    #[test]
    fn working_set_within_epc_stops_faulting() {
        let geometry = tiny_geometry();
        let mut sim = MemorySim::enclave(geometry, unit_costs());
        let region = sim.alloc(2 * 4096);
        for round in 0..5 {
            for p in 0..2u64 {
                sim.touch_region(region, p * 4096 + round * 64, 1);
            }
        }
        // Only the two cold faults; afterwards pages stay resident.
        assert_eq!(sim.stats().epc_faults, 2);
        assert_eq!(sim.stats().epc_evictions, 0);
    }

    #[test]
    fn multi_line_touch_counts_each_line() {
        let mut sim = MemorySim::native(tiny_geometry(), unit_costs());
        let region = sim.alloc(4096);
        sim.touch_region(region, 0, 256); // 4 lines
        assert_eq!(sim.stats().line_accesses, 4);
        // Unaligned touch spanning a boundary: 2 lines.
        sim.touch_region(region, 60, 8);
        assert_eq!(sim.stats().line_accesses, 6);
    }

    #[test]
    fn free_clears_epc_residency() {
        let mut sim = MemorySim::enclave(tiny_geometry(), unit_costs());
        let region = sim.alloc(4096);
        sim.touch_region(region, 0, 1);
        assert_eq!(sim.stats().epc_faults, 1);
        sim.free(region);
        sim.llc.clear(); // isolate the page-level effect
        sim.touch_region(region, 0, 1);
        assert_eq!(sim.stats().epc_faults, 2, "page must fault again");
    }

    #[test]
    fn charge_ops_and_elapsed() {
        let mut sim = MemorySim::native(tiny_geometry(), unit_costs());
        sim.charge_ops(100);
        assert_eq!(sim.cycles(), 300);
        assert_eq!(sim.elapsed(), Duration::from_nanos(300));
        sim.reset_metrics();
        assert_eq!(sim.cycles(), 0);
        assert_eq!(sim.stats(), MemStats::default());
    }

    #[test]
    fn host_io_charges_setup_plus_per_kib() {
        let mut sim = MemorySim::enclave(tiny_geometry(), unit_costs());
        sim.charge_host_write(4096); // 100 setup + 4 KiB * 7
        assert_eq!(sim.cycles(), 128);
        sim.charge_host_read(1); // partial KiB rounds up
        assert_eq!(sim.cycles(), 235);
        let stats = sim.stats();
        assert_eq!(stats.host_writes, 1);
        assert_eq!(stats.host_reads, 1);
        assert_eq!(stats.host_write_bytes, 4096);
        assert_eq!(stats.host_read_bytes, 1);
        // Host IO is not a memory-hierarchy event.
        assert_eq!(stats.line_accesses, 0);
        assert_eq!(stats.epc_faults, 0);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut sim = MemorySim::native(tiny_geometry(), unit_costs());
        let a = sim.alloc(100);
        let b = sim.alloc(5000);
        let c = sim.alloc(1);
        assert!(a.base() + a.len() <= b.base());
        assert!(b.base() + b.len() <= c.base());
        assert_eq!(sim.stats().bytes_allocated, 5101);
    }

    #[test]
    #[should_panic(expected = "exceeds region")]
    fn touch_out_of_bounds_panics() {
        let mut sim = MemorySim::native(tiny_geometry(), unit_costs());
        let region = sim.alloc(64);
        sim.touch_region(region, 0, 65);
    }
}
