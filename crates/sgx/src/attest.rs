//! Remote attestation: reports, quotes, and a verification service.
//!
//! In production SGX, an enclave's report is signed by the platform's
//! quoting enclave and the resulting quote is verified by Intel's
//! attestation service (IAS). Here the [`AttestationService`] plays the
//! role of IAS for a set of registered platforms: it shares each platform's
//! quote key (as Intel shares EPID group keys) and applies a verification
//! policy — allowed measurements and a debug-enclave switch.

use crate::enclave::{Measurement, Platform};
use crate::SgxError;
use securecloud_crypto::hmac::HmacSha256;
use std::collections::HashSet;

/// Length of the user-data field in a report (matches SGX's 64 bytes).
pub const REPORT_DATA_LEN: usize = 64;

/// An enclave-signed statement of identity, bound to caller-chosen data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The enclave's measurement.
    pub measurement: Measurement,
    /// Whether the enclave runs in debug mode.
    pub debug: bool,
    /// Caller data bound into the report (e.g. a channel key hash).
    pub report_data: [u8; REPORT_DATA_LEN],
}

impl Report {
    /// Canonical byte encoding signed by the quoting enclave.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + 1 + REPORT_DATA_LEN);
        out.extend_from_slice(&self.measurement.0);
        out.push(u8::from(self.debug));
        out.extend_from_slice(&self.report_data);
        out
    }

    /// Decodes the canonical encoding.
    ///
    /// # Errors
    ///
    /// [`SgxError::InvalidConfig`] on wrong length.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        if bytes.len() != 32 + 1 + REPORT_DATA_LEN {
            return Err(SgxError::InvalidConfig(format!(
                "report must be {} bytes, got {}",
                32 + 1 + REPORT_DATA_LEN,
                bytes.len()
            )));
        }
        let measurement = Measurement(bytes[..32].try_into().expect("sized"));
        let debug = bytes[32] != 0;
        let report_data = bytes[33..].try_into().expect("sized");
        Ok(Report {
            measurement,
            debug,
            report_data,
        })
    }
}

/// A report signed by a platform's quoting enclave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// The signed report.
    pub report: Report,
    /// The quoting enclave's signature over [`Report::to_bytes`].
    pub signature: [u8; 32],
}

impl Quote {
    /// Serializes the quote for transmission inside a handshake payload.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.report.to_bytes();
        out.extend_from_slice(&self.signature);
        out
    }

    /// Parses a serialized quote.
    ///
    /// # Errors
    ///
    /// [`SgxError::InvalidConfig`] on wrong length.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let report_len = 32 + 1 + REPORT_DATA_LEN;
        if bytes.len() != report_len + 32 {
            return Err(SgxError::InvalidConfig(format!(
                "quote must be {} bytes, got {}",
                report_len + 32,
                bytes.len()
            )));
        }
        Ok(Quote {
            report: Report::from_bytes(&bytes[..report_len])?,
            signature: bytes[report_len..].try_into().expect("sized"),
        })
    }
}

/// Verification policy and trusted-platform registry (the "IAS" of the
/// simulation).
///
/// ```
/// use securecloud_sgx::attest::AttestationService;
/// use securecloud_sgx::enclave::{EnclaveConfig, Platform};
///
/// let platform = Platform::new();
/// let enclave = platform.launch(EnclaveConfig::new("svc", b"code")).unwrap();
///
/// let mut service = AttestationService::new();
/// service.register_platform(&platform);
/// service.allow_measurement(enclave.measurement());
///
/// let quote = enclave.quote(b"nonce");
/// let report = service.verify(&quote).unwrap();
/// assert_eq!(report.measurement, enclave.measurement());
/// ```
#[derive(Debug, Default)]
pub struct AttestationService {
    platform_keys: Vec<[u8; 32]>,
    allowed: HashSet<Measurement>,
    allow_any_measurement: bool,
    allow_debug: bool,
}

impl AttestationService {
    /// Creates an empty service: no platforms, no allowed measurements,
    /// debug enclaves rejected.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a platform whose quotes this service can verify.
    pub fn register_platform(&mut self, platform: &Platform) {
        self.platform_keys.push(platform.quote_key());
    }

    /// Adds `measurement` to the allowlist.
    pub fn allow_measurement(&mut self, measurement: Measurement) {
        self.allowed.insert(measurement);
    }

    /// Accepts any measurement (useful in development; discouraged).
    pub fn allow_any_measurement(&mut self) {
        self.allow_any_measurement = true;
    }

    /// Accepts debug enclaves (useful in development; discouraged).
    pub fn allow_debug(&mut self) {
        self.allow_debug = true;
    }

    /// Verifies a quote: signature against every registered platform,
    /// then the measurement and debug policy.
    ///
    /// # Errors
    ///
    /// [`SgxError::AttestationFailed`] describing the first failed check.
    pub fn verify(&self, quote: &Quote) -> Result<Report, SgxError> {
        let body = quote.report.to_bytes();
        let signed_by_known_platform = self
            .platform_keys
            .iter()
            .any(|key| HmacSha256::verify(key, &body, &quote.signature));
        if !signed_by_known_platform {
            return Err(SgxError::AttestationFailed(
                "quote not signed by a registered platform".into(),
            ));
        }
        if quote.report.debug && !self.allow_debug {
            return Err(SgxError::AttestationFailed(
                "debug enclaves are not accepted".into(),
            ));
        }
        if !self.allow_any_measurement && !self.allowed.contains(&quote.report.measurement) {
            return Err(SgxError::AttestationFailed(format!(
                "measurement {} is not in the allowlist",
                quote.report.measurement.to_hex()
            )));
        }
        Ok(quote.report.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::EnclaveConfig;

    fn setup() -> (Platform, crate::enclave::Enclave, AttestationService) {
        let platform = Platform::new();
        let enclave = platform
            .launch(EnclaveConfig::new("svc", b"trusted code"))
            .unwrap();
        let mut service = AttestationService::new();
        service.register_platform(&platform);
        service.allow_measurement(enclave.measurement());
        (platform, enclave, service)
    }

    #[test]
    fn valid_quote_verifies() {
        let (_platform, enclave, service) = setup();
        let quote = enclave.quote(b"binding");
        let report = service.verify(&quote).unwrap();
        assert_eq!(report.measurement, enclave.measurement());
        assert_eq!(&report.report_data[..7], b"binding");
    }

    #[test]
    fn quote_serialization_roundtrip() {
        let (_platform, enclave, _service) = setup();
        let quote = enclave.quote(b"data");
        let parsed = Quote::from_bytes(&quote.to_bytes()).unwrap();
        assert_eq!(parsed, quote);
        assert!(Quote::from_bytes(&quote.to_bytes()[..10]).is_err());
    }

    #[test]
    fn forged_signature_rejected() {
        let (_platform, enclave, service) = setup();
        let mut quote = enclave.quote(b"");
        quote.signature[0] ^= 1;
        assert!(matches!(
            service.verify(&quote),
            Err(SgxError::AttestationFailed(_))
        ));
    }

    #[test]
    fn tampered_report_rejected() {
        let (_platform, enclave, service) = setup();
        let mut quote = enclave.quote(b"original");
        quote.report.report_data[0] ^= 1;
        assert!(service.verify(&quote).is_err());
    }

    #[test]
    fn unknown_platform_rejected() {
        let (_platform, enclave, _service) = setup();
        let mut fresh = AttestationService::new();
        fresh.allow_measurement(enclave.measurement());
        let quote = enclave.quote(b"");
        assert!(fresh.verify(&quote).is_err());
    }

    #[test]
    fn unlisted_measurement_rejected_unless_any_allowed() {
        let (platform, _enclave, mut service) = setup();
        let other = platform
            .launch(EnclaveConfig::new("other", b"other code"))
            .unwrap();
        let quote = other.quote(b"");
        assert!(service.verify(&quote).is_err());
        service.allow_any_measurement();
        assert!(service.verify(&quote).is_ok());
    }

    #[test]
    fn debug_enclave_policy() {
        let (platform, _enclave, mut service) = setup();
        let debug_enclave = platform
            .launch(EnclaveConfig {
                debug: true,
                ..EnclaveConfig::new("dbg", b"trusted code")
            })
            .unwrap();
        let quote = debug_enclave.quote(b"");
        assert!(service.verify(&quote).is_err());
        service.allow_debug();
        assert!(service.verify(&quote).is_ok());
    }

    #[test]
    fn multiple_platforms_supported() {
        let (_p1, e1, mut service) = setup();
        let p2 = Platform::new();
        let e2 = p2
            .launch(EnclaveConfig::new("svc2", b"trusted code"))
            .unwrap();
        service.register_platform(&p2);
        assert!(service.verify(&e1.quote(b"")).is_ok());
        assert!(service.verify(&e2.quote(b"")).is_ok());
    }
}
