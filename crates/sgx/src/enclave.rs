//! Enclave lifecycle: build, measure, enter/exit, seal, destroy.
//!
//! A [`Platform`] stands in for an SGX-capable CPU package: it holds the
//! per-processor secrets from which sealing keys and attestation (quote)
//! keys are derived. Enclaves are launched on a platform from an
//! [`EnclaveConfig`]; the measurement (`MRENCLAVE`) is the SHA-256 of the
//! supplied code image, so two enclaves built from identical code measure
//! identically — the property the SCONE startup flow relies on when it
//! releases the startup configuration file only to expected measurements.

use crate::attest::{Quote, Report, REPORT_DATA_LEN};
use crate::costs::{CostModel, MemoryGeometry};
use crate::mem::MemorySim;
use crate::SgxError;
use securecloud_crypto::gcm::{AesGcm, NONCE_LEN};
use securecloud_crypto::hmac::{hkdf, HmacSha256};
use securecloud_crypto::sha256::Sha256;
use securecloud_telemetry::{Counter, Telemetry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An enclave measurement (`MRENCLAVE`): SHA-256 over the code image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Measurement(pub [u8; 32]);

impl Measurement {
    /// Computes the measurement of a code image.
    #[must_use]
    pub fn of_code(code: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(b"securecloud-enclave-v1");
        h.update(&(code.len() as u64).to_le_bytes());
        h.update(code);
        Measurement(h.finalize())
    }

    /// Hex rendering, for logs and allowlists.
    #[must_use]
    pub fn to_hex(&self) -> String {
        securecloud_crypto::hex(&self.0)
    }
}

/// Configuration for launching an enclave.
#[derive(Debug, Clone)]
pub struct EnclaveConfig {
    /// Human-readable name (diagnostics only; not part of the measurement).
    pub name: String,
    /// The code image to measure.
    pub code: Vec<u8>,
    /// Memory geometry (EPC size, cache sizes).
    pub geometry: MemoryGeometry,
    /// Cycle cost model.
    pub costs: CostModel,
    /// Debug enclaves can be inspected and must be rejected by production
    /// attestation policies.
    pub debug: bool,
}

impl EnclaveConfig {
    /// A config with SGX1 defaults for the given name and code image.
    #[must_use]
    pub fn new(name: &str, code: &[u8]) -> Self {
        EnclaveConfig {
            name: name.to_string(),
            code: code.to_vec(),
            geometry: MemoryGeometry::sgx_v1(),
            costs: CostModel::sgx_v1(),
            debug: false,
        }
    }
}

/// Opaque enclave identifier, unique per platform process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EnclaveId(u64);

#[derive(Debug)]
struct PlatformInner {
    seal_secret: [u8; 32],
    quote_key: [u8; 32],
    next_id: AtomicU64,
}

/// A simulated SGX-capable CPU package.
///
/// Cloning a [`Platform`] handle shares the underlying hardware secrets, as
/// multiple cores of one package would.
#[derive(Debug, Clone)]
pub struct Platform {
    inner: Arc<PlatformInner>,
}

impl Default for Platform {
    fn default() -> Self {
        Self::new()
    }
}

impl Platform {
    /// "Manufactures" a platform with fresh hardware secrets.
    #[must_use]
    pub fn new() -> Self {
        Platform {
            inner: Arc::new(PlatformInner {
                seal_secret: securecloud_crypto::random_array(),
                quote_key: securecloud_crypto::random_array(),
                next_id: AtomicU64::new(1),
            }),
        }
    }

    /// Launches an enclave: measures the code, allocates its simulated
    /// memory system, and charges enclave-creation cost (EADD/EEXTEND over
    /// the code image).
    ///
    /// # Errors
    ///
    /// [`SgxError::InvalidConfig`] if the code image is empty.
    pub fn launch(&self, config: EnclaveConfig) -> Result<Enclave, SgxError> {
        if config.code.is_empty() {
            return Err(SgxError::InvalidConfig("empty code image".into()));
        }
        let measurement = Measurement::of_code(&config.code);
        let mut mem = MemorySim::enclave(config.geometry, config.costs.clone());
        // EADD + EEXTEND measure each 4 KiB page (~26k cycles/page on SGX1).
        let pages = (config.code.len() as u64).div_ceil(config.geometry.page_bytes as u64);
        mem.charge_cycles(pages * 26_000);
        let id = EnclaveId(self.inner.next_id.fetch_add(1, Ordering::Relaxed));
        Ok(Enclave {
            id,
            name: config.name,
            measurement,
            debug: config.debug,
            mem,
            platform: self.clone(),
            destroyed: false,
            abort_reason: None,
            metrics: None,
        })
    }

    /// The quoting enclave: signs `report` with the platform quote key.
    /// In real SGX this is an EPID/ECDSA signature verified by Intel; here
    /// it is an HMAC verified by an [`crate::attest::AttestationService`]
    /// that shares the key (standing in for the attestation authority).
    #[must_use]
    pub fn quote(&self, report: &Report) -> Quote {
        let body = report.to_bytes();
        Quote {
            report: report.clone(),
            signature: HmacSha256::mac(&self.inner.quote_key, &body),
        }
    }

    pub(crate) fn quote_key(&self) -> [u8; 32] {
        self.inner.quote_key
    }

    fn seal_key_for(&self, measurement: &Measurement) -> [u8; 16] {
        hkdf(
            &self.inner.seal_secret,
            &measurement.0,
            b"securecloud seal key v1",
        )
    }
}

/// Shared-registry counters for enclave transitions.
#[derive(Debug, Clone)]
struct EnclaveMetrics {
    ecalls: Counter,
    ocalls: Counter,
    switchless_calls: Counter,
    transition_cycles: Counter,
    aborts: Counter,
}

impl EnclaveMetrics {
    fn shared(telemetry: &Telemetry) -> Self {
        EnclaveMetrics {
            ecalls: telemetry.counter("securecloud_sgx_ecalls_total"),
            ocalls: telemetry.counter("securecloud_sgx_ocalls_total"),
            switchless_calls: telemetry.counter("securecloud_sgx_switchless_calls_total"),
            transition_cycles: telemetry.counter("securecloud_sgx_transition_cycles_total"),
            aborts: telemetry.counter("securecloud_sgx_enclave_aborts_total"),
        }
    }
}

/// A running simulated enclave.
#[derive(Debug)]
pub struct Enclave {
    id: EnclaveId,
    name: String,
    measurement: Measurement,
    debug: bool,
    mem: MemorySim,
    platform: Platform,
    destroyed: bool,
    abort_reason: Option<String>,
    metrics: Option<EnclaveMetrics>,
}

impl Enclave {
    /// The enclave's identifier on its platform.
    #[must_use]
    pub fn id(&self) -> EnclaveId {
        self.id
    }

    /// The enclave's name (diagnostics).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The enclave's measurement.
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Whether this is a debug enclave.
    #[must_use]
    pub fn is_debug(&self) -> bool {
        self.debug
    }

    /// The platform this enclave runs on.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Attaches shared telemetry: ECALL/OCALL transitions and transition
    /// cycles are counted platform-wide, and the enclave's memory simulator
    /// mirrors its paging/decrypt counters into the registry.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics = Some(EnclaveMetrics::shared(telemetry));
        self.mem.set_telemetry(telemetry);
    }

    /// Enters the enclave, runs `body` with access to the enclave memory
    /// system, and exits, charging one ECALL/EEXIT round trip.
    ///
    /// # Errors
    ///
    /// [`SgxError::Destroyed`] if the enclave has been destroyed.
    pub fn ecall<R>(&mut self, body: impl FnOnce(&mut MemorySim) -> R) -> Result<R, SgxError> {
        if self.destroyed {
            return Err(SgxError::Destroyed);
        }
        let ecall = self.mem.costs().ecall_cycles;
        let pair = self.mem.costs().transition_pair();
        if let Some(m) = &self.metrics {
            m.ecalls.inc();
            m.transition_cycles.add(pair);
        }
        self.mem.charge_cycles(ecall);
        let result = body(&mut self.mem);
        self.mem.charge_cycles(pair - ecall);
        Ok(result)
    }

    /// Runs `body` with access to the enclave memory system **without any
    /// transition**: the request reaches the enclave thread over a
    /// shared-memory ring slot, so only two ring-slot cache-coherency
    /// charges apply (request in, response out). This is the switchless
    /// boundary crossing used by the ring runtime; compare the counters
    /// `securecloud_sgx_ecalls_total` vs
    /// `securecloud_sgx_switchless_calls_total` to see transitions leave
    /// the critical path.
    ///
    /// # Errors
    ///
    /// [`SgxError::Destroyed`] if the enclave has been destroyed.
    pub fn switchless_call<R>(
        &mut self,
        body: impl FnOnce(&mut MemorySim) -> R,
    ) -> Result<R, SgxError> {
        if self.destroyed {
            return Err(SgxError::Destroyed);
        }
        let slot = self.mem.costs().ring_slot_cycles;
        if let Some(m) = &self.metrics {
            m.switchless_calls.inc();
        }
        self.mem.charge_cycles(slot);
        let result = body(&mut self.mem);
        self.mem.charge_cycles(slot);
        Ok(result)
    }

    /// Performs an OCALL from inside the enclave: charges the exit/re-enter
    /// round trip and runs `body` outside (no enclave memory access).
    ///
    /// # Errors
    ///
    /// [`SgxError::Destroyed`] if the enclave has been destroyed.
    pub fn ocall<R>(&mut self, body: impl FnOnce() -> R) -> Result<R, SgxError> {
        if self.destroyed {
            return Err(SgxError::Destroyed);
        }
        let cost = self.mem.costs().transition_pair();
        if let Some(m) = &self.metrics {
            m.ocalls.inc();
            m.transition_cycles.add(cost);
        }
        self.mem.charge_cycles(cost);
        Ok(body())
    }

    /// Direct access to the enclave's memory simulator, for long-running
    /// in-enclave components that manage their own entry/exit accounting.
    #[must_use]
    pub fn memory(&mut self) -> &mut MemorySim {
        &mut self.mem
    }

    /// Read-only view of the enclave's memory simulator, for cycle and
    /// paging accounting without entering the enclave.
    #[must_use]
    pub fn memory_view(&self) -> &MemorySim {
        &self.mem
    }

    /// Produces an attestation report binding `report_data` (e.g. the hash
    /// of a channel public key) to this enclave's measurement.
    #[must_use]
    pub fn report(&self, report_data: &[u8]) -> Report {
        let mut data = [0u8; REPORT_DATA_LEN];
        let n = report_data.len().min(REPORT_DATA_LEN);
        data[..n].copy_from_slice(&report_data[..n]);
        Report {
            measurement: self.measurement,
            debug: self.debug,
            report_data: data,
        }
    }

    /// Convenience: report + quote in one step.
    #[must_use]
    pub fn quote(&self, report_data: &[u8]) -> Quote {
        self.platform.quote(&self.report(report_data))
    }

    /// Seals `plaintext` to this enclave's identity: only an enclave with
    /// the same measurement on the same platform can unseal it.
    ///
    /// The output embeds a random nonce; `aad` is authenticated but not
    /// encrypted.
    #[must_use]
    pub fn seal(&self, plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let key = self.platform.seal_key_for(&self.measurement);
        let nonce: [u8; NONCE_LEN] = securecloud_crypto::random_array();
        let mut out = nonce.to_vec();
        out.extend_from_slice(&AesGcm::new(&key).seal(&nonce, plaintext, aad));
        out
    }

    /// Unseals data produced by [`Enclave::seal`] under the same identity.
    ///
    /// # Errors
    ///
    /// [`SgxError::Crypto`] if the blob is malformed, was sealed by a
    /// different measurement or platform, or was tampered with.
    pub fn unseal(&self, sealed: &[u8], aad: &[u8]) -> Result<Vec<u8>, SgxError> {
        if sealed.len() < NONCE_LEN {
            return Err(SgxError::Crypto(
                securecloud_crypto::CryptoError::AuthenticationFailed,
            ));
        }
        let (nonce, body) = sealed.split_at(NONCE_LEN);
        let nonce: [u8; NONCE_LEN] = nonce.try_into().expect("split size");
        let key = self.platform.seal_key_for(&self.measurement);
        AesGcm::new(&key)
            .open(&nonce, body, aad)
            .map_err(SgxError::Crypto)
    }

    /// Destroys the enclave. Further ECALLs fail.
    pub fn destroy(&mut self) {
        self.destroyed = true;
    }

    /// Whether the enclave has been destroyed.
    #[must_use]
    pub fn is_destroyed(&self) -> bool {
        self.destroyed
    }

    /// Aborts the enclave, modelling an unrecoverable fault inside it (the
    /// hardware analogue of an AEX the runtime cannot resume from). The
    /// enclave is destroyed and the reason is kept for diagnostics; enclave
    /// memory is unrecoverable, so only sealed state survives.
    pub fn abort(&mut self, reason: impl Into<String>) {
        if let Some(m) = &self.metrics {
            m.aborts.inc();
        }
        self.abort_reason = Some(reason.into());
        self.destroyed = true;
    }

    /// Whether the enclave terminated via [`Enclave::abort`].
    #[must_use]
    pub fn is_aborted(&self) -> bool {
        self.abort_reason.is_some()
    }

    /// The abort reason, if the enclave aborted.
    #[must_use]
    pub fn abort_reason(&self) -> Option<&str> {
        self.abort_reason.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(name: &str, code: &[u8]) -> EnclaveConfig {
        EnclaveConfig {
            costs: CostModel::zero(),
            ..EnclaveConfig::new(name, code)
        }
    }

    #[test]
    fn measurement_is_deterministic_and_code_sensitive() {
        let a = Measurement::of_code(b"binary v1");
        let b = Measurement::of_code(b"binary v1");
        let c = Measurement::of_code(b"binary v2");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.to_hex().len(), 64);
    }

    #[test]
    fn launch_rejects_empty_code() {
        let platform = Platform::new();
        assert!(matches!(
            platform.launch(test_config("x", b"")),
            Err(SgxError::InvalidConfig(_))
        ));
    }

    #[test]
    fn ecall_charges_transitions() {
        let platform = Platform::new();
        let config = EnclaveConfig::new("t", b"code"); // real cost model
        let mut enclave = platform.launch(config).unwrap();
        let before = enclave.memory().cycles();
        enclave.ecall(|_mem| ()).unwrap();
        let cost = enclave.memory().cycles() - before;
        let expected = CostModel::sgx_v1().transition_pair();
        assert_eq!(cost, expected);
    }

    #[test]
    fn switchless_call_charges_ring_slots_not_transitions() {
        let platform = Platform::new();
        let config = EnclaveConfig::new("t", b"code"); // real cost model
        let mut enclave = platform.launch(config).unwrap();
        let before = enclave.memory().cycles();
        enclave.switchless_call(|_mem| ()).unwrap();
        let cost = enclave.memory().cycles() - before;
        let model = CostModel::sgx_v1();
        assert_eq!(cost, 2 * model.ring_slot_cycles);
        assert!(cost < model.transition_pair() / 10);
        enclave.destroy();
        assert!(matches!(
            enclave.switchless_call(|_| ()),
            Err(SgxError::Destroyed)
        ));
    }

    #[test]
    fn destroyed_enclave_rejects_calls() {
        let platform = Platform::new();
        let mut enclave = platform.launch(test_config("t", b"code")).unwrap();
        enclave.destroy();
        assert!(enclave.is_destroyed());
        assert!(matches!(enclave.ecall(|_| ()), Err(SgxError::Destroyed)));
        assert!(matches!(enclave.ocall(|| ()), Err(SgxError::Destroyed)));
    }

    #[test]
    fn abort_destroys_and_keeps_reason() {
        let platform = Platform::new();
        let mut enclave = platform.launch(test_config("t", b"code")).unwrap();
        assert!(!enclave.is_aborted());
        enclave.abort("fault injection");
        assert!(enclave.is_aborted());
        assert!(enclave.is_destroyed());
        assert_eq!(enclave.abort_reason(), Some("fault injection"));
        assert!(matches!(enclave.ecall(|_| ()), Err(SgxError::Destroyed)));
        // A plain destroy is not an abort.
        let mut other = platform.launch(test_config("u", b"code")).unwrap();
        other.destroy();
        assert!(!other.is_aborted());
    }

    #[test]
    fn seal_roundtrip_same_measurement() {
        let platform = Platform::new();
        let e1 = platform.launch(test_config("a", b"same code")).unwrap();
        let e2 = platform.launch(test_config("b", b"same code")).unwrap();
        let sealed = e1.seal(b"db key", b"v1");
        assert_eq!(e2.unseal(&sealed, b"v1").unwrap(), b"db key");
    }

    #[test]
    fn seal_rejects_other_measurement_or_platform() {
        let platform = Platform::new();
        let e1 = platform.launch(test_config("a", b"code A")).unwrap();
        let e2 = platform.launch(test_config("b", b"code B")).unwrap();
        let sealed = e1.seal(b"secret", b"");
        assert!(e2.unseal(&sealed, b"").is_err());

        let other = Platform::new();
        let e3 = other.launch(test_config("c", b"code A")).unwrap();
        assert!(e3.unseal(&sealed, b"").is_err());
        // Wrong AAD also fails.
        assert!(e1.unseal(&sealed, b"v2").is_err());
        // Truncated blob fails cleanly.
        assert!(e1.unseal(&sealed[..4], b"").is_err());
    }

    #[test]
    fn report_binds_data_and_measurement() {
        let platform = Platform::new();
        let enclave = platform.launch(test_config("a", b"code")).unwrap();
        let report = enclave.report(b"channel-key-hash");
        assert_eq!(report.measurement, enclave.measurement());
        assert_eq!(&report.report_data[..16], b"channel-key-hash");
        assert!(report.report_data[16..].iter().all(|&b| b == 0));
    }

    #[test]
    fn enclave_ids_unique_per_platform() {
        let platform = Platform::new();
        let e1 = platform.launch(test_config("a", b"x")).unwrap();
        let e2 = platform.launch(test_config("b", b"x")).unwrap();
        assert_ne!(e1.id(), e2.id());
    }

    #[test]
    fn launch_charges_measurement_cost() {
        let platform = Platform::new();
        let small = platform
            .launch(EnclaveConfig::new("s", &[0u8; 4096]))
            .unwrap();
        let large = platform
            .launch(EnclaveConfig::new("l", &[0u8; 40960]))
            .unwrap();
        let small_cycles = {
            let mut e = small;
            e.memory().cycles()
        };
        let large_cycles = {
            let mut e = large;
            e.memory().cycles()
        };
        assert!(large_cycles > small_cycles);
    }
}
