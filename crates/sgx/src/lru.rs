//! A fixed-capacity LRU set over `u64` keys.
//!
//! Used by the memory simulator to track which cache lines are resident in
//! the LLC and which pages are resident in the EPC. Implemented as a slab of
//! doubly-linked nodes plus a hash index, so `touch` is O(1).

use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    prev: usize,
    next: usize,
}

/// Outcome of touching a key in an [`LruSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Touch {
    /// Whether the key was already resident.
    pub hit: bool,
    /// The key evicted to make room, if any.
    pub evicted: Option<u64>,
}

/// Fixed-capacity LRU set.
///
/// ```
/// use securecloud_sgx::lru::LruSet;
///
/// let mut lru = LruSet::new(2);
/// assert!(!lru.touch(1).hit);
/// assert!(!lru.touch(2).hit);
/// assert!(lru.touch(1).hit);          // 1 is now most recent
/// let t = lru.touch(3);               // evicts 2 (least recent)
/// assert_eq!(t.evicted, Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct LruSet {
    index: HashMap<u64, usize>,
    slab: Vec<Node>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
    capacity: usize,
}

impl LruSet {
    /// Creates an LRU set holding at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LruSet capacity must be positive");
        LruSet {
            index: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            capacity,
        }
    }

    /// Number of resident keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `key` is resident (does not affect recency).
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    /// Touches `key`: marks it most-recently-used, inserting (and possibly
    /// evicting the LRU key) if absent.
    pub fn touch(&mut self, key: u64) -> Touch {
        if let Some(&slot) = self.index.get(&key) {
            self.unlink(slot);
            self.push_front(slot);
            return Touch {
                hit: true,
                evicted: None,
            };
        }
        let mut evicted = None;
        if self.index.len() == self.capacity {
            let victim_slot = self.tail;
            debug_assert_ne!(victim_slot, NIL);
            let victim_key = self.slab[victim_slot].key;
            self.unlink(victim_slot);
            self.index.remove(&victim_key);
            self.free.push(victim_slot);
            evicted = Some(victim_key);
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Node {
                    key,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.slab.push(Node {
                    key,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.index.insert(key, slot);
        self.push_front(slot);
        Touch {
            hit: false,
            evicted,
        }
    }

    /// Removes `key` if resident; returns whether it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        match self.index.remove(&key) {
            Some(slot) => {
                self.unlink(slot);
                self.free.push(slot);
                true
            }
            None => false,
        }
    }

    /// Removes every key, keeping the allocation.
    pub fn clear(&mut self) {
        self.index.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slab[slot].prev = NIL;
        self.slab[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_miss_evict() {
        let mut lru = LruSet::new(3);
        assert_eq!(
            lru.touch(10),
            Touch {
                hit: false,
                evicted: None
            }
        );
        lru.touch(20);
        lru.touch(30);
        assert!(lru.touch(10).hit);
        // LRU order is now 20 < 30 < 10; inserting evicts 20.
        assert_eq!(lru.touch(40).evicted, Some(20));
        assert!(!lru.contains(20));
        assert_eq!(lru.len(), 3);
    }

    #[test]
    fn capacity_one() {
        let mut lru = LruSet::new(1);
        lru.touch(1);
        assert_eq!(lru.touch(2).evicted, Some(1));
        assert_eq!(lru.touch(3).evicted, Some(2));
        assert!(lru.touch(3).hit);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn remove_and_reuse() {
        let mut lru = LruSet::new(2);
        lru.touch(1);
        lru.touch(2);
        assert!(lru.remove(1));
        assert!(!lru.remove(1));
        assert_eq!(lru.len(), 1);
        // Removed slot is reused without eviction.
        assert_eq!(lru.touch(3).evicted, None);
        assert_eq!(lru.touch(4).evicted, Some(2));
    }

    #[test]
    fn clear_resets() {
        let mut lru = LruSet::new(4);
        for k in 0..4 {
            lru.touch(k);
        }
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.touch(9).evicted, None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LruSet::new(0);
    }

    #[test]
    fn eviction_order_is_lru_not_fifo() {
        let mut lru = LruSet::new(3);
        lru.touch(1);
        lru.touch(2);
        lru.touch(3);
        lru.touch(1); // refresh 1
        assert_eq!(lru.touch(4).evicted, Some(2));
        assert_eq!(lru.touch(5).evicted, Some(3));
        assert_eq!(lru.touch(6).evicted, Some(1));
    }

    /// Reference model comparison over a pseudorandom workload.
    #[test]
    fn matches_naive_model() {
        use std::collections::VecDeque;
        let mut lru = LruSet::new(8);
        let mut model: VecDeque<u64> = VecDeque::new(); // front = MRU
        let mut state = 0x12345678u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 24;
            let expect_hit = model.contains(&key);
            let mut expect_evicted = None;
            if expect_hit {
                let pos = model.iter().position(|&k| k == key).unwrap();
                model.remove(pos);
            } else if model.len() == 8 {
                expect_evicted = model.pop_back();
            }
            model.push_front(key);
            let t = lru.touch(key);
            assert_eq!(t.hit, expect_hit);
            assert_eq!(t.evicted, expect_evicted);
        }
    }
}
