//! Property-based tests for the SGX simulator's invariants.

use proptest::prelude::*;
use securecloud_sgx::costs::{CostModel, MemoryGeometry};
use securecloud_sgx::lru::LruSet;
use securecloud_sgx::mem::MemorySim;
use std::collections::VecDeque;

proptest! {
    /// The slab-based LRU behaves exactly like a naive deque model.
    #[test]
    fn lru_matches_reference_model(
        capacity in 1usize..16,
        keys in prop::collection::vec(0u64..32, 0..500),
    ) {
        let mut lru = LruSet::new(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        for key in keys {
            let expect_hit = model.contains(&key);
            let mut expect_evicted = None;
            if expect_hit {
                let pos = model.iter().position(|&k| k == key).unwrap();
                model.remove(pos);
            } else if model.len() == capacity {
                expect_evicted = model.pop_back();
            }
            model.push_front(key);
            let t = lru.touch(key);
            prop_assert_eq!(t.hit, expect_hit);
            prop_assert_eq!(t.evicted, expect_evicted);
            prop_assert_eq!(lru.len(), model.len());
        }
    }

    /// LRU removal keeps the set consistent with the model.
    #[test]
    fn lru_with_removals(
        capacity in 1usize..8,
        ops in prop::collection::vec((any::<bool>(), 0u64..16), 0..300),
    ) {
        let mut lru = LruSet::new(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        for (is_remove, key) in ops {
            if is_remove {
                let in_model = model.iter().position(|&k| k == key);
                prop_assert_eq!(lru.remove(key), in_model.is_some());
                if let Some(pos) = in_model {
                    model.remove(pos);
                }
            } else {
                if let Some(pos) = model.iter().position(|&k| k == key) {
                    model.remove(pos);
                } else if model.len() == capacity {
                    model.pop_back();
                }
                model.push_front(key);
                lru.touch(key);
            }
            prop_assert_eq!(lru.len(), model.len());
        }
    }

    /// Simulated cycles are monotone in the amount of memory touched, and
    /// enclave execution never costs less than native for the same trace.
    #[test]
    fn enclave_never_cheaper_than_native(
        touches in prop::collection::vec((0u64..512, 1usize..256), 1..100),
    ) {
        let geometry = MemoryGeometry {
            line_bytes: 64,
            llc_bytes: 64 * 16,
            page_bytes: 4096,
            epc_total_bytes: 4096 * 8,
            epc_reserved_bytes: 4096 * 2,
        };
        let costs = CostModel::sgx_v1();
        let mut native = MemorySim::native(geometry, costs.clone());
        let mut enclave = MemorySim::enclave(geometry, costs);
        let rn = native.alloc(512 * 64 + 4096);
        let re = enclave.alloc(512 * 64 + 4096);
        for (line, len) in touches {
            let offset = line * 64;
            let len = len.min((rn.len() - offset) as usize).max(1);
            native.touch_region(rn, offset, len);
            enclave.touch_region(re, offset, len);
        }
        prop_assert!(enclave.cycles() >= native.cycles());
        prop_assert_eq!(
            native.stats().line_accesses,
            enclave.stats().line_accesses
        );
    }

    /// Stats identities: hits + misses == accesses; faults <= misses.
    #[test]
    fn stats_identities(
        touches in prop::collection::vec((0u64..2048, 1usize..64), 1..200),
    ) {
        let mut sim = MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::sgx_v1());
        let region = sim.alloc(2048 * 64 + 64);
        for (line, len) in touches {
            let offset = line * 64;
            let len = len.min((region.len() - offset) as usize).max(1);
            sim.touch_region(region, offset, len);
        }
        let s = sim.stats();
        prop_assert_eq!(s.cache_hits + s.llc_misses, s.line_accesses);
        prop_assert!(s.epc_faults <= s.llc_misses);
        prop_assert!(s.epc_evictions <= s.epc_faults);
    }
}
