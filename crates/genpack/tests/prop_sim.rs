//! Property tests for the cluster simulation's invariants under arbitrary
//! workloads and all schedulers.

use proptest::prelude::*;
use securecloud_genpack::cluster::{Cluster, Demand, JobId, ServerSpec};
use securecloud_genpack::schedulers::{
    FirstFitScheduler, GenPackScheduler, RandomScheduler, Scheduler, SpreadScheduler,
};
use securecloud_genpack::sim::{simulate, SimConfig};
use securecloud_genpack::workload::{JobArrival, JobClass, WorkloadConfig};

fn arb_job() -> impl Strategy<Value = JobArrival> {
    (
        0u64..7200,
        1u64..3600,
        0.25f64..8.0,
        0.1f64..1.0,
        128u64..8192,
    )
        .prop_map(|(arrival, duration, cpu, usage_ratio, mem)| JobArrival {
            arrival,
            duration,
            demand: Demand {
                cpu_requested: cpu,
                cpu_actual: cpu * usage_ratio,
                mem,
            },
            class: JobClass::Batch,
        })
}

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(RandomScheduler::new(3)),
        Box::new(SpreadScheduler),
        Box::new(FirstFitScheduler),
        Box::new(GenPackScheduler::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every scheduler: jobs are conserved, power is within physical
    /// bounds, and no server is ever overcommitted on *declared* requests.
    #[test]
    fn simulation_invariants(mut jobs in prop::collection::vec(arb_job(), 0..80)) {
        jobs.sort_by_key(|j| j.arrival);
        let config = SimConfig {
            servers: 10,
            sample_every: 1,
            ..SimConfig::default()
        };
        let max_watts = 10.0 * ServerSpec::typical().peak_watts;
        for mut scheduler in schedulers() {
            let result = simulate(scheduler.as_mut(), &jobs, config);
            prop_assert_eq!(
                result.completed + result.rejections,
                jobs.len() as u64,
                "{} lost jobs", result.scheduler
            );
            prop_assert!(result.peak_servers_on <= 10);
            prop_assert!(result.avg_servers_on <= 10.0 + 1e-9);
            for sample in &result.series {
                prop_assert!(sample.watts >= 0.0);
                prop_assert!(sample.watts <= max_watts + 1e-6);
                prop_assert!(sample.servers_on <= 10);
            }
            prop_assert!(result.energy_joules >= 0.0);
        }
    }

    /// Placement primitives never violate capacity under arbitrary valid
    /// operations: the cluster rejects what does not fit.
    #[test]
    fn cluster_capacity_is_respected(
        demands in prop::collection::vec((0.25f64..20.0, 0u64..100_000), 0..40),
    ) {
        let mut cluster = Cluster::new(2, ServerSpec::typical());
        let spec = ServerSpec::typical();
        for (i, (cpu, mem)) in demands.iter().enumerate() {
            let demand = Demand {
                cpu_requested: *cpu,
                cpu_actual: *cpu * 0.7,
                mem: *mem,
            };
            for server in cluster.server_ids().collect::<Vec<_>>() {
                if cluster.fits(server, demand) {
                    cluster.place(JobId(i as u64), server, demand);
                    break;
                }
            }
        }
        for server in cluster.server_ids().collect::<Vec<_>>() {
            prop_assert!(cluster.cpu_free_requested(server) >= 0.0);
            prop_assert!(cluster.mem_free(server) <= spec.mem_capacity);
            // Requested load never exceeds capacity.
            let placed: f64 = cluster
                .jobs_on(server)
                .iter()
                .filter_map(|&j| cluster.demand(j))
                .map(|d| d.cpu_requested)
                .sum();
            prop_assert!(placed <= spec.cpu_capacity + 1e-9);
        }
    }

    /// GenPack never uses more energy than leaving every server on.
    #[test]
    fn genpack_bounded_by_all_on(seed in 0u64..50) {
        let trace = WorkloadConfig {
            duration: 2 * 3600,
            churn_per_hour: 60.0,
            system_services: 3,
            long_running: 6,
            seed,
            ..WorkloadConfig::default()
        }
        .generate();
        let config = SimConfig {
            servers: 12,
            sample_every: 0,
            ..SimConfig::default()
        };
        let genpack = simulate(&mut GenPackScheduler::new(), &trace, config);
        let spread = simulate(&mut SpreadScheduler, &trace, config);
        prop_assert!(genpack.energy_joules <= spread.energy_joules + 1e-6);
        prop_assert_eq!(genpack.completed + genpack.rejections, trace.len() as u64);
    }
}
