//! The simulated data-center cluster: servers, placement state, and the
//! power model.
//!
//! Servers follow the common linear power model: a parked (powered-off)
//! server draws nothing; an active server draws `idle_watts` plus
//! `(peak_watts - idle_watts) * cpu_utilisation`. The large idle share is
//! what makes consolidation (GenPack's generational packing) save energy.

use std::collections::BTreeMap;

/// Identifier of a server in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub usize);

/// Identifier of a running container instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Hardware profile of a server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerSpec {
    /// Normalised CPU capacity (number of cores).
    pub cpu_capacity: f64,
    /// Memory capacity in MiB.
    pub mem_capacity: u64,
    /// Power draw at 0 % utilisation, in watts.
    pub idle_watts: f64,
    /// Power draw at 100 % utilisation, in watts.
    pub peak_watts: f64,
}

impl ServerSpec {
    /// A typical dual-socket 16-core node (SPECpower-style numbers).
    #[must_use]
    pub fn typical() -> Self {
        ServerSpec {
            cpu_capacity: 16.0,
            mem_capacity: 64 * 1024,
            idle_watts: 95.0,
            peak_watts: 230.0,
        }
    }
}

/// Resource demand of one placed container.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Demand {
    /// Declared CPU request (cores).
    pub cpu_requested: f64,
    /// Observed/actual CPU use (cores) — what monitoring discovers.
    pub cpu_actual: f64,
    /// Memory in MiB (requested == actual for memory).
    pub mem: u64,
}

/// Power state of a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerState {
    /// Running and drawing power.
    On,
    /// Powered off (consolidation target state).
    Parked,
}

#[derive(Debug, Clone)]
struct Server {
    spec: ServerSpec,
    state: PowerState,
    jobs: BTreeMap<JobId, Demand>,
}

impl Server {
    fn cpu_requested(&self) -> f64 {
        self.jobs.values().map(|d| d.cpu_requested).sum()
    }
    fn cpu_actual(&self) -> f64 {
        self.jobs.values().map(|d| d.cpu_actual).sum()
    }
    fn mem_used(&self) -> u64 {
        self.jobs.values().map(|d| d.mem).sum()
    }
}

/// The cluster: a fixed set of servers and the current placement.
#[derive(Debug, Clone)]
pub struct Cluster {
    servers: Vec<Server>,
    placements: BTreeMap<JobId, ServerId>,
}

impl Cluster {
    /// Looks up a server, panicking with the offending [`ServerId`] instead
    /// of a bare index-out-of-bounds — scheduler bugs surface with context.
    fn server(&self, id: ServerId) -> &Server {
        let servers = self.servers.len();
        self.servers
            .get(id.0)
            .unwrap_or_else(|| panic!("server {id:?} out of range ({servers} servers)"))
    }

    fn server_mut(&mut self, id: ServerId) -> &mut Server {
        let servers = self.servers.len();
        self.servers
            .get_mut(id.0)
            .unwrap_or_else(|| panic!("server {id:?} out of range ({servers} servers)"))
    }

    /// Creates a cluster of `n` identical servers, all powered on.
    #[must_use]
    pub fn new(n: usize, spec: ServerSpec) -> Self {
        Cluster {
            servers: vec![
                Server {
                    spec,
                    state: PowerState::On,
                    jobs: BTreeMap::new(),
                };
                n
            ],
            placements: BTreeMap::new(),
        }
    }

    /// Number of servers (any state).
    #[must_use]
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the cluster has no servers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Ids of all servers.
    pub fn server_ids(&self) -> impl Iterator<Item = ServerId> + '_ {
        (0..self.servers.len()).map(ServerId)
    }

    /// The server's hardware profile.
    #[must_use]
    pub fn spec(&self, id: ServerId) -> ServerSpec {
        self.server(id).spec
    }

    /// The server's power state.
    #[must_use]
    pub fn power_state(&self, id: ServerId) -> PowerState {
        self.server(id).state
    }

    /// Jobs currently on `id`.
    #[must_use]
    pub fn jobs_on(&self, id: ServerId) -> Vec<JobId> {
        self.server(id).jobs.keys().copied().collect()
    }

    /// Where `job` runs, if placed.
    #[must_use]
    pub fn placement(&self, job: JobId) -> Option<ServerId> {
        self.placements.get(&job).copied()
    }

    /// The demand recorded for `job`, if placed.
    #[must_use]
    pub fn demand(&self, job: JobId) -> Option<Demand> {
        let server = self.placements.get(&job)?;
        self.server(*server).jobs.get(&job).copied()
    }

    /// Remaining CPU (by declared requests) on `id`; 0 for parked servers.
    #[must_use]
    pub fn cpu_free_requested(&self, id: ServerId) -> f64 {
        let s = self.server(id);
        if s.state == PowerState::Parked {
            return 0.0;
        }
        (s.spec.cpu_capacity - s.cpu_requested()).max(0.0)
    }

    /// Remaining CPU by *actual* observed usage (what GenPack packs on).
    #[must_use]
    pub fn cpu_free_actual(&self, id: ServerId) -> f64 {
        let s = self.server(id);
        if s.state == PowerState::Parked {
            return 0.0;
        }
        (s.spec.cpu_capacity - s.cpu_actual()).max(0.0)
    }

    /// Remaining memory on `id`; 0 for parked servers.
    #[must_use]
    pub fn mem_free(&self, id: ServerId) -> u64 {
        let s = self.server(id);
        if s.state == PowerState::Parked {
            return 0;
        }
        s.spec.mem_capacity.saturating_sub(s.mem_used())
    }

    /// CPU utilisation of `id` by actual usage, clamped to [0, 1+].
    #[must_use]
    pub fn utilisation(&self, id: ServerId) -> f64 {
        let s = self.server(id);
        if s.state == PowerState::Parked {
            return 0.0;
        }
        s.cpu_actual() / s.spec.cpu_capacity
    }

    /// Whether a demand fits on `id` (by declared request and memory),
    /// waking the server is the scheduler's job — parked servers do not fit.
    #[must_use]
    pub fn fits(&self, id: ServerId, demand: Demand) -> bool {
        self.power_state(id) == PowerState::On
            && self.cpu_free_requested(id) >= demand.cpu_requested
            && self.mem_free(id) >= demand.mem
    }

    /// Like [`Cluster::fits`] but against observed actual CPU (monitored
    /// packing; memory is always by request).
    #[must_use]
    pub fn fits_actual(&self, id: ServerId, demand: Demand) -> bool {
        self.power_state(id) == PowerState::On
            && self.cpu_free_actual(id) >= demand.cpu_actual
            && self.mem_free(id) >= demand.mem
    }

    /// Places `job` on `server`.
    ///
    /// # Panics
    ///
    /// Panics if the job is already placed or the server is parked —
    /// schedulers must check first; these are programming errors.
    pub fn place(&mut self, job: JobId, server: ServerId, demand: Demand) {
        assert!(
            !self.placements.contains_key(&job),
            "job {job:?} already placed"
        );
        assert_eq!(
            self.server(server).state,
            PowerState::On,
            "cannot place job {job:?} on parked server {server:?}"
        );
        self.server_mut(server).jobs.insert(job, demand);
        self.placements.insert(job, server);
    }

    /// Removes `job`; returns the server it ran on.
    #[must_use]
    pub fn remove(&mut self, job: JobId) -> Option<ServerId> {
        let server = self.placements.remove(&job)?;
        self.server_mut(server).jobs.remove(&job);
        Some(server)
    }

    /// Migrates `job` to `target`. Returns `false` (and leaves the job in
    /// place) if it does not fit by declared request.
    pub fn migrate(&mut self, job: JobId, target: ServerId) -> bool {
        let Some(&source) = self.placements.get(&job) else {
            return false;
        };
        if source == target {
            return false;
        }
        let Some(demand) = self.server(source).jobs.get(&job).copied() else {
            return false;
        };
        if !self.fits(target, demand) {
            return false;
        }
        self.server_mut(source).jobs.remove(&job);
        self.server_mut(target).jobs.insert(job, demand);
        self.placements.insert(job, target);
        true
    }

    /// Migrates `job` to `target`, admitting by *observed actual* CPU
    /// (monitored packing) rather than declared requests. Returns `false`
    /// if it does not fit.
    pub fn migrate_actual(&mut self, job: JobId, target: ServerId) -> bool {
        let Some(&source) = self.placements.get(&job) else {
            return false;
        };
        if source == target {
            return false;
        }
        let Some(demand) = self.server(source).jobs.get(&job).copied() else {
            return false;
        };
        if !self.fits_actual(target, demand) {
            return false;
        }
        self.server_mut(source).jobs.remove(&job);
        self.server_mut(target).jobs.insert(job, demand);
        self.placements.insert(job, target);
        true
    }

    /// Powers a server off. Only legal when it hosts no jobs.
    ///
    /// # Panics
    ///
    /// Panics if jobs are still placed on it.
    pub fn park(&mut self, id: ServerId) {
        assert!(
            self.server(id).jobs.is_empty(),
            "cannot park busy server {id:?}"
        );
        self.server_mut(id).state = PowerState::Parked;
    }

    /// Powers a parked server back on.
    pub fn wake(&mut self, id: ServerId) {
        self.server_mut(id).state = PowerState::On;
    }

    /// Instantaneous power draw of `id`, in watts.
    #[must_use]
    pub fn server_power(&self, id: ServerId) -> f64 {
        let s = self.server(id);
        match s.state {
            PowerState::Parked => 0.0,
            PowerState::On => {
                let util = (s.cpu_actual() / s.spec.cpu_capacity).min(1.0);
                s.spec.idle_watts + (s.spec.peak_watts - s.spec.idle_watts) * util
            }
        }
    }

    /// Total cluster power, in watts.
    #[must_use]
    pub fn total_power(&self) -> f64 {
        (0..self.servers.len())
            .map(|i| self.server_power(ServerId(i)))
            .sum()
    }

    /// Servers currently powered on.
    #[must_use]
    pub fn servers_on(&self) -> usize {
        self.servers
            .iter()
            .filter(|s| s.state == PowerState::On)
            .count()
    }

    /// Number of placed jobs.
    #[must_use]
    pub fn jobs_placed(&self) -> usize {
        self.placements.len()
    }

    /// Servers whose *actual* CPU demand exceeds capacity right now
    /// (overcommit → SLO risk).
    #[must_use]
    pub fn overloaded_servers(&self) -> Vec<ServerId> {
        (0..self.servers.len())
            .map(ServerId)
            .filter(|&id| self.utilisation(id) > 1.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(cpu: f64, mem: u64) -> Demand {
        Demand {
            cpu_requested: cpu,
            cpu_actual: cpu * 0.6,
            mem,
        }
    }

    #[test]
    fn place_remove_roundtrip() {
        let mut cluster = Cluster::new(2, ServerSpec::typical());
        let job = JobId(1);
        cluster.place(job, ServerId(0), demand(4.0, 1024));
        assert_eq!(cluster.placement(job), Some(ServerId(0)));
        assert_eq!(cluster.jobs_placed(), 1);
        assert_eq!(cluster.jobs_on(ServerId(0)), vec![job]);
        assert_eq!(cluster.remove(job), Some(ServerId(0)));
        assert_eq!(cluster.placement(job), None);
        assert_eq!(cluster.remove(job), None);
    }

    #[test]
    fn capacity_accounting() {
        let mut cluster = Cluster::new(1, ServerSpec::typical());
        assert_eq!(cluster.cpu_free_requested(ServerId(0)), 16.0);
        cluster.place(JobId(1), ServerId(0), demand(10.0, 1000));
        assert_eq!(cluster.cpu_free_requested(ServerId(0)), 6.0);
        assert!(cluster.fits(ServerId(0), demand(6.0, 1000)));
        assert!(!cluster.fits(ServerId(0), demand(6.5, 1000)));
        assert!(!cluster.fits(ServerId(0), demand(1.0, 64 * 1024)));
    }

    #[test]
    fn actual_vs_requested_packing() {
        let mut cluster = Cluster::new(1, ServerSpec::typical());
        // Requested 16 cores, actually using 9.6.
        cluster.place(JobId(1), ServerId(0), demand(16.0, 1024));
        assert!(!cluster.fits(ServerId(0), demand(1.0, 1024)));
        assert!(cluster.fits_actual(
            ServerId(0),
            Demand {
                cpu_requested: 4.0,
                cpu_actual: 4.0,
                mem: 1024
            }
        ));
    }

    #[test]
    fn power_model_linear() {
        let mut cluster = Cluster::new(1, ServerSpec::typical());
        assert_eq!(cluster.server_power(ServerId(0)), 95.0);
        cluster.place(
            JobId(1),
            ServerId(0),
            Demand {
                cpu_requested: 8.0,
                cpu_actual: 8.0,
                mem: 0,
            },
        );
        // 50% utilisation → halfway between idle and peak.
        assert!((cluster.server_power(ServerId(0)) - 162.5).abs() < 1e-9);
    }

    #[test]
    fn park_and_wake() {
        let mut cluster = Cluster::new(2, ServerSpec::typical());
        cluster.park(ServerId(1));
        assert_eq!(cluster.servers_on(), 1);
        assert_eq!(cluster.server_power(ServerId(1)), 0.0);
        assert!(!cluster.fits(ServerId(1), demand(1.0, 10)));
        assert_eq!(cluster.cpu_free_requested(ServerId(1)), 0.0);
        cluster.wake(ServerId(1));
        assert!(cluster.fits(ServerId(1), demand(1.0, 10)));
    }

    #[test]
    #[should_panic(expected = "cannot park busy server ServerId(0)")]
    fn parking_busy_server_panics() {
        let mut cluster = Cluster::new(1, ServerSpec::typical());
        cluster.place(JobId(1), ServerId(0), demand(1.0, 10));
        cluster.park(ServerId(0));
    }

    #[test]
    fn migration_moves_load() {
        let mut cluster = Cluster::new(2, ServerSpec::typical());
        cluster.place(JobId(1), ServerId(0), demand(4.0, 100));
        assert!(cluster.migrate(JobId(1), ServerId(1)));
        assert_eq!(cluster.placement(JobId(1)), Some(ServerId(1)));
        assert_eq!(cluster.jobs_on(ServerId(0)), vec![]);
        // Migration to the same server is a no-op failure.
        assert!(!cluster.migrate(JobId(1), ServerId(1)));
        // Migration that does not fit fails and leaves placement intact.
        cluster.place(JobId(2), ServerId(0), demand(15.0, 100));
        assert!(
            !cluster.migrate(JobId(2), ServerId(1)),
            "15 requested cores cannot join the 4 already on server 1"
        );
        let big = JobId(3);
        cluster.place(big, ServerId(1), demand(10.0, 100));
        assert!(!cluster.migrate(big, ServerId(0)));
        assert_eq!(cluster.placement(big), Some(ServerId(1)));
    }

    #[test]
    fn overload_detection() {
        let mut cluster = Cluster::new(1, ServerSpec::typical());
        cluster.place(
            JobId(1),
            ServerId(0),
            Demand {
                cpu_requested: 8.0,
                cpu_actual: 17.0,
                mem: 0,
            },
        );
        assert_eq!(cluster.overloaded_servers(), vec![ServerId(0)]);
    }
}
