//! The discrete-event cluster simulation driving benchmark E3.

use crate::cluster::{Cluster, JobId, ServerSpec};
use crate::schedulers::Scheduler;
use crate::workload::JobArrival;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of servers.
    pub servers: usize,
    /// Hardware profile of every server.
    pub spec: ServerSpec,
    /// Housekeeping/accounting tick, in seconds.
    pub tick_secs: u64,
    /// Record a time-series sample every this many ticks (0 = no series).
    pub sample_every: u64,
    /// Relative noise on per-tick usage observations fed to schedulers
    /// (0.1 = ±10 %; monitoring must smooth this out).
    pub observation_noise: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            servers: 100,
            spec: ServerSpec::typical(),
            tick_secs: 60,
            sample_every: 10,
            observation_noise: 0.1,
        }
    }
}

/// One point of the recorded time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Simulation time, seconds.
    pub t: u64,
    /// Instantaneous cluster power, watts.
    pub watts: f64,
    /// Servers powered on.
    pub servers_on: usize,
    /// Jobs currently placed.
    pub jobs: usize,
}

/// Results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Scheduler name.
    pub scheduler: String,
    /// Total energy consumed, joules.
    pub energy_joules: f64,
    /// Mean number of powered-on servers.
    pub avg_servers_on: f64,
    /// Peak number of powered-on servers.
    pub peak_servers_on: usize,
    /// Total container migrations.
    pub migrations: u64,
    /// Jobs that could not be placed.
    pub rejections: u64,
    /// Ticks during which at least one server was overcommitted on actual
    /// CPU (SLO risk from monitored packing).
    pub overload_ticks: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Sampled time series.
    pub series: Vec<Sample>,
}

impl SimResult {
    /// Energy in kWh, for human-readable reports.
    #[must_use]
    pub fn energy_kwh(&self) -> f64 {
        self.energy_joules / 3.6e6
    }

    /// Relative saving of `self` versus `baseline` in percent (positive
    /// means `self` used less energy).
    #[must_use]
    pub fn savings_vs(&self, baseline: &SimResult) -> f64 {
        (1.0 - self.energy_joules / baseline.energy_joules) * 100.0
    }
}

/// Runs `scheduler` over the arrival trace.
pub fn simulate(
    scheduler: &mut dyn Scheduler,
    jobs: &[JobArrival],
    config: SimConfig,
) -> SimResult {
    let mut cluster = Cluster::new(config.servers, config.spec);
    let mut departures: BinaryHeap<Reverse<(u64, JobId)>> = BinaryHeap::new();
    let duration = jobs
        .iter()
        .map(|j| j.arrival + j.duration)
        .max()
        .unwrap_or(0);

    let mut result = SimResult {
        scheduler: scheduler.name().to_string(),
        energy_joules: 0.0,
        avg_servers_on: 0.0,
        peak_servers_on: 0,
        migrations: 0,
        rejections: 0,
        overload_ticks: 0,
        completed: 0,
        series: Vec::new(),
    };

    let mut observation_rng = StdRng::seed_from_u64(0x0b5e);
    let mut next_arrival = 0usize;
    let mut t = 0u64;
    let mut ticks = 0u64;
    let mut servers_on_sum = 0u64;
    // Run past the nominal end until every arrival is processed and every
    // departure has drained (departures are scheduled from tick-aligned
    // times and can land after `duration`).
    while t <= duration + config.tick_secs || next_arrival < jobs.len() || !departures.is_empty() {
        // Departures due by now.
        while let Some(&Reverse((when, job))) = departures.peek() {
            if when > t {
                break;
            }
            departures.pop();
            if cluster.remove(job).is_some() {
                result.completed += 1;
            }
            scheduler.on_departure(job);
        }
        // Arrivals due by now.
        while next_arrival < jobs.len() && jobs[next_arrival].arrival <= t {
            let arrival = &jobs[next_arrival];
            let job = JobId(next_arrival as u64);
            match scheduler.place(&mut cluster, job, arrival.demand, t) {
                Some(server) => {
                    cluster.place(job, server, arrival.demand);
                    departures.push(Reverse((t + arrival.duration, job)));
                }
                None => result.rejections += 1,
            }
            next_arrival += 1;
        }
        // Monitoring: noisy per-job usage samples, as a metrics agent on
        // each server would report them.
        for server in cluster.server_ids().collect::<Vec<_>>() {
            for job in cluster.jobs_on(server) {
                if let Some(demand) = cluster.demand(job) {
                    let noise = 1.0
                        + observation_rng.gen_range(
                            -config.observation_noise..=config.observation_noise.max(1e-12),
                        );
                    scheduler.observe(job, demand.cpu_actual * noise);
                }
            }
        }
        // Housekeeping.
        let report = scheduler.tick(&mut cluster, t);
        result.migrations += report.migrations;

        // Accounting.
        let watts = cluster.total_power();
        result.energy_joules += watts * config.tick_secs as f64;
        let on = cluster.servers_on();
        servers_on_sum += on as u64;
        result.peak_servers_on = result.peak_servers_on.max(on);
        if !cluster.overloaded_servers().is_empty() {
            result.overload_ticks += 1;
        }
        if config.sample_every > 0 && ticks.is_multiple_of(config.sample_every) {
            result.series.push(Sample {
                t,
                watts,
                servers_on: on,
                jobs: cluster.jobs_placed(),
            });
        }
        ticks += 1;
        t += config.tick_secs;
    }
    result.avg_servers_on = servers_on_sum as f64 / ticks.max(1) as f64;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedulers::{
        FirstFitScheduler, GenPackScheduler, RandomScheduler, SpreadScheduler,
    };
    use crate::workload::WorkloadConfig;

    fn small_trace() -> Vec<JobArrival> {
        WorkloadConfig {
            duration: 4 * 3600,
            churn_per_hour: 60.0,
            system_services: 5,
            long_running: 10,
            ..WorkloadConfig::default()
        }
        .generate()
    }

    fn config() -> SimConfig {
        SimConfig {
            servers: 30,
            ..SimConfig::default()
        }
    }

    #[test]
    fn simulation_conserves_jobs() {
        let trace = small_trace();
        let mut scheduler = FirstFitScheduler;
        let result = simulate(&mut scheduler, &trace, config());
        assert_eq!(
            result.completed + result.rejections,
            trace.len() as u64,
            "every job either completes or is rejected"
        );
        assert!(result.energy_joules > 0.0);
        assert!(result.avg_servers_on > 0.0);
        assert!(!result.series.is_empty());
    }

    #[test]
    fn genpack_saves_energy_vs_baselines() {
        let trace = small_trace();
        let genpack = simulate(&mut GenPackScheduler::new(), &trace, config());
        let spread = simulate(&mut SpreadScheduler, &trace, config());
        let random = simulate(&mut RandomScheduler::new(1), &trace, config());
        assert!(
            genpack.energy_joules < spread.energy_joules,
            "genpack {} vs spread {}",
            genpack.energy_kwh(),
            spread.energy_kwh()
        );
        assert!(genpack.energy_joules < random.energy_joules);
        assert!(genpack.savings_vs(&spread) > 5.0);
        assert!(genpack.migrations > 0);
    }

    #[test]
    fn genpack_rejects_no_more_than_first_fit() {
        let trace = small_trace();
        let genpack = simulate(&mut GenPackScheduler::new(), &trace, config());
        let first_fit = simulate(&mut FirstFitScheduler, &trace, config());
        // Consolidation must not come at the cost of dropping load.
        assert!(genpack.rejections <= first_fit.rejections + trace.len() as u64 / 100);
    }

    #[test]
    fn deterministic_runs() {
        let trace = small_trace();
        let a = simulate(&mut GenPackScheduler::new(), &trace, config());
        let b = simulate(&mut GenPackScheduler::new(), &trace, config());
        assert_eq!(a.energy_joules, b.energy_joules);
        assert_eq!(a.migrations, b.migrations);
    }

    #[test]
    fn savings_math() {
        let base = SimResult {
            scheduler: "a".into(),
            energy_joules: 100.0,
            avg_servers_on: 0.0,
            peak_servers_on: 0,
            migrations: 0,
            rejections: 0,
            overload_ticks: 0,
            completed: 0,
            series: vec![],
        };
        let better = SimResult {
            energy_joules: 77.0,
            scheduler: "b".into(),
            ..base.clone()
        };
        assert!((better.savings_vs(&base) - 23.0).abs() < 1e-9);
    }
}
