//! Runtime usage monitoring.
//!
//! GenPack "combines runtime monitoring of system containers to learn
//! their requirements and properties, and a scheduler that manages
//! different generations of servers" (§IV). This module is the monitoring
//! half: per-container exponential moving averages of observed CPU use,
//! with a stability test the scheduler consults before promoting a
//! container out of the nursery — an unstable container's requirements are
//! not yet "learned".

use crate::cluster::JobId;
use securecloud_telemetry::stats::Ema;
use std::collections::BTreeMap;

/// Exponential-moving-average usage monitor.
///
/// ```
/// use securecloud_genpack::cluster::JobId;
/// use securecloud_genpack::monitor::UsageMonitor;
///
/// let mut monitor = UsageMonitor::new(0.2);
/// for _ in 0..50 {
///     monitor.observe(JobId(1), 4.0);
/// }
/// assert!((monitor.estimate(JobId(1)).unwrap() - 4.0).abs() < 0.1);
/// assert!(monitor.is_stable(JobId(1)));
/// ```
#[derive(Debug, Clone)]
pub struct UsageMonitor {
    alpha: f64,
    min_samples: u64,
    stability_cv: f64,
    estimates: BTreeMap<JobId, Ema>,
}

impl UsageMonitor {
    /// Creates a monitor with smoothing factor `alpha` (0 < alpha <= 1);
    /// defaults: 8 samples minimum, 25 % coefficient of variation for
    /// stability.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        UsageMonitor {
            alpha,
            min_samples: 8,
            stability_cv: 0.25,
            estimates: BTreeMap::new(),
        }
    }

    /// Records one CPU-usage sample (cores) for `job`.
    pub fn observe(&mut self, job: JobId, cpu_used: f64) {
        let alpha = self.alpha;
        self.estimates
            .entry(job)
            .or_insert_with(|| Ema::new(alpha))
            .observe(cpu_used);
    }

    /// The learned mean usage, if any samples exist.
    #[must_use]
    pub fn estimate(&self, job: JobId) -> Option<f64> {
        self.estimates.get(&job).map(Ema::mean)
    }

    /// A conservative capacity estimate: mean plus `sigmas` standard
    /// deviations (what a careful packer reserves).
    #[must_use]
    pub fn estimate_with_headroom(&self, job: JobId, sigmas: f64) -> Option<f64> {
        self.estimates.get(&job).map(|e| e.headroom(sigmas))
    }

    /// Whether the job's usage has been *learned*: enough samples and a
    /// coefficient of variation below the stability threshold.
    #[must_use]
    pub fn is_stable(&self, job: JobId) -> bool {
        self.estimates.get(&job).is_some_and(|e| {
            e.samples() >= self.min_samples
                && (e.mean().abs() < 1e-9 || e.stddev() / e.mean().abs() <= self.stability_cv)
        })
    }

    /// Drops a departed job's state.
    pub fn forget(&mut self, job: JobId) {
        self.estimates.remove(&job);
    }

    /// Number of jobs currently tracked.
    #[must_use]
    pub fn tracked(&self) -> usize {
        self.estimates.len()
    }
}

impl Default for UsageMonitor {
    fn default() -> Self {
        Self::new(0.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn converges_on_noisy_signal() {
        let mut monitor = UsageMonitor::new(0.1);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            monitor.observe(JobId(1), 3.0 + rng.gen_range(-0.3..0.3));
        }
        let estimate = monitor.estimate(JobId(1)).unwrap();
        assert!((estimate - 3.0).abs() < 0.2, "estimate {estimate}");
        assert!(monitor.is_stable(JobId(1)));
    }

    #[test]
    fn unstable_until_enough_samples() {
        let mut monitor = UsageMonitor::new(0.2);
        for _ in 0..3 {
            monitor.observe(JobId(1), 2.0);
        }
        assert!(!monitor.is_stable(JobId(1)), "too few samples");
        for _ in 0..10 {
            monitor.observe(JobId(1), 2.0);
        }
        assert!(monitor.is_stable(JobId(1)));
    }

    #[test]
    fn erratic_job_never_stabilises() {
        let mut monitor = UsageMonitor::new(0.3);
        for i in 0..100 {
            // Oscillates 1..9 cores: CV stays far above 25 %.
            monitor.observe(JobId(1), if i % 2 == 0 { 1.0 } else { 9.0 });
        }
        assert!(!monitor.is_stable(JobId(1)));
        // Headroom estimate exceeds the mean.
        let mean = monitor.estimate(JobId(1)).unwrap();
        let padded = monitor.estimate_with_headroom(JobId(1), 2.0).unwrap();
        assert!(padded > mean + 1.0);
    }

    #[test]
    fn tracks_jobs_independently_and_forgets() {
        let mut monitor = UsageMonitor::default();
        monitor.observe(JobId(1), 1.0);
        monitor.observe(JobId(2), 8.0);
        assert_eq!(monitor.tracked(), 2);
        assert!(monitor.estimate(JobId(1)).unwrap() < monitor.estimate(JobId(2)).unwrap());
        monitor.forget(JobId(1));
        assert_eq!(monitor.tracked(), 1);
        assert!(monitor.estimate(JobId(1)).is_none());
        assert!(!monitor.is_stable(JobId(99)));
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn invalid_alpha_panics() {
        let _ = UsageMonitor::new(0.0);
    }

    #[test]
    fn adapts_to_level_shift() {
        let mut monitor = UsageMonitor::new(0.2);
        for _ in 0..50 {
            monitor.observe(JobId(1), 2.0);
        }
        for _ in 0..50 {
            monitor.observe(JobId(1), 6.0);
        }
        let estimate = monitor.estimate(JobId(1)).unwrap();
        assert!(estimate > 5.5, "EMA should track the new level: {estimate}");
    }
}
