//! Synthetic data-center container workloads.
//!
//! GenPack's evaluation uses "typical data-center workloads": a mix of
//! long-running system services, user-facing long-running services, and a
//! large churn of short batch jobs — with *declared* resource requests that
//! overestimate *actual* usage (the gap monitoring exploits).

use crate::cluster::Demand;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Class of a container, in the sense of the GenPack generations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobClass {
    /// Infrastructure services running for the whole trace.
    System,
    /// Long-running application services (hours).
    LongRunning,
    /// Batch jobs (tens of minutes).
    Batch,
    /// Short tasks (minutes).
    Short,
}

/// One container arrival in the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct JobArrival {
    /// Arrival time, seconds from trace start.
    pub arrival: u64,
    /// Lifetime in seconds (unknown to the scheduler until departure).
    pub duration: u64,
    /// Resource demand (requested vs actual).
    pub demand: Demand,
    /// Job class (used by analysis, not revealed to schedulers).
    pub class: JobClass,
}

/// Workload generator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Trace duration in seconds.
    pub duration: u64,
    /// Mean arrivals per hour for short/batch jobs.
    pub churn_per_hour: f64,
    /// Number of system services started at t=0.
    pub system_services: usize,
    /// Number of long-running services started in the first hour.
    pub long_running: usize,
    /// Ratio of actual to requested CPU (overestimation gap), 0..1.
    pub actual_to_requested: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            duration: 24 * 3600,
            churn_per_hour: 120.0,
            system_services: 20,
            long_running: 60,
            actual_to_requested: 0.6,
            seed: 1,
        }
    }
}

impl WorkloadConfig {
    /// Generates the arrival trace, sorted by arrival time.
    #[must_use]
    pub fn generate(&self) -> Vec<JobArrival> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut jobs = Vec::new();

        for _ in 0..self.system_services {
            let requested = rng.gen_range(0.5..2.0);
            jobs.push(JobArrival {
                arrival: 0,
                duration: self.duration,
                demand: self.demand(requested, rng.gen_range(512..4096)),
                class: JobClass::System,
            });
        }
        for _ in 0..self.long_running {
            let requested = rng.gen_range(1.0..4.0);
            let arrival = rng.gen_range(0..3600);
            let duration = rng.gen_range(6 * 3600..24 * 3600);
            jobs.push(JobArrival {
                arrival,
                duration: duration.min(self.duration.saturating_sub(arrival)).max(1),
                demand: self.demand(requested, rng.gen_range(1024..8192)),
                class: JobClass::LongRunning,
            });
        }
        // Short/batch churn: exponential inter-arrival times with a mild
        // diurnal modulation (busier in the middle of the trace).
        let mut t = 0f64;
        while (t as u64) < self.duration {
            let phase = (t / self.duration as f64) * std::f64::consts::PI;
            let rate = (self.churn_per_hour / 3600.0) * (0.6 + 0.8 * phase.sin());
            let gap = -rng.gen_range(1e-9f64..1.0).ln() / rate.max(1e-9);
            t += gap;
            let arrival = t as u64;
            if arrival >= self.duration {
                break;
            }
            let is_batch = rng.gen_bool(0.4);
            let (duration, requested, class) = if is_batch {
                (
                    rng.gen_range(10 * 60..60 * 60),
                    rng.gen_range(1.0..6.0),
                    JobClass::Batch,
                )
            } else {
                (
                    rng.gen_range(60..10 * 60),
                    rng.gen_range(0.25..2.0),
                    JobClass::Short,
                )
            };
            jobs.push(JobArrival {
                arrival,
                duration: duration.min(self.duration - arrival).max(1),
                demand: self.demand(requested, rng.gen_range(256..4096)),
                class,
            });
        }
        jobs.sort_by_key(|j| j.arrival);
        jobs
    }

    fn demand(&self, requested: f64, mem: u64) -> Demand {
        Demand {
            cpu_requested: requested,
            cpu_actual: requested * self.actual_to_requested,
            mem,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let config = WorkloadConfig::default();
        assert_eq!(config.generate(), config.generate());
        let other = WorkloadConfig {
            seed: 2,
            ..WorkloadConfig::default()
        };
        assert_ne!(config.generate(), other.generate());
    }

    #[test]
    fn sorted_and_bounded() {
        let config = WorkloadConfig::default();
        let jobs = config.generate();
        assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        for job in &jobs {
            assert!(job.arrival < config.duration);
            assert!(job.duration >= 1);
            assert!(job.arrival + job.duration <= config.duration + 1);
            assert!(job.demand.cpu_actual <= job.demand.cpu_requested);
        }
    }

    #[test]
    fn class_mix_present() {
        let jobs = WorkloadConfig::default().generate();
        let count = |c: JobClass| jobs.iter().filter(|j| j.class == c).count();
        assert_eq!(count(JobClass::System), 20);
        assert_eq!(count(JobClass::LongRunning), 60);
        assert!(count(JobClass::Short) > 100);
        assert!(count(JobClass::Batch) > 100);
    }

    #[test]
    fn churn_scales_with_rate() {
        let low = WorkloadConfig {
            churn_per_hour: 30.0,
            ..WorkloadConfig::default()
        };
        let high = WorkloadConfig {
            churn_per_hour: 300.0,
            ..WorkloadConfig::default()
        };
        assert!(high.generate().len() > 2 * low.generate().len());
    }
}
