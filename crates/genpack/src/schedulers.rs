//! Container schedulers: GenPack and the non-generational baselines.

use crate::cluster::{Cluster, Demand, JobId, PowerState, ServerId};
use crate::monitor::UsageMonitor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Actions a scheduler reports for one housekeeping tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Containers migrated this tick.
    pub migrations: u64,
    /// Servers parked this tick.
    pub parked: u64,
}

/// A container scheduler.
pub trait Scheduler {
    /// Human-readable name used in benchmark output.
    fn name(&self) -> &'static str;

    /// Chooses a server for an arriving job (waking parked servers is the
    /// scheduler's prerogative). `None` rejects the job.
    fn place(
        &mut self,
        cluster: &mut Cluster,
        job: JobId,
        demand: Demand,
        now: u64,
    ) -> Option<ServerId>;

    /// Periodic housekeeping: migrations, consolidation, parking.
    fn tick(&mut self, _cluster: &mut Cluster, _now: u64) -> TickReport {
        TickReport::default()
    }

    /// Notification that a job departed.
    fn on_departure(&mut self, _job: JobId) {}

    /// A monitoring sample: `job` was observed using `cpu_used` cores.
    /// Schedulers that learn requirements (GenPack) override this.
    fn observe(&mut self, _job: JobId, _cpu_used: f64) {}
}

fn wake_any_parked(cluster: &mut Cluster) -> Option<ServerId> {
    let parked = cluster
        .server_ids()
        .find(|&id| cluster.power_state(id) == PowerState::Parked)?;
    cluster.wake(parked);
    Some(parked)
}

/// Spread scheduler (Docker-Swarm style): place on the powered-on server
/// with the most free capacity. Keeps load — and power draw — spread across
/// the whole cluster.
#[derive(Debug, Default)]
pub struct SpreadScheduler;

impl Scheduler for SpreadScheduler {
    fn name(&self) -> &'static str {
        "spread"
    }

    fn place(
        &mut self,
        cluster: &mut Cluster,
        _job: JobId,
        demand: Demand,
        _now: u64,
    ) -> Option<ServerId> {
        cluster
            .server_ids()
            .filter(|&id| cluster.fits(id, demand))
            .max_by(|&a, &b| {
                cluster
                    .cpu_free_requested(a)
                    .total_cmp(&cluster.cpu_free_requested(b))
            })
    }
}

/// First-fit bin packing on declared requests; parks servers that drain
/// empty, wakes them on demand — but never migrates, so fragmentation
/// accumulates as jobs churn.
#[derive(Debug, Default)]
pub struct FirstFitScheduler;

impl Scheduler for FirstFitScheduler {
    fn name(&self) -> &'static str {
        "first-fit"
    }

    fn place(
        &mut self,
        cluster: &mut Cluster,
        _job: JobId,
        demand: Demand,
        _now: u64,
    ) -> Option<ServerId> {
        if let Some(id) = cluster.server_ids().find(|&id| cluster.fits(id, demand)) {
            return Some(id);
        }
        let woken = wake_any_parked(cluster)?;
        cluster.fits(woken, demand).then_some(woken)
    }

    fn tick(&mut self, cluster: &mut Cluster, _now: u64) -> TickReport {
        let mut report = TickReport::default();
        for id in cluster.server_ids().collect::<Vec<_>>() {
            if cluster.power_state(id) == PowerState::On && cluster.jobs_on(id).is_empty() {
                cluster.park(id);
                report.parked += 1;
            }
        }
        report
    }
}

/// Uniform-random placement among fitting servers; never parks anything.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates the scheduler with a deterministic seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &'static str {
        "random"
    }

    fn place(
        &mut self,
        cluster: &mut Cluster,
        _job: JobId,
        demand: Demand,
        _now: u64,
    ) -> Option<ServerId> {
        let candidates: Vec<ServerId> = cluster
            .server_ids()
            .filter(|&id| cluster.fits(id, demand))
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[self.rng.gen_range(0..candidates.len())])
        }
    }
}

/// Generations a server or container can belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Generation {
    /// Newly arrived containers under monitoring.
    Nursery,
    /// Containers that survived the nursery.
    Young,
    /// Long-running, stable containers.
    Old,
}

/// GenPack: partitions servers into generations, promotes containers as
/// they age, packs promoted containers by *monitored actual* usage, and
/// consolidates + parks under-utilised servers (paper §IV, §VI).
#[derive(Debug)]
pub struct GenPackScheduler {
    /// Seconds before a container leaves the nursery.
    pub nursery_secs: u64,
    /// Seconds before a container is considered old.
    pub old_secs: u64,
    /// Utilisation below which a server becomes a consolidation source.
    pub consolidation_threshold: f64,
    job_arrivals: BTreeMap<JobId, u64>,
    job_gen: BTreeMap<JobId, Generation>,
    server_gen: BTreeMap<ServerId, Generation>,
    monitor: UsageMonitor,
}

impl Default for GenPackScheduler {
    fn default() -> Self {
        GenPackScheduler {
            nursery_secs: 300,
            old_secs: 3600,
            consolidation_threshold: 0.55,
            job_arrivals: BTreeMap::new(),
            job_gen: BTreeMap::new(),
            server_gen: BTreeMap::new(),
            monitor: UsageMonitor::default(),
        }
    }
}

impl GenPackScheduler {
    /// Creates a GenPack scheduler with default thresholds.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy with different promotion thresholds.
    #[must_use]
    pub fn with_promotion_secs(mut self, nursery_secs: u64, old_secs: u64) -> Self {
        self.nursery_secs = nursery_secs;
        self.old_secs = old_secs;
        self
    }

    /// Returns a copy with a different consolidation threshold (a server
    /// below this utilisation becomes a drain candidate; 0 disables
    /// consolidation entirely).
    #[must_use]
    pub fn with_consolidation_threshold(mut self, threshold: f64) -> Self {
        self.consolidation_threshold = threshold;
        self
    }

    /// Servers currently assigned to `generation`.
    fn servers_of(&self, cluster: &Cluster, generation: Generation) -> Vec<ServerId> {
        cluster
            .server_ids()
            .filter(|id| self.server_gen.get(id) == Some(&generation))
            .collect()
    }

    /// Finds or recruits a server of `generation` where `fits` holds.
    fn find_or_recruit(
        &mut self,
        cluster: &mut Cluster,
        generation: Generation,
        fits: impl Fn(&Cluster, ServerId) -> bool,
    ) -> Option<ServerId> {
        // Pack: prefer the most utilised server of the generation that fits.
        let mut members = self.servers_of(cluster, generation);
        members.sort_by(|&a, &b| cluster.utilisation(b).total_cmp(&cluster.utilisation(a)));
        if let Some(&id) = members.iter().find(|&&id| fits(cluster, id)) {
            return Some(id);
        }
        // Recruit: an unassigned ON server, else wake a parked one.
        let unassigned = cluster.server_ids().find(|id| {
            !self.server_gen.contains_key(id) && cluster.power_state(*id) == PowerState::On
        });
        let recruit = match unassigned {
            Some(id) => Some(id),
            None => wake_any_parked(cluster).inspect(|id| {
                self.server_gen.remove(id);
            }),
        }?;
        self.server_gen.insert(recruit, generation);
        fits(cluster, recruit).then_some(recruit)
    }

    fn promote_due_jobs(&mut self, cluster: &mut Cluster, now: u64) -> u64 {
        let mut migrations = 0;
        let due: Vec<(JobId, Generation)> = self
            .job_arrivals
            .iter()
            .filter_map(|(&job, &arrival)| {
                let age = now.saturating_sub(arrival);
                let current = self.job_gen.get(&job).copied()?;
                let target = if age >= self.old_secs {
                    Generation::Old
                } else if age >= self.nursery_secs {
                    Generation::Young
                } else {
                    Generation::Nursery
                };
                if target == current {
                    return None;
                }
                // Requirements must be *learned* before a container leaves
                // the nursery (monitored packing depends on the estimate);
                // grossly overdue containers are promoted anyway so an
                // erratic one cannot squat in the nursery forever.
                let overdue = age >= self.nursery_secs.saturating_mul(4);
                if current == Generation::Nursery && !self.monitor.is_stable(job) && !overdue {
                    return None;
                }
                Some((job, target))
            })
            .collect();
        for (job, target) in due {
            let Some(demand) = cluster.demand(job) else {
                continue;
            };
            // Promoted containers are monitored: pack on actual usage.
            let server = self.find_or_recruit(cluster, target, |c, id| c.fits_actual(id, demand));
            if let Some(server) = server {
                if cluster.migrate_actual(job, server) {
                    migrations += 1;
                }
                // Even if migration failed (race with fits check), record
                // the logical generation so we do not retry every tick.
                self.job_gen.insert(job, target);
            }
        }
        migrations
    }

    fn consolidate(&mut self, cluster: &mut Cluster) -> (u64, u64) {
        let mut migrations = 0;
        let mut parked = 0;
        for generation in [Generation::Old, Generation::Young, Generation::Nursery] {
            let mut members = self.servers_of(cluster, generation);
            // Least utilised first: drain candidates.
            members.sort_by(|&a, &b| cluster.utilisation(a).total_cmp(&cluster.utilisation(b)));
            for &source in &members {
                if cluster.utilisation(source) >= self.consolidation_threshold {
                    continue;
                }
                let jobs = cluster.jobs_on(source);
                // Try to move every job to a *different* same-generation
                // server, packing tightest-first.
                for job in jobs {
                    let Some(demand) = cluster.demand(job) else {
                        continue;
                    };
                    let mut targets = self.servers_of(cluster, generation);
                    targets.retain(|&t| t != source);
                    targets.sort_by(|&a, &b| {
                        cluster.utilisation(b).total_cmp(&cluster.utilisation(a))
                    });
                    for target in targets {
                        if cluster.fits_actual(target, demand)
                            && cluster.migrate_actual(job, target)
                        {
                            migrations += 1;
                            break;
                        }
                    }
                }
                if cluster.jobs_on(source).is_empty() {
                    cluster.park(source);
                    self.server_gen.remove(&source);
                    parked += 1;
                }
            }
        }
        // Park any empty unassigned servers too.
        for id in cluster.server_ids().collect::<Vec<_>>() {
            if cluster.power_state(id) == PowerState::On
                && cluster.jobs_on(id).is_empty()
                && !self.server_gen.contains_key(&id)
            {
                cluster.park(id);
                parked += 1;
            }
        }
        (migrations, parked)
    }
}

impl Scheduler for GenPackScheduler {
    fn name(&self) -> &'static str {
        "genpack"
    }

    fn place(
        &mut self,
        cluster: &mut Cluster,
        job: JobId,
        demand: Demand,
        now: u64,
    ) -> Option<ServerId> {
        // New, unmonitored containers are admitted by declared request.
        let server = self.find_or_recruit(cluster, Generation::Nursery, |c, id| c.fits(id, demand));
        let server = match server {
            Some(s) => Some(s),
            // Nursery full: fall back to any fitting server to avoid
            // rejecting load (availability beats purity).
            None => cluster.server_ids().find(|&id| cluster.fits(id, demand)),
        }?;
        self.job_arrivals.insert(job, now);
        self.job_gen.insert(job, Generation::Nursery);
        Some(server)
    }

    fn tick(&mut self, cluster: &mut Cluster, now: u64) -> TickReport {
        let promoted = self.promote_due_jobs(cluster, now);
        let (consolidated, parked) = self.consolidate(cluster);
        TickReport {
            migrations: promoted + consolidated,
            parked,
        }
    }

    fn on_departure(&mut self, job: JobId) {
        self.job_arrivals.remove(&job);
        self.job_gen.remove(&job);
        self.monitor.forget(job);
    }

    fn observe(&mut self, job: JobId, cpu_used: f64) {
        self.monitor.observe(job, cpu_used);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ServerSpec;

    fn demand(cpu: f64) -> Demand {
        Demand {
            cpu_requested: cpu,
            cpu_actual: cpu * 0.6,
            mem: 1024,
        }
    }

    #[test]
    fn spread_picks_emptiest() {
        let mut cluster = Cluster::new(3, ServerSpec::typical());
        cluster.place(JobId(100), ServerId(0), demand(8.0));
        cluster.place(JobId(101), ServerId(1), demand(4.0));
        let mut scheduler = SpreadScheduler;
        let chosen = scheduler
            .place(&mut cluster, JobId(1), demand(1.0), 0)
            .unwrap();
        assert_eq!(chosen, ServerId(2));
    }

    #[test]
    fn first_fit_packs_low_indices_and_parks_empties() {
        let mut cluster = Cluster::new(3, ServerSpec::typical());
        let mut scheduler = FirstFitScheduler;
        for i in 0..4 {
            let s = scheduler
                .place(&mut cluster, JobId(i), demand(4.0), 0)
                .unwrap();
            cluster.place(JobId(i), s, demand(4.0));
        }
        assert_eq!(cluster.jobs_on(ServerId(0)).len(), 4);
        let report = scheduler.tick(&mut cluster, 0);
        assert_eq!(report.parked, 2);
        assert_eq!(cluster.servers_on(), 1);
        // Overflow wakes a parked server.
        let s = scheduler
            .place(&mut cluster, JobId(9), demand(4.0), 0)
            .unwrap();
        assert_ne!(s, ServerId(0));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut c1 = Cluster::new(8, ServerSpec::typical());
        let mut c2 = Cluster::new(8, ServerSpec::typical());
        let mut s1 = RandomScheduler::new(5);
        let mut s2 = RandomScheduler::new(5);
        for i in 0..20 {
            let a = s1.place(&mut c1, JobId(i), demand(1.0), 0).unwrap();
            let b = s2.place(&mut c2, JobId(i), demand(1.0), 0).unwrap();
            assert_eq!(a, b);
            c1.place(JobId(i), a, demand(1.0));
            c2.place(JobId(i), b, demand(1.0));
        }
    }

    #[test]
    fn genpack_promotes_and_consolidates() {
        let mut cluster = Cluster::new(6, ServerSpec::typical());
        let mut scheduler = GenPackScheduler::new();
        // Two long-running jobs arrive.
        for i in 0..2 {
            let s = scheduler
                .place(&mut cluster, JobId(i), demand(3.0), 0)
                .unwrap();
            cluster.place(JobId(i), s, demand(3.0));
        }
        // Monitoring learns their (steady) usage.
        for _ in 0..10 {
            for i in 0..2 {
                scheduler.observe(JobId(i), demand(3.0).cpu_actual);
            }
        }
        // After the nursery period they are promoted (migrated) to Young.
        let report = scheduler.tick(&mut cluster, 600);
        assert!(report.migrations >= 1, "expected promotion migrations");
        // After the old threshold they move to Old and empties get parked.
        let report = scheduler.tick(&mut cluster, 4000);
        let _ = report;
        scheduler.tick(&mut cluster, 4060);
        assert!(
            cluster.servers_on() <= 2,
            "GenPack should have parked idle servers, {} still on",
            cluster.servers_on()
        );
        // Jobs are still placed and unharmed.
        assert_eq!(cluster.jobs_placed(), 2);
    }

    #[test]
    fn genpack_packs_on_actual_usage() {
        let mut cluster = Cluster::new(4, ServerSpec::typical());
        let mut scheduler = GenPackScheduler::new();
        // Jobs request 8 cores but use 4.8: two fit by request per server,
        // three fit by actual usage.
        for i in 0..3 {
            let s = scheduler
                .place(&mut cluster, JobId(i), demand(8.0), 0)
                .unwrap();
            cluster.place(JobId(i), s, demand(8.0));
        }
        for _ in 0..10 {
            for i in 0..3 {
                scheduler.observe(JobId(i), demand(8.0).cpu_actual);
            }
        }
        scheduler.tick(&mut cluster, 4000); // everyone old → packed by actual
        scheduler.tick(&mut cluster, 4060);
        assert_eq!(
            cluster.servers_on(),
            1,
            "three 4.8-core-actual jobs pack onto one 16-core server"
        );
    }

    #[test]
    fn unstable_jobs_wait_in_nursery_until_overdue() {
        let mut cluster = Cluster::new(4, ServerSpec::typical());
        let mut scheduler = GenPackScheduler::new();
        let s = scheduler
            .place(&mut cluster, JobId(1), demand(3.0), 0)
            .unwrap();
        cluster.place(JobId(1), s, demand(3.0));
        // Erratic usage: never stabilises.
        for i in 0..50 {
            scheduler.observe(JobId(1), if i % 2 == 0 { 0.5 } else { 5.0 });
        }
        // Past the nursery threshold but not overdue: no promotion.
        let report = scheduler.tick(&mut cluster, 600);
        assert_eq!(report.migrations, 0, "unstable job must not be promoted");
        // Grossly overdue (4x nursery): promoted anyway.
        let report = scheduler.tick(&mut cluster, 1_300);
        assert!(report.migrations >= 1 || cluster.jobs_placed() == 1);
    }

    #[test]
    fn genpack_departure_cleanup() {
        let mut cluster = Cluster::new(2, ServerSpec::typical());
        let mut scheduler = GenPackScheduler::new();
        let s = scheduler
            .place(&mut cluster, JobId(1), demand(1.0), 0)
            .unwrap();
        cluster.place(JobId(1), s, demand(1.0));
        let _ = cluster.remove(JobId(1));
        scheduler.on_departure(JobId(1));
        let report = scheduler.tick(&mut cluster, 100);
        let _ = report;
        assert_eq!(cluster.servers_on(), 0, "all empty servers parked");
    }
}
