//! The enclave-resident ordered KV store.

use parking_lot::Mutex;
use securecloud_crypto::gcm::{AesGcm, NONCE_LEN, TAG_LEN};
use securecloud_crypto::wire::Wire;
use securecloud_crypto::CryptoError;
use securecloud_sgx::mem::MemorySim;
use securecloud_telemetry::{Counter, Telemetry};
use std::collections::{BTreeMap, HashMap};
use std::error::Error as StdError;
use std::fmt;
use std::sync::Arc;

/// Errors from the secure KV store.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KvError {
    /// A snapshot failed to decrypt or decode.
    Crypto(CryptoError),
    /// The snapshot is older than the trusted counter: a rollback attack.
    RollbackDetected {
        /// Version found in the snapshot.
        snapshot_version: u64,
        /// Version recorded by the trusted counter.
        counter_version: u64,
    },
    /// The named trusted counter does not exist.
    UnknownCounter(String),
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::Crypto(e) => write!(f, "snapshot cryptographic failure: {e}"),
            KvError::RollbackDetected {
                snapshot_version,
                counter_version,
            } => write!(
                f,
                "rollback detected: snapshot v{snapshot_version} older than counter v{counter_version}"
            ),
            KvError::UnknownCounter(name) => write!(f, "unknown trusted counter: {name}"),
        }
    }
}

impl StdError for KvError {}

impl From<CryptoError> for KvError {
    fn from(e: CryptoError) -> Self {
        KvError::Crypto(e)
    }
}

/// A trusted monotonic counter service (stands in for SGX monotonic
/// counters / a replicated counter service). Shared between store
/// instances via `Clone`.
#[derive(Debug, Clone, Default)]
pub struct CounterService {
    counters: Arc<Mutex<HashMap<String, u64>>>,
}

impl CounterService {
    /// Creates an empty counter service.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a counter (0 if never bumped).
    #[must_use]
    pub fn read(&self, name: &str) -> u64 {
        *self.counters.lock().get(name).unwrap_or(&0)
    }

    /// Increments and returns the new value.
    pub fn increment(&self, name: &str) -> u64 {
        let mut counters = self.counters.lock();
        let v = counters.entry(name.to_string()).or_insert(0);
        *v += 1;
        *v
    }

    /// Advances a counter to `value` if that moves it forward, returning
    /// the resulting value. Monotone: a lagging writer (e.g. a replica
    /// sealing an older snapshot than a sibling already recorded) can
    /// never roll the counter back.
    pub fn advance_to(&self, name: &str, value: u64) -> u64 {
        let mut counters = self.counters.lock();
        let v = counters.entry(name.to_string()).or_insert(0);
        *v = (*v).max(value);
        *v
    }
}

/// A key-value pair as stored in snapshots.
type Pair = (Vec<u8>, Vec<u8>);

/// Operation counters for a [`SecureKv`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStats {
    /// Keys inserted or updated.
    pub puts: u64,
    /// Point lookups served.
    pub gets: u64,
    /// Keys removed.
    pub deletes: u64,
    /// Entries returned by range scans.
    pub scanned: u64,
}

/// Live operation counters; [`KvStats`] snapshots read from these, and
/// `set_telemetry` adopts the same handles into the shared registry.
#[derive(Debug, Default)]
struct KvMetrics {
    puts: Counter,
    gets: Counter,
    deletes: Counter,
    scanned: Counter,
}

impl KvMetrics {
    fn adopt_into(&self, telemetry: &Telemetry) {
        let registry = telemetry.registry();
        registry.adopt_counter("securecloud_kv_puts_total", &[], &self.puts);
        registry.adopt_counter("securecloud_kv_gets_total", &[], &self.gets);
        registry.adopt_counter("securecloud_kv_deletes_total", &[], &self.deletes);
        registry.adopt_counter("securecloud_kv_scanned_total", &[], &self.scanned);
    }
}

#[derive(Debug, Clone)]
struct Entry {
    value: Vec<u8>,
    offset: u64,
    footprint: u32,
}

/// A sealed, versioned snapshot of the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Store version at snapshot time.
    pub version: u64,
    /// Sealed bytes for untrusted storage.
    pub sealed: Vec<u8>,
}

/// The enclave-resident ordered KV store. Callers pass the enclave's
/// [`MemorySim`] so accesses are charged to the right domain.
#[derive(Debug, Default)]
pub struct SecureKv {
    map: BTreeMap<Vec<u8>, Entry>,
    version: u64,
    bytes: u64,
    metrics: KvMetrics,
    arena_next: Option<(u64, u64)>, // (chunk base, used)
}

const ARENA_CHUNK: u64 = 1 << 20;

impl SecureKv {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total bytes of keys and values.
    #[must_use]
    pub fn data_bytes(&self) -> u64 {
        self.bytes
    }

    /// Monotone store version (bumped on every mutation).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Operation counters.
    #[must_use]
    pub fn stats(&self) -> KvStats {
        KvStats {
            puts: self.metrics.puts.value(),
            gets: self.metrics.gets.value(),
            deletes: self.metrics.deletes.value(),
            scanned: self.metrics.scanned.value(),
        }
    }

    /// Adopts the store's operation counters into `telemetry`'s registry.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics.adopt_into(telemetry);
    }

    fn alloc(&mut self, mem: &mut MemorySim, bytes: u64) -> u64 {
        match self.arena_next {
            Some((base, used)) if used + bytes <= ARENA_CHUNK => {
                self.arena_next = Some((base, used + bytes));
                base + used
            }
            _ => {
                let region = mem.alloc(ARENA_CHUNK);
                self.arena_next = Some((region.base(), bytes.min(ARENA_CHUNK)));
                region.base()
            }
        }
    }

    fn footprint(key: &[u8], value: &[u8]) -> u32 {
        (48 + key.len() + value.len()) as u32
    }

    /// Inserts or updates `key`, returning the previous value.
    pub fn put(&mut self, mem: &mut MemorySim, key: &[u8], value: &[u8]) -> Option<Vec<u8>> {
        let footprint = Self::footprint(key, value);
        let offset = self.alloc(mem, u64::from(footprint));
        mem.touch(offset, footprint as usize);
        mem.charge_ops(2 + (key.len() as u64) / 8);
        self.version += 1;
        self.metrics.puts.inc();
        self.bytes += (key.len() + value.len()) as u64;
        let previous = self.map.insert(
            key.to_vec(),
            Entry {
                value: value.to_vec(),
                offset,
                footprint,
            },
        );
        if let Some(prev) = &previous {
            self.bytes -= (key.len() + prev.value.len()) as u64;
        }
        previous.map(|e| e.value)
    }

    /// Point lookup, returning an owned copy of the value.
    pub fn get(&mut self, mem: &mut MemorySim, key: &[u8]) -> Option<Vec<u8>> {
        self.get_ref(mem, key).map(<[u8]>::to_vec)
    }

    /// Point lookup without copying the value out. Charges exactly the same
    /// simulated memory accesses as [`SecureKv::get`]; callers that only
    /// inspect (or conditionally copy) the value avoid the allocation.
    pub fn get_ref(&mut self, mem: &mut MemorySim, key: &[u8]) -> Option<&[u8]> {
        self.metrics.gets.inc();
        // B-tree descent: log(n) comparisons.
        mem.charge_ops(2 + (self.map.len().max(2) as f64).log2() as u64);
        let entry = self.map.get(key)?;
        mem.touch(entry.offset, entry.footprint as usize);
        Some(&entry.value)
    }

    /// Removes `key`, returning its value.
    pub fn delete(&mut self, mem: &mut MemorySim, key: &[u8]) -> Option<Vec<u8>> {
        mem.charge_ops(2 + (self.map.len().max(2) as f64).log2() as u64);
        let entry = self.map.remove(key)?;
        self.version += 1;
        self.metrics.deletes.inc();
        self.bytes -= (key.len() + entry.value.len()) as u64;
        Some(entry.value)
    }

    /// Ordered scan of `[from, to)`, returning key-value pairs.
    pub fn scan(&mut self, mem: &mut MemorySim, from: &[u8], to: &[u8]) -> Vec<Pair> {
        let mut out = Vec::new();
        if from >= to {
            return out; // empty or inverted range
        }
        // Collect touches first to avoid borrowing issues.
        let hits: Vec<(Vec<u8>, Vec<u8>, u64, u32)> = self
            .map
            .range(from.to_vec()..to.to_vec())
            .map(|(k, e)| (k.clone(), e.value.clone(), e.offset, e.footprint))
            .collect();
        for (k, v, offset, footprint) in hits {
            mem.touch(offset, footprint as usize);
            mem.charge_ops(1);
            out.push((k, v));
            self.metrics.scanned.inc();
        }
        out
    }

    /// Serialises and seals the store under `key`, advancing the trusted
    /// counter `counter_name` to the snapshot's version.
    ///
    /// The snapshot version is the store's mutation version at seal time
    /// (sealing itself is not a mutation): replicas applying the same
    /// writes seal interchangeable snapshots, whichever of them does the
    /// sealing.
    pub fn snapshot(
        &mut self,
        key: &[u8; 16],
        counters: &CounterService,
        counter_name: &str,
    ) -> Snapshot {
        // One exactly-shaped buffer: nonce, then the wire body encoded
        // straight from the map (no intermediate Vec<Pair> clone), sealed in
        // place, tag appended. The layout must stay byte-identical to
        // `(self.version, pairs).to_wire()` — `restore` decodes it as
        // `(u64, Vec<Pair>)`.
        let nonce: [u8; NONCE_LEN] = securecloud_crypto::random_array();
        let mut sealed =
            Vec::with_capacity(NONCE_LEN + 12 + self.bytes as usize + 8 * self.map.len() + TAG_LEN);
        sealed.extend_from_slice(&nonce);
        self.version.encode(&mut sealed);
        (self.map.len() as u32).encode(&mut sealed);
        for (k, e) in &self.map {
            (k.len() as u32).encode(&mut sealed);
            sealed.extend_from_slice(k);
            (e.value.len() as u32).encode(&mut sealed);
            sealed.extend_from_slice(&e.value);
        }
        let tag = AesGcm::new(key).seal_in_place_detached(
            &nonce,
            &mut sealed[NONCE_LEN..],
            b"securecloud kv snapshot",
        );
        sealed.extend_from_slice(&tag);
        // Record the snapshot version in the trusted counter (monotone, so
        // a lagging replica cannot regress a sibling's newer record).
        counters.advance_to(counter_name, self.version);
        Snapshot {
            version: self.version,
            sealed,
        }
    }

    /// Restores a store from a sealed snapshot, verifying freshness against
    /// the trusted counter.
    ///
    /// # Errors
    ///
    /// * [`KvError::Crypto`] — tampered or wrong-key snapshot,
    /// * [`KvError::RollbackDetected`] — the snapshot predates the counter.
    pub fn restore(
        mem: &mut MemorySim,
        key: &[u8; 16],
        sealed: &[u8],
        counters: &CounterService,
        counter_name: &str,
    ) -> Result<Self, KvError> {
        if sealed.len() < NONCE_LEN {
            return Err(KvError::Crypto(CryptoError::AuthenticationFailed));
        }
        let (nonce, body) = sealed.split_at(NONCE_LEN);
        let nonce: [u8; NONCE_LEN] = nonce.try_into().expect("split size");
        let plain = AesGcm::new(key).open(&nonce, body, b"securecloud kv snapshot")?;
        let (version, pairs): (u64, Vec<Pair>) = Wire::from_wire(&plain)?;
        let expected = counters.read(counter_name);
        if version < expected {
            return Err(KvError::RollbackDetected {
                snapshot_version: version,
                counter_version: expected,
            });
        }
        let mut kv = SecureKv::new();
        for (k, v) in pairs {
            kv.put(mem, &k, &v);
        }
        kv.version = version;
        Ok(kv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use securecloud_sgx::costs::{CostModel, MemoryGeometry};

    fn mem() -> MemorySim {
        MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::sgx_v1())
    }

    #[test]
    fn put_get_delete() {
        let mut mem = mem();
        let mut kv = SecureKv::new();
        assert!(kv.is_empty());
        assert_eq!(kv.put(&mut mem, b"a", b"1"), None);
        assert_eq!(kv.put(&mut mem, b"a", b"2"), Some(b"1".to_vec()));
        assert_eq!(kv.get(&mut mem, b"a"), Some(b"2".to_vec()));
        assert_eq!(kv.get(&mut mem, b"missing"), None);
        assert_eq!(kv.delete(&mut mem, b"a"), Some(b"2".to_vec()));
        assert_eq!(kv.delete(&mut mem, b"a"), None);
        assert_eq!(kv.len(), 0);
        assert_eq!(kv.data_bytes(), 0);
        let s = kv.stats();
        assert_eq!((s.puts, s.gets, s.deletes), (2, 2, 1));
    }

    #[test]
    fn range_scan_ordered_half_open() {
        let mut mem = mem();
        let mut kv = SecureKv::new();
        for k in ["b", "a", "d", "c", "e"] {
            kv.put(&mut mem, k.as_bytes(), k.as_bytes());
        }
        let hits = kv.scan(&mut mem, b"b", b"e");
        let keys: Vec<&[u8]> = hits.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, [b"b", b"c", b"d"]);
        assert_eq!(kv.stats().scanned, 3);
    }

    #[test]
    fn memory_charged_per_access() {
        let mut mem = mem();
        let mut kv = SecureKv::new();
        let c0 = mem.cycles();
        kv.put(&mut mem, b"key", &vec![0u8; 1000]);
        let after_put = mem.cycles();
        assert!(after_put > c0);
        kv.get(&mut mem, b"key");
        assert!(mem.cycles() > after_put);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut m = mem();
        let counters = CounterService::new();
        let key = [7u8; 16];
        let mut kv = SecureKv::new();
        kv.put(&mut m, b"x", b"1");
        kv.put(&mut m, b"y", b"2");
        let snapshot = kv.snapshot(&key, &counters, "store-A");
        let mut restored =
            SecureKv::restore(&mut m, &key, &snapshot.sealed, &counters, "store-A").unwrap();
        assert_eq!(restored.get(&mut m, b"x"), Some(b"1".to_vec()));
        assert_eq!(restored.get(&mut m, b"y"), Some(b"2".to_vec()));
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.version(), snapshot.version);
    }

    #[test]
    fn snapshot_body_layout_matches_wire_tuple() {
        // `snapshot` hand-encodes the body straight from the map; pin it to
        // the generic `(u64, Vec<Pair>)` wire layout `restore` decodes.
        let mut m = mem();
        let counters = CounterService::new();
        let key = [3u8; 16];
        let mut kv = SecureKv::new();
        kv.put(&mut m, b"zeta", b"26");
        kv.put(&mut m, b"alpha", b"1");
        kv.put(&mut m, b"", b"empty key");
        kv.put(&mut m, b"mid", b"");
        let snapshot = kv.snapshot(&key, &counters, "layout");
        let (nonce, body) = snapshot.sealed.split_at(NONCE_LEN);
        let nonce: [u8; NONCE_LEN] = nonce.try_into().unwrap();
        let plain = AesGcm::new(&key)
            .open(&nonce, body, b"securecloud kv snapshot")
            .unwrap();
        let pairs: Vec<Pair> = kv
            .map
            .iter()
            .map(|(k, e)| (k.clone(), e.value.clone()))
            .collect();
        assert_eq!(plain, (kv.version, pairs).to_wire());
    }

    #[test]
    fn get_ref_charges_like_get() {
        let mut kv = SecureKv::new();
        let mut mem_a = mem();
        let mut mem_b = mem();
        kv.put(&mut mem_a, b"k", &vec![9u8; 512]);
        let mut kv_b = SecureKv::new();
        kv_b.put(&mut mem_b, b"k", &vec![9u8; 512]);
        let a0 = mem_a.cycles();
        let b0 = mem_b.cycles();
        assert_eq!(kv.get(&mut mem_a, b"k").as_deref(), Some(&[9u8; 512][..]));
        assert_eq!(kv_b.get_ref(&mut mem_b, b"k"), Some(&[9u8; 512][..]));
        assert_eq!(mem_a.cycles() - a0, mem_b.cycles() - b0);
        assert_eq!(kv.stats().gets, kv_b.stats().gets);
    }

    #[test]
    fn snapshot_tampering_detected() {
        let mut m = mem();
        let counters = CounterService::new();
        let key = [7u8; 16];
        let mut kv = SecureKv::new();
        kv.put(&mut m, b"x", b"1");
        let snapshot = kv.snapshot(&key, &counters, "c");
        let mut bad = snapshot.sealed.clone();
        bad[NONCE_LEN + 2] ^= 1;
        assert!(matches!(
            SecureKv::restore(&mut m, &key, &bad, &counters, "c"),
            Err(KvError::Crypto(_))
        ));
        // Wrong key fails too.
        assert!(SecureKv::restore(&mut m, &[8u8; 16], &snapshot.sealed, &counters, "c").is_err());
    }

    #[test]
    fn rollback_attack_detected() {
        let mut m = mem();
        let counters = CounterService::new();
        let key = [7u8; 16];
        let mut kv = SecureKv::new();
        kv.put(&mut m, b"balance", b"100");
        let old_snapshot = kv.snapshot(&key, &counters, "bank");
        kv.put(&mut m, b"balance", b"50");
        let _new_snapshot = kv.snapshot(&key, &counters, "bank");
        // The untrusted host serves the old (validly sealed!) snapshot.
        let err = SecureKv::restore(&mut m, &key, &old_snapshot.sealed, &counters, "bank");
        assert!(matches!(err, Err(KvError::RollbackDetected { .. })));
    }

    #[test]
    fn counter_service_behaviour() {
        let counters = CounterService::new();
        assert_eq!(counters.read("x"), 0);
        assert_eq!(counters.increment("x"), 1);
        assert_eq!(counters.increment("x"), 2);
        assert_eq!(counters.read("x"), 2);
        assert_eq!(counters.read("y"), 0);
        // Clones share state.
        let clone = counters.clone();
        clone.increment("x");
        assert_eq!(counters.read("x"), 3);
    }

    #[test]
    fn large_store_exceeding_epc_pays_paging() {
        // A store bigger than the (tiny) EPC faults on scans; the same
        // store in native memory does not.
        let geometry = MemoryGeometry {
            line_bytes: 64,
            llc_bytes: 64 * 64,
            page_bytes: 4096,
            epc_total_bytes: 4096 * 16,
            epc_reserved_bytes: 4096 * 4,
        };
        let costs = CostModel::sgx_v1();
        let mut enclave_mem = MemorySim::enclave(geometry, costs.clone());
        let mut native_mem = MemorySim::native(geometry, costs);
        let mut kv_e = SecureKv::new();
        let mut kv_n = SecureKv::new();
        for i in 0..200u32 {
            let key = i.to_be_bytes();
            let value = vec![0u8; 1024];
            kv_e.put(&mut enclave_mem, &key, &value);
            kv_n.put(&mut native_mem, &key, &value);
        }
        enclave_mem.reset_metrics();
        native_mem.reset_metrics();
        kv_e.scan(&mut enclave_mem, &0u32.to_be_bytes(), &200u32.to_be_bytes());
        kv_n.scan(&mut native_mem, &0u32.to_be_bytes(), &200u32.to_be_bytes());
        assert!(enclave_mem.stats().epc_faults > 0);
        assert!(enclave_mem.cycles() > native_mem.cycles());
    }

    #[test]
    fn version_monotone() {
        let mut m = mem();
        let mut kv = SecureKv::new();
        let v0 = kv.version();
        kv.put(&mut m, b"a", b"1");
        let v1 = kv.version();
        kv.delete(&mut m, b"a");
        let v2 = kv.version();
        assert!(v0 < v1 && v1 < v2);
    }
}
