//! The enclave-resident ordered KV store.
//!
//! A [`SecureKv`] is either purely in-memory (everything in the EPC, the
//! seed behaviour) or *tiered* ([`SecureKv::tiered`]): an in-EPC memtable
//! over a [`StorageEngine`] of sealed log-structured segments on the
//! untrusted host. In tiered mode every mutation is WAL-logged before it
//! touches the memtable, full memtables flush to sealed segments, and
//! reads fall through to verified block page-ins — so working sets far
//! beyond the EPC stay serviceable at honest simulated cost.

use securecloud_crypto::gcm::{AesGcm, NONCE_LEN, TAG_LEN};
use securecloud_crypto::wire::Wire;
use securecloud_crypto::CryptoError;
use securecloud_sgx::mem::{MemorySim, Region};
use securecloud_storage::{
    HostDisk, IncrementalSnapshot, Record, ReplayReport, StorageConfig, StorageEngine,
    StorageError, StoreKeys,
};
use securecloud_telemetry::{Counter, Telemetry};
use std::collections::BTreeMap;
use std::error::Error as StdError;
use std::fmt;

// The trusted counter service now lives in `securecloud-storage` (the
// storage engine binds manifests to it); re-exported here so existing
// `securecloud_kvstore::CounterService` paths keep working.
pub use securecloud_storage::CounterService;

/// Errors from the secure KV store.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KvError {
    /// A snapshot failed to decrypt or decode.
    Crypto(CryptoError),
    /// The snapshot is older than the trusted counter: a rollback attack.
    RollbackDetected {
        /// Version found in the snapshot.
        snapshot_version: u64,
        /// Version recorded by the trusted counter.
        counter_version: u64,
    },
    /// The named trusted counter does not exist.
    UnknownCounter(String),
    /// The sealed storage tier failed (integrity, rollback, crash, or
    /// host corruption).
    Storage(StorageError),
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::Crypto(e) => write!(f, "snapshot cryptographic failure: {e}"),
            KvError::RollbackDetected {
                snapshot_version,
                counter_version,
            } => write!(
                f,
                "rollback detected: snapshot v{snapshot_version} older than counter v{counter_version}"
            ),
            KvError::UnknownCounter(name) => write!(f, "unknown trusted counter: {name}"),
            KvError::Storage(e) => write!(f, "storage tier failure: {e}"),
        }
    }
}

impl StdError for KvError {}

impl From<CryptoError> for KvError {
    fn from(e: CryptoError) -> Self {
        KvError::Crypto(e)
    }
}

impl From<StorageError> for KvError {
    fn from(e: StorageError) -> Self {
        KvError::Storage(e)
    }
}

/// A key-value pair as stored in snapshots.
type Pair = (Vec<u8>, Vec<u8>);

/// Operation counters for a [`SecureKv`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStats {
    /// Keys inserted or updated.
    pub puts: u64,
    /// Point lookups served.
    pub gets: u64,
    /// Keys removed.
    pub deletes: u64,
    /// Entries returned by range scans.
    pub scanned: u64,
}

/// Live operation counters; [`KvStats`] snapshots read from these, and
/// `set_telemetry` adopts the same handles into the shared registry.
#[derive(Debug, Default)]
struct KvMetrics {
    puts: Counter,
    gets: Counter,
    deletes: Counter,
    scanned: Counter,
}

impl KvMetrics {
    fn adopt_into(&self, telemetry: &Telemetry) {
        let registry = telemetry.registry();
        registry.adopt_counter("securecloud_kv_puts_total", &[], &self.puts);
        registry.adopt_counter("securecloud_kv_gets_total", &[], &self.gets);
        registry.adopt_counter("securecloud_kv_deletes_total", &[], &self.deletes);
        registry.adopt_counter("securecloud_kv_scanned_total", &[], &self.scanned);
    }
}

#[derive(Debug, Clone)]
struct Entry {
    value: Vec<u8>,
    offset: u64,
    footprint: u32,
    /// Tombstone marker (tiered mode): the key is deleted, masking any
    /// older record in the sealed segments until the next flush.
    dead: bool,
}

/// A sealed, versioned snapshot of the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Store version at snapshot time.
    pub version: u64,
    /// Sealed bytes for untrusted storage.
    pub sealed: Vec<u8>,
}

/// The enclave-resident ordered KV store. Callers pass the enclave's
/// [`MemorySim`] so accesses are charged to the right domain.
#[derive(Debug, Default)]
pub struct SecureKv {
    map: BTreeMap<Vec<u8>, Entry>,
    version: u64,
    bytes: u64,
    metrics: KvMetrics,
    arena_next: Option<(u64, u64)>, // (chunk base, used)
    /// Arena chunks handed out so far, so tiered flushes can release the
    /// drained memtable's simulated memory.
    arena_chunks: Vec<Region>,
    /// The sealed on-host tier (tiered mode only).
    storage: Option<Box<StorageEngine>>,
}

const ARENA_CHUNK: u64 = 1 << 20;

impl SecureKv {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty *tiered* store: an in-EPC memtable over a sealed
    /// log-structured segment store on the untrusted host. `counter_base`
    /// scopes the trusted counters binding the host state (use the same
    /// base and [`CounterService`] when reopening after a restart).
    #[must_use]
    pub fn tiered(
        config: StorageConfig,
        keys: StoreKeys,
        counters: CounterService,
        counter_base: impl Into<String>,
    ) -> Self {
        let mut kv = SecureKv::new();
        kv.storage = Some(Box::new(StorageEngine::create(
            config,
            keys,
            counters,
            counter_base,
        )));
        kv
    }

    /// Recovers a tiered store from untrusted host bytes: verifies the
    /// manifest epoch and version floor, replays only the WAL tail, and
    /// rebuilds the memtable from it.
    ///
    /// # Errors
    ///
    /// [`KvError::Storage`] — rollback, integrity, or corruption detected
    /// in the host bytes.
    pub fn reopen(
        mem: &mut MemorySim,
        config: StorageConfig,
        keys: StoreKeys,
        counters: CounterService,
        counter_base: impl Into<String>,
        disk: HostDisk,
    ) -> Result<(Self, ReplayReport), KvError> {
        let (engine, report) =
            StorageEngine::open(mem, config, keys, counters, counter_base, disk)?;
        let mut kv = SecureKv::new();
        kv.storage = Some(Box::new(engine));
        for record in &report.tail {
            match record {
                Record::Put { key, value } => {
                    kv.memtable_put(mem, key, value, false);
                }
                Record::Tombstone { key } => {
                    kv.memtable_put(mem, key, b"", true);
                }
            }
        }
        kv.version = report.recovered_version;
        Ok((kv, report))
    }

    /// Adopts an [`IncrementalSnapshot`] streamed from a surviving
    /// replica (see [`SecureKv::incremental_snapshot`]).
    ///
    /// # Errors
    ///
    /// As [`SecureKv::reopen`] — notably [`KvError::Storage`] with
    /// [`StorageError::Rollback`] if the snapshot is older than the
    /// trusted counters have seen.
    pub fn restore_incremental(
        mem: &mut MemorySim,
        config: StorageConfig,
        keys: StoreKeys,
        counters: CounterService,
        counter_base: impl Into<String>,
        snapshot: IncrementalSnapshot,
    ) -> Result<Self, KvError> {
        Ok(Self::reopen(mem, config, keys, counters, counter_base, snapshot.disk)?.0)
    }

    /// Whether this store has a sealed on-host tier.
    #[must_use]
    pub fn is_tiered(&self) -> bool {
        self.storage.is_some()
    }

    /// The storage engine under a tiered store (bench introspection).
    #[must_use]
    pub fn storage(&self) -> Option<&StorageEngine> {
        self.storage.as_deref()
    }

    /// Mutable access to the storage engine (fault injection: corrupt a
    /// host block, scrub, arm crash points).
    pub fn storage_mut(&mut self) -> Option<&mut StorageEngine> {
        self.storage.as_deref_mut()
    }

    /// Number of in-EPC entries. For a tiered store this counts only the
    /// memtable (including tombstones); flushed keys live in sealed
    /// segments and are not enumerated without IO.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total bytes of keys and values.
    #[must_use]
    pub fn data_bytes(&self) -> u64 {
        self.bytes
    }

    /// Monotone store version (bumped on every mutation).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Operation counters.
    #[must_use]
    pub fn stats(&self) -> KvStats {
        KvStats {
            puts: self.metrics.puts.value(),
            gets: self.metrics.gets.value(),
            deletes: self.metrics.deletes.value(),
            scanned: self.metrics.scanned.value(),
        }
    }

    /// Adopts the store's operation counters into `telemetry`'s registry.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics.adopt_into(telemetry);
    }

    fn alloc(&mut self, mem: &mut MemorySim, bytes: u64) -> u64 {
        match self.arena_next {
            Some((base, used)) if used + bytes <= ARENA_CHUNK => {
                self.arena_next = Some((base, used + bytes));
                base + used
            }
            _ => {
                let region = mem.alloc(ARENA_CHUNK);
                self.arena_next = Some((region.base(), bytes.min(ARENA_CHUNK)));
                let base = region.base();
                self.arena_chunks.push(region);
                base
            }
        }
    }

    fn footprint(key: &[u8], value: &[u8]) -> u32 {
        (48 + key.len() + value.len()) as u32
    }

    /// Raw memtable insert: allocation, touch, and byte accounting, but no
    /// version bump, metrics, WAL, or flush. Returns the previous *live*
    /// value (a shadowed tombstone reads as absent).
    fn memtable_put(
        &mut self,
        mem: &mut MemorySim,
        key: &[u8],
        value: &[u8],
        dead: bool,
    ) -> Option<Vec<u8>> {
        let footprint = Self::footprint(key, value);
        let offset = self.alloc(mem, u64::from(footprint));
        mem.touch(offset, footprint as usize);
        mem.charge_ops(2 + (key.len() as u64) / 8);
        self.bytes += (key.len() + value.len()) as u64;
        let previous = self.map.insert(
            key.to_vec(),
            Entry {
                value: value.to_vec(),
                offset,
                footprint,
                dead,
            },
        );
        if let Some(prev) = &previous {
            self.bytes -= (key.len() + prev.value.len()) as u64;
        }
        previous.and_then(|e| if e.dead { None } else { Some(e.value) })
    }

    /// Inserts or updates `key`, returning the previous value.
    ///
    /// # Panics
    ///
    /// In tiered mode, if the storage tier fails (a failed store must be
    /// discarded and reopened) — use [`SecureKv::try_put`] to handle that.
    pub fn put(&mut self, mem: &mut MemorySim, key: &[u8], value: &[u8]) -> Option<Vec<u8>> {
        self.try_put(mem, key, value)
            .expect("tiered storage failure on put; reopen the store")
    }

    /// Inserts or updates `key`: WAL-logs first (tiered mode), then updates
    /// the memtable, flushing it to a sealed segment when full. Returns the
    /// previous value *from the in-EPC tier* — a key only present in sealed
    /// segments reads back as `None` here, keeping the write path free of
    /// host IO.
    ///
    /// # Errors
    ///
    /// [`KvError::Storage`] — the sealed tier rejected the write (after
    /// which the store must be discarded and reopened from its disk).
    pub fn try_put(
        &mut self,
        mem: &mut MemorySim,
        key: &[u8],
        value: &[u8],
    ) -> Result<Option<Vec<u8>>, KvError> {
        if let Some(engine) = self.storage.as_mut() {
            engine.append(
                mem,
                &Record::Put {
                    key: key.to_vec(),
                    value: value.to_vec(),
                },
            )?;
        }
        let previous = self.memtable_put(mem, key, value, false);
        self.version += 1;
        self.metrics.puts.inc();
        self.maybe_flush(mem)?;
        Ok(previous)
    }

    /// Point lookup, returning an owned copy of the value.
    ///
    /// # Panics
    ///
    /// In tiered mode, on a storage-tier failure (integrity violation on a
    /// paged-in block) — use [`SecureKv::try_get`] to handle that.
    pub fn get(&mut self, mem: &mut MemorySim, key: &[u8]) -> Option<Vec<u8>> {
        self.get_ref(mem, key).map(<[u8]>::to_vec)
    }

    /// Fallible point lookup (see [`SecureKv::try_get_ref`]).
    ///
    /// # Errors
    ///
    /// [`KvError::Storage`] — a sealed block failed verification.
    pub fn try_get(&mut self, mem: &mut MemorySim, key: &[u8]) -> Result<Option<Vec<u8>>, KvError> {
        Ok(self.try_get_ref(mem, key)?.map(<[u8]>::to_vec))
    }

    /// Point lookup without copying the value out. Charges exactly the same
    /// simulated memory accesses as [`SecureKv::get`]; callers that only
    /// inspect (or conditionally copy) the value avoid the allocation.
    ///
    /// # Panics
    ///
    /// In tiered mode, on a storage-tier failure — use
    /// [`SecureKv::try_get_ref`] to handle that.
    pub fn get_ref(&mut self, mem: &mut MemorySim, key: &[u8]) -> Option<&[u8]> {
        self.try_get_ref(mem, key)
            .expect("tiered storage failure on get; scrub or reopen the store")
    }

    /// Point lookup falling through the memtable to sealed segments. A
    /// memtable tombstone masks older sealed records.
    ///
    /// # Errors
    ///
    /// [`KvError::Storage`] — a sealed block failed verification while
    /// paging in.
    pub fn try_get_ref(
        &mut self,
        mem: &mut MemorySim,
        key: &[u8],
    ) -> Result<Option<&[u8]>, KvError> {
        self.metrics.gets.inc();
        // B-tree descent: log(n) comparisons.
        mem.charge_ops(2 + (self.map.len().max(2) as f64).log2() as u64);
        if self.map.contains_key(key) {
            let entry = self.map.get(key).expect("key checked present");
            mem.touch(entry.offset, entry.footprint as usize);
            return Ok(if entry.dead { None } else { Some(&entry.value) });
        }
        match self.storage.as_mut() {
            None => Ok(None),
            Some(engine) => Ok(engine.lookup_ref(mem, key)?.flatten()),
        }
    }

    /// Removes `key`, returning its value.
    ///
    /// # Panics
    ///
    /// In tiered mode, on a storage-tier failure — use
    /// [`SecureKv::try_delete`] to handle that.
    pub fn delete(&mut self, mem: &mut MemorySim, key: &[u8]) -> Option<Vec<u8>> {
        self.try_delete(mem, key)
            .expect("tiered storage failure on delete; reopen the store")
    }

    /// Removes `key`, returning its value. In tiered mode a delete of a
    /// flushed key pages it in (to report the old value), WAL-logs a
    /// tombstone, and plants a memtable tombstone to mask the sealed
    /// record; deleting an absent key is a no-op that does not bump the
    /// version, matching the in-memory behaviour.
    ///
    /// # Errors
    ///
    /// [`KvError::Storage`] — the sealed tier failed during lookup or
    /// tombstone logging.
    pub fn try_delete(
        &mut self,
        mem: &mut MemorySim,
        key: &[u8],
    ) -> Result<Option<Vec<u8>>, KvError> {
        mem.charge_ops(2 + (self.map.len().max(2) as f64).log2() as u64);
        if self.storage.is_none() {
            let Some(entry) = self.map.remove(key) else {
                return Ok(None);
            };
            self.version += 1;
            self.metrics.deletes.inc();
            self.bytes -= (key.len() + entry.value.len()) as u64;
            return Ok(Some(entry.value));
        }
        let previous = match self.map.get(key) {
            Some(entry) if entry.dead => return Ok(None), // already tombstoned
            Some(entry) => {
                mem.touch(entry.offset, entry.footprint as usize);
                Some(entry.value.clone())
            }
            None => {
                let engine = self.storage.as_mut().expect("tiered mode checked");
                match engine.lookup(mem, key)? {
                    // Absent (or tombstoned) everywhere: no mutation.
                    None | Some(None) => return Ok(None),
                    Some(Some(value)) => Some(value),
                }
            }
        };
        let engine = self.storage.as_mut().expect("tiered mode checked");
        engine.append(mem, &Record::Tombstone { key: key.to_vec() })?;
        self.memtable_put(mem, key, b"", true);
        self.version += 1;
        self.metrics.deletes.inc();
        self.maybe_flush(mem)?;
        Ok(previous)
    }

    /// Ordered scan of `[from, to)`, returning key-value pairs.
    ///
    /// # Panics
    ///
    /// In tiered mode, on a storage-tier failure — use
    /// [`SecureKv::try_scan`] to handle that.
    pub fn scan(&mut self, mem: &mut MemorySim, from: &[u8], to: &[u8]) -> Vec<Pair> {
        self.try_scan(mem, from, to)
            .expect("tiered storage failure on scan; scrub or reopen the store")
    }

    /// Ordered scan of `[from, to)` merging sealed segments (oldest first)
    /// under the memtable; memtable tombstones suppress sealed records.
    ///
    /// # Errors
    ///
    /// [`KvError::Storage`] — a sealed block failed verification while
    /// paging in.
    pub fn try_scan(
        &mut self,
        mem: &mut MemorySim,
        from: &[u8],
        to: &[u8],
    ) -> Result<Vec<Pair>, KvError> {
        let mut out = Vec::new();
        if from >= to {
            return Ok(out); // empty or inverted range
        }
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        if let Some(engine) = self.storage.as_mut() {
            engine.scan_into(mem, from, Some(to), &mut merged)?;
        }
        // Collect touches first to avoid borrowing issues.
        type MemtableHit = (Vec<u8>, Option<Vec<u8>>, u64, u32);
        let hits: Vec<MemtableHit> = self
            .map
            .range(from.to_vec()..to.to_vec())
            .map(|(k, e)| {
                let value = if e.dead { None } else { Some(e.value.clone()) };
                (k.clone(), value, e.offset, e.footprint)
            })
            .collect();
        for (k, v, offset, footprint) in hits {
            mem.touch(offset, footprint as usize);
            mem.charge_ops(1);
            merged.insert(k, v);
        }
        for (k, v) in merged {
            if let Some(v) = v {
                self.metrics.scanned.inc();
                out.push((k, v));
            }
        }
        Ok(out)
    }

    /// Flushes the memtable into a sealed segment when it has outgrown the
    /// configured budget.
    fn maybe_flush(&mut self, mem: &mut MemorySim) -> Result<(), KvError> {
        let Some(engine) = self.storage.as_ref() else {
            return Ok(());
        };
        if self.bytes < engine.config().flush_bytes || self.map.is_empty() {
            return Ok(());
        }
        self.flush_memtable(mem)
    }

    /// Flushes the memtable (live entries and tombstones) into one sealed
    /// segment, commits the manifest, truncates the WAL, and releases the
    /// memtable's EPC arena. A no-op for in-memory stores and empty
    /// memtables.
    ///
    /// # Errors
    ///
    /// [`KvError::Storage`] — the segment write or manifest commit failed.
    pub fn flush_memtable(&mut self, mem: &mut MemorySim) -> Result<(), KvError> {
        let Some(engine) = self.storage.as_mut() else {
            return Ok(());
        };
        if self.map.is_empty() {
            return Ok(());
        }
        let records: Vec<Record> = self
            .map
            .iter()
            .map(|(k, e)| {
                if e.dead {
                    Record::Tombstone { key: k.clone() }
                } else {
                    Record::Put {
                        key: k.clone(),
                        value: e.value.clone(),
                    }
                }
            })
            .collect();
        engine.flush(mem, &records)?;
        self.map.clear();
        self.bytes = 0;
        self.arena_next = None;
        for region in self.arena_chunks.drain(..) {
            mem.free(region);
        }
        Ok(())
    }

    /// Exports the sealed host state for handing to a new replica: the
    /// manifest and WAL tail travel over a trusted channel; sealed segments
    /// are self-authenticating. Advances the trusted version floor so
    /// older exports are fenced.
    ///
    /// # Panics
    ///
    /// If the store is not tiered.
    pub fn incremental_snapshot(&self) -> IncrementalSnapshot {
        self.storage
            .as_ref()
            .expect("incremental snapshots require a tiered store")
            .export()
    }

    /// Serialises and seals the store under `key`, advancing the trusted
    /// counter `counter_name` to the snapshot's version.
    ///
    /// The snapshot version is the store's mutation version at seal time
    /// (sealing itself is not a mutation): replicas applying the same
    /// writes seal interchangeable snapshots, whichever of them does the
    /// sealing.
    ///
    /// # Panics
    ///
    /// If the store is tiered — whole-store snapshots would re-upload data
    /// already sealed on the host; use [`SecureKv::incremental_snapshot`].
    pub fn snapshot(
        &mut self,
        key: &[u8; 16],
        counters: &CounterService,
        counter_name: &str,
    ) -> Snapshot {
        assert!(
            self.storage.is_none(),
            "whole-store snapshots are for in-memory stores; tiered stores use incremental_snapshot()"
        );
        // One exactly-shaped buffer: nonce, then the wire body encoded
        // straight from the map (no intermediate Vec<Pair> clone), sealed in
        // place, tag appended. The layout must stay byte-identical to
        // `(self.version, pairs).to_wire()` — `restore` decodes it as
        // `(u64, Vec<Pair>)`.
        let nonce: [u8; NONCE_LEN] = securecloud_crypto::random_array();
        let mut sealed =
            Vec::with_capacity(NONCE_LEN + 12 + self.bytes as usize + 8 * self.map.len() + TAG_LEN);
        sealed.extend_from_slice(&nonce);
        self.version.encode(&mut sealed);
        (self.map.len() as u32).encode(&mut sealed);
        for (k, e) in &self.map {
            (k.len() as u32).encode(&mut sealed);
            sealed.extend_from_slice(k);
            (e.value.len() as u32).encode(&mut sealed);
            sealed.extend_from_slice(&e.value);
        }
        let tag = AesGcm::new(key).seal_in_place_detached(
            &nonce,
            &mut sealed[NONCE_LEN..],
            b"securecloud kv snapshot",
        );
        sealed.extend_from_slice(&tag);
        // Record the snapshot version in the trusted counter (monotone, so
        // a lagging replica cannot regress a sibling's newer record).
        counters.advance_to(counter_name, self.version);
        Snapshot {
            version: self.version,
            sealed,
        }
    }

    /// Restores a store from a sealed snapshot, verifying freshness against
    /// the trusted counter.
    ///
    /// # Errors
    ///
    /// * [`KvError::Crypto`] — tampered or wrong-key snapshot,
    /// * [`KvError::RollbackDetected`] — the snapshot predates the counter.
    pub fn restore(
        mem: &mut MemorySim,
        key: &[u8; 16],
        sealed: &[u8],
        counters: &CounterService,
        counter_name: &str,
    ) -> Result<Self, KvError> {
        if sealed.len() < NONCE_LEN {
            return Err(KvError::Crypto(CryptoError::AuthenticationFailed));
        }
        let (nonce, body) = sealed.split_at(NONCE_LEN);
        let nonce: [u8; NONCE_LEN] = nonce.try_into().expect("split size");
        let plain = AesGcm::new(key).open(&nonce, body, b"securecloud kv snapshot")?;
        let (version, pairs): (u64, Vec<Pair>) = Wire::from_wire(&plain)?;
        let expected = counters.read(counter_name);
        if version < expected {
            return Err(KvError::RollbackDetected {
                snapshot_version: version,
                counter_version: expected,
            });
        }
        let mut kv = SecureKv::new();
        for (k, v) in pairs {
            kv.put(mem, &k, &v);
        }
        kv.version = version;
        Ok(kv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use securecloud_sgx::costs::{CostModel, MemoryGeometry};

    fn mem() -> MemorySim {
        MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::sgx_v1())
    }

    #[test]
    fn put_get_delete() {
        let mut mem = mem();
        let mut kv = SecureKv::new();
        assert!(kv.is_empty());
        assert_eq!(kv.put(&mut mem, b"a", b"1"), None);
        assert_eq!(kv.put(&mut mem, b"a", b"2"), Some(b"1".to_vec()));
        assert_eq!(kv.get(&mut mem, b"a"), Some(b"2".to_vec()));
        assert_eq!(kv.get(&mut mem, b"missing"), None);
        assert_eq!(kv.delete(&mut mem, b"a"), Some(b"2".to_vec()));
        assert_eq!(kv.delete(&mut mem, b"a"), None);
        assert_eq!(kv.len(), 0);
        assert_eq!(kv.data_bytes(), 0);
        let s = kv.stats();
        assert_eq!((s.puts, s.gets, s.deletes), (2, 2, 1));
    }

    #[test]
    fn range_scan_ordered_half_open() {
        let mut mem = mem();
        let mut kv = SecureKv::new();
        for k in ["b", "a", "d", "c", "e"] {
            kv.put(&mut mem, k.as_bytes(), k.as_bytes());
        }
        let hits = kv.scan(&mut mem, b"b", b"e");
        let keys: Vec<&[u8]> = hits.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, [b"b", b"c", b"d"]);
        assert_eq!(kv.stats().scanned, 3);
    }

    #[test]
    fn memory_charged_per_access() {
        let mut mem = mem();
        let mut kv = SecureKv::new();
        let c0 = mem.cycles();
        kv.put(&mut mem, b"key", &vec![0u8; 1000]);
        let after_put = mem.cycles();
        assert!(after_put > c0);
        kv.get(&mut mem, b"key");
        assert!(mem.cycles() > after_put);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut m = mem();
        let counters = CounterService::new();
        let key = [7u8; 16];
        let mut kv = SecureKv::new();
        kv.put(&mut m, b"x", b"1");
        kv.put(&mut m, b"y", b"2");
        let snapshot = kv.snapshot(&key, &counters, "store-A");
        let mut restored =
            SecureKv::restore(&mut m, &key, &snapshot.sealed, &counters, "store-A").unwrap();
        assert_eq!(restored.get(&mut m, b"x"), Some(b"1".to_vec()));
        assert_eq!(restored.get(&mut m, b"y"), Some(b"2".to_vec()));
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.version(), snapshot.version);
    }

    #[test]
    fn snapshot_body_layout_matches_wire_tuple() {
        // `snapshot` hand-encodes the body straight from the map; pin it to
        // the generic `(u64, Vec<Pair>)` wire layout `restore` decodes.
        let mut m = mem();
        let counters = CounterService::new();
        let key = [3u8; 16];
        let mut kv = SecureKv::new();
        kv.put(&mut m, b"zeta", b"26");
        kv.put(&mut m, b"alpha", b"1");
        kv.put(&mut m, b"", b"empty key");
        kv.put(&mut m, b"mid", b"");
        let snapshot = kv.snapshot(&key, &counters, "layout");
        let (nonce, body) = snapshot.sealed.split_at(NONCE_LEN);
        let nonce: [u8; NONCE_LEN] = nonce.try_into().unwrap();
        let plain = AesGcm::new(&key)
            .open(&nonce, body, b"securecloud kv snapshot")
            .unwrap();
        let pairs: Vec<Pair> = kv
            .map
            .iter()
            .map(|(k, e)| (k.clone(), e.value.clone()))
            .collect();
        assert_eq!(plain, (kv.version, pairs).to_wire());
    }

    #[test]
    fn get_ref_charges_like_get() {
        let mut kv = SecureKv::new();
        let mut mem_a = mem();
        let mut mem_b = mem();
        kv.put(&mut mem_a, b"k", &vec![9u8; 512]);
        let mut kv_b = SecureKv::new();
        kv_b.put(&mut mem_b, b"k", &vec![9u8; 512]);
        let a0 = mem_a.cycles();
        let b0 = mem_b.cycles();
        assert_eq!(kv.get(&mut mem_a, b"k").as_deref(), Some(&[9u8; 512][..]));
        assert_eq!(kv_b.get_ref(&mut mem_b, b"k"), Some(&[9u8; 512][..]));
        assert_eq!(mem_a.cycles() - a0, mem_b.cycles() - b0);
        assert_eq!(kv.stats().gets, kv_b.stats().gets);
    }

    #[test]
    fn snapshot_tampering_detected() {
        let mut m = mem();
        let counters = CounterService::new();
        let key = [7u8; 16];
        let mut kv = SecureKv::new();
        kv.put(&mut m, b"x", b"1");
        let snapshot = kv.snapshot(&key, &counters, "c");
        let mut bad = snapshot.sealed.clone();
        bad[NONCE_LEN + 2] ^= 1;
        assert!(matches!(
            SecureKv::restore(&mut m, &key, &bad, &counters, "c"),
            Err(KvError::Crypto(_))
        ));
        // Wrong key fails too.
        assert!(SecureKv::restore(&mut m, &[8u8; 16], &snapshot.sealed, &counters, "c").is_err());
    }

    #[test]
    fn rollback_attack_detected() {
        let mut m = mem();
        let counters = CounterService::new();
        let key = [7u8; 16];
        let mut kv = SecureKv::new();
        kv.put(&mut m, b"balance", b"100");
        let old_snapshot = kv.snapshot(&key, &counters, "bank");
        kv.put(&mut m, b"balance", b"50");
        let _new_snapshot = kv.snapshot(&key, &counters, "bank");
        // The untrusted host serves the old (validly sealed!) snapshot.
        let err = SecureKv::restore(&mut m, &key, &old_snapshot.sealed, &counters, "bank");
        assert!(matches!(err, Err(KvError::RollbackDetected { .. })));
    }

    #[test]
    fn counter_service_behaviour() {
        let counters = CounterService::new();
        assert_eq!(counters.read("x"), 0);
        assert_eq!(counters.increment("x"), 1);
        assert_eq!(counters.increment("x"), 2);
        assert_eq!(counters.read("x"), 2);
        assert_eq!(counters.read("y"), 0);
        // Clones share state.
        let clone = counters.clone();
        clone.increment("x");
        assert_eq!(counters.read("x"), 3);
    }

    #[test]
    fn large_store_exceeding_epc_pays_paging() {
        // A store bigger than the (tiny) EPC faults on scans; the same
        // store in native memory does not.
        let geometry = MemoryGeometry {
            line_bytes: 64,
            llc_bytes: 64 * 64,
            page_bytes: 4096,
            epc_total_bytes: 4096 * 16,
            epc_reserved_bytes: 4096 * 4,
        };
        let costs = CostModel::sgx_v1();
        let mut enclave_mem = MemorySim::enclave(geometry, costs.clone());
        let mut native_mem = MemorySim::native(geometry, costs);
        let mut kv_e = SecureKv::new();
        let mut kv_n = SecureKv::new();
        for i in 0..200u32 {
            let key = i.to_be_bytes();
            let value = vec![0u8; 1024];
            kv_e.put(&mut enclave_mem, &key, &value);
            kv_n.put(&mut native_mem, &key, &value);
        }
        enclave_mem.reset_metrics();
        native_mem.reset_metrics();
        kv_e.scan(&mut enclave_mem, &0u32.to_be_bytes(), &200u32.to_be_bytes());
        kv_n.scan(&mut native_mem, &0u32.to_be_bytes(), &200u32.to_be_bytes());
        assert!(enclave_mem.stats().epc_faults > 0);
        assert!(enclave_mem.cycles() > native_mem.cycles());
    }

    fn tiny_config() -> StorageConfig {
        StorageConfig {
            block_bytes: 256,
            flush_bytes: 1024,
            cache_blocks: 2,
            compact_at_segments: 4,
        }
    }

    fn tiered_kv(counters: &CounterService) -> SecureKv {
        SecureKv::tiered(
            tiny_config(),
            StoreKeys::new([5u8; 16]),
            counters.clone(),
            "test/tier",
        )
    }

    #[test]
    fn tiered_put_get_across_flush() {
        let mut m = mem();
        let counters = CounterService::new();
        let mut kv = tiered_kv(&counters);
        assert!(kv.is_tiered());
        for i in 0..40u32 {
            kv.put(&mut m, format!("key{i:04}").as_bytes(), &[i as u8; 50]);
        }
        let engine = kv.storage().expect("tiered");
        assert!(engine.segment_count() > 0, "memtable should have flushed");
        // Keys from flushed segments and from the live memtable both read.
        for i in 0..40u32 {
            assert_eq!(
                kv.get(&mut m, format!("key{i:04}").as_bytes()),
                Some(vec![i as u8; 50]),
                "key{i:04}"
            );
        }
        assert_eq!(kv.version(), 40);
    }

    #[test]
    fn tiered_delete_masks_sealed_records() {
        let mut m = mem();
        let counters = CounterService::new();
        let mut kv = tiered_kv(&counters);
        for i in 0..30u32 {
            kv.put(&mut m, format!("key{i:04}").as_bytes(), &[1u8; 50]);
        }
        kv.flush_memtable(&mut m).unwrap();
        assert_eq!(kv.len(), 0, "memtable drained");
        // Delete a flushed key: pages it in, returns the old value, masks it.
        assert_eq!(kv.delete(&mut m, b"key0007"), Some(vec![1u8; 50]));
        assert_eq!(kv.get(&mut m, b"key0007"), None);
        // Deleting again (or an absent key) is a no-op.
        let v = kv.version();
        assert_eq!(kv.delete(&mut m, b"key0007"), None);
        assert_eq!(kv.delete(&mut m, b"nope"), None);
        assert_eq!(kv.version(), v);
        // The tombstone survives its own flush.
        kv.flush_memtable(&mut m).unwrap();
        assert_eq!(kv.get(&mut m, b"key0007"), None);
        assert_eq!(kv.get(&mut m, b"key0008"), Some(vec![1u8; 50]));
    }

    #[test]
    fn tiered_scan_merges_tiers() {
        let mut m = mem();
        let counters = CounterService::new();
        let mut kv = tiered_kv(&counters);
        for i in 0..20u32 {
            kv.put(&mut m, format!("key{i:04}").as_bytes(), b"old");
        }
        kv.flush_memtable(&mut m).unwrap();
        kv.put(&mut m, b"key0003", b"new"); // memtable shadows segment
        kv.delete(&mut m, b"key0005"); // tombstone hides segment record
        let hits = kv.scan(&mut m, b"key0002", b"key0007");
        let got: Vec<(&[u8], &[u8])> = hits
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        assert_eq!(
            got,
            vec![
                (&b"key0002"[..], &b"old"[..]),
                (b"key0003", b"new"),
                (b"key0004", b"old"),
                (b"key0006", b"old"),
            ]
        );
    }

    #[test]
    fn tiered_reopen_recovers_both_tiers() {
        let mut m = mem();
        let counters = CounterService::new();
        let keys = StoreKeys::new([5u8; 16]);
        let mut kv = tiered_kv(&counters);
        for i in 0..35u32 {
            kv.put(&mut m, format!("key{i:04}").as_bytes(), &[2u8; 50]);
        }
        kv.delete(&mut m, b"key0001");
        let version = kv.version();
        let disk = kv.storage().unwrap().disk().clone();
        drop(kv);

        let (mut revived, report) = SecureKv::reopen(
            &mut m,
            tiny_config(),
            keys,
            counters.clone(),
            "test/tier",
            disk,
        )
        .unwrap();
        assert_eq!(revived.version(), version);
        assert!(
            report.wal_replayed < 36,
            "only the WAL tail replays, not the whole history"
        );
        assert_eq!(revived.get(&mut m, b"key0001"), None);
        assert_eq!(revived.get(&mut m, b"key0002"), Some(vec![2u8; 50]));
        assert_eq!(revived.get(&mut m, b"key0034"), Some(vec![2u8; 50]));
    }

    #[test]
    fn tiered_incremental_snapshot_restores_and_fences() {
        let mut m = mem();
        let counters = CounterService::new();
        let keys = StoreKeys::new([5u8; 16]);
        let mut kv = tiered_kv(&counters);
        for i in 0..25u32 {
            kv.put(&mut m, format!("key{i:04}").as_bytes(), b"value");
        }
        let stale = kv.incremental_snapshot();
        kv.put(&mut m, b"key9999", b"late");
        let fresh = kv.incremental_snapshot();
        assert!(fresh.version > stale.version);

        let mut restored = SecureKv::restore_incremental(
            &mut m,
            tiny_config(),
            keys.clone(),
            counters.clone(),
            "test/tier",
            fresh,
        )
        .unwrap();
        assert_eq!(restored.get(&mut m, b"key9999"), Some(b"late".to_vec()));
        assert_eq!(restored.get(&mut m, b"key0000"), Some(b"value".to_vec()));

        // The stale export is fenced by the version floor.
        let err = SecureKv::restore_incremental(
            &mut m,
            tiny_config(),
            keys,
            counters.clone(),
            "test/tier",
            stale,
        );
        assert!(matches!(
            err,
            Err(KvError::Storage(StorageError::Rollback { .. }))
        ));
    }

    #[test]
    #[should_panic(expected = "incremental_snapshot")]
    fn tiered_store_rejects_whole_snapshot() {
        let counters = CounterService::new();
        let mut kv = tiered_kv(&counters);
        let _ = kv.snapshot(&[0u8; 16], &counters, "nope");
    }

    #[test]
    fn tiered_flush_releases_memtable_epc() {
        let mut m = mem();
        let counters = CounterService::new();
        let mut kv = tiered_kv(&counters);
        kv.put(&mut m, b"a", &[0u8; 100]);
        let offset = kv.map.get(b"a".as_slice()).unwrap().offset;
        // Probe with LLC-cold lines of the arena's (page-aligned) first
        // page: while the page is EPC-resident a cold line misses without
        // faulting...
        let f0 = m.stats().epc_faults;
        m.touch(offset + 512, 64);
        assert_eq!(m.stats().epc_faults, f0);
        kv.flush_memtable(&mut m).unwrap();
        // ...but after the flush frees the arena, the page is gone and the
        // next cold line faults it back in.
        m.touch(offset + 1024, 64);
        assert_eq!(m.stats().epc_faults, f0 + 1);
        assert_eq!(kv.data_bytes(), 0);
    }

    #[test]
    fn version_monotone() {
        let mut m = mem();
        let mut kv = SecureKv::new();
        let v0 = kv.version();
        kv.put(&mut m, b"a", b"1");
        let v1 = kv.version();
        kv.delete(&mut m, b"a");
        let v2 = kv.version();
        assert!(v0 < v1 && v1 < v2);
    }
}
