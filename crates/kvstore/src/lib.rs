//! A secure structured data store (paper §III-B: "secure structured data
//! stores" as a big-data building block).
//!
//! [`SecureKv`] is an ordered key-value store whose working set lives in
//! *enclave* memory: every operation reports its accesses to the
//! [`MemorySim`](securecloud_sgx::mem::MemorySim), so a store larger than the EPC exhibits the same paging
//! behaviour as the paper's Figure 3 workload. Durability is provided by
//! sealed snapshots written to untrusted storage, with **rollback
//! protection** via a trusted monotonic counter (the SGX counter service):
//! restoring an old-but-validly-sealed snapshot is detected.
//!
//! Stores larger than the EPC can run *tiered* ([`SecureKv::tiered`]): an
//! in-EPC memtable over sealed log-structured segments on the untrusted
//! host (the `securecloud-storage` crate), with WAL-tail recovery and
//! incremental snapshots replacing whole-store sealing.
//!
//! # Example
//!
//! ```
//! use securecloud_kvstore::{CounterService, SecureKv};
//! use securecloud_sgx::costs::{CostModel, MemoryGeometry};
//! use securecloud_sgx::mem::MemorySim;
//!
//! let mut mem = MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::sgx_v1());
//! let mut kv = SecureKv::new();
//! kv.put(&mut mem, b"meter/42", b"1337 W");
//! assert_eq!(kv.get(&mut mem, b"meter/42"), Some(b"1337 W".to_vec()));
//! ```

pub mod store;

pub use store::{CounterService, KvError, KvStats, SecureKv, Snapshot};

// The sealed-tier vocabulary, re-exported so downstream crates (replica,
// bench) can configure tiered stores without a direct storage dependency.
pub use securecloud_storage::{
    HostDisk, IncrementalSnapshot, ReplayReport, StorageConfig, StorageEngine, StorageError,
    StorageStats, StoreKeys,
};
