//! Model-based property tests: `SecureKv` behaves exactly like a
//! `BTreeMap`, and snapshots are faithful and fresh.

use proptest::prelude::*;
use securecloud_kvstore::{CounterService, SecureKv};
use securecloud_sgx::costs::{CostModel, MemoryGeometry};
use securecloud_sgx::mem::MemorySim;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum KvOp {
    Put(Vec<u8>, Vec<u8>),
    Get(Vec<u8>),
    Delete(Vec<u8>),
    Scan(Vec<u8>, Vec<u8>),
}

fn arb_key() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..8, 1..3)
}

fn arb_kv_op() -> impl Strategy<Value = KvOp> {
    prop_oneof![
        (arb_key(), prop::collection::vec(any::<u8>(), 0..64)).prop_map(|(k, v)| KvOp::Put(k, v)),
        arb_key().prop_map(KvOp::Get),
        arb_key().prop_map(KvOp::Delete),
        (arb_key(), arb_key()).prop_map(|(a, b)| KvOp::Scan(a, b)),
    ]
}

fn mem() -> MemorySim {
    MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::zero())
}

proptest! {
    #[test]
    fn kv_matches_btreemap(ops in prop::collection::vec(arb_kv_op(), 0..120)) {
        let mut mem = mem();
        let mut kv = SecureKv::new();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                KvOp::Put(k, v) => {
                    prop_assert_eq!(kv.put(&mut mem, k, v), model.insert(k.clone(), v.clone()));
                }
                KvOp::Get(k) => {
                    prop_assert_eq!(kv.get(&mut mem, k), model.get(k).cloned());
                }
                KvOp::Delete(k) => {
                    prop_assert_eq!(kv.delete(&mut mem, k), model.remove(k));
                }
                KvOp::Scan(a, b) => {
                    let got = kv.scan(&mut mem, a, b);
                    let want: Vec<(Vec<u8>, Vec<u8>)> = if a <= b {
                        model
                            .range(a.clone()..b.clone())
                            .map(|(k, v)| (k.clone(), v.clone()))
                            .collect()
                    } else {
                        Vec::new()
                    };
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(kv.len(), model.len());
        }
        let expected_bytes: u64 = model
            .iter()
            .map(|(k, v)| (k.len() + v.len()) as u64)
            .sum();
        prop_assert_eq!(kv.data_bytes(), expected_bytes);
    }

    /// Snapshot → restore is the identity on contents, and any *older*
    /// snapshot is rejected by the freshness counter.
    #[test]
    fn snapshot_faithful_and_fresh(
        first in prop::collection::btree_map(arb_key(), prop::collection::vec(any::<u8>(), 0..32), 1..10),
        second_key in arb_key(),
    ) {
        let mut mem = mem();
        let counters = CounterService::new();
        let key = [9u8; 16];
        let mut kv = SecureKv::new();
        for (k, v) in &first {
            kv.put(&mut mem, k, v);
        }
        let old = kv.snapshot(&key, &counters, "s");
        kv.put(&mut mem, &second_key, b"newer");
        let new = kv.snapshot(&key, &counters, "s");

        let mut restored = SecureKv::restore(&mut mem, &key, &new.sealed, &counters, "s").unwrap();
        for (k, v) in &first {
            if k != &second_key {
                prop_assert_eq!(restored.get(&mut mem, k), Some(v.clone()));
            }
        }
        prop_assert_eq!(restored.get(&mut mem, &second_key), Some(b"newer".to_vec()));
        // Rollback to the old snapshot is detected.
        prop_assert!(SecureKv::restore(&mut mem, &key, &old.sealed, &counters, "s").is_err());
    }
}
