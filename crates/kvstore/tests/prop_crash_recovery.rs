//! Crash-recovery property tests for the tiered store.
//!
//! A tiered [`SecureKv`] is killed at a random host write — mid-WAL-append,
//! mid-flush, or mid-compaction — then restarted from a clone of the
//! untrusted disk. Whatever the kill point, WAL-tail replay plus the op
//! replay must reconstruct the exact state an uninterrupted run reaches:
//! same version, byte-identical scan. A second property pins the rollback
//! fence: restarting from *any* stale copy of the disk is rejected once
//! the trusted version floor has moved past it.

use proptest::prelude::*;
use securecloud_kvstore::{
    CounterService, KvError, SecureKv, StorageConfig, StorageError, StoreKeys,
};
use securecloud_sgx::costs::{CostModel, MemoryGeometry};
use securecloud_sgx::mem::MemorySim;

fn mem() -> MemorySim {
    MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::sgx_v1())
}

/// Aggressive thresholds so short op sequences still cross flush and
/// compaction boundaries (the interesting kill points).
fn tiny_config() -> StorageConfig {
    StorageConfig {
        block_bytes: 128,
        flush_bytes: 384,
        cache_blocks: 2,
        compact_at_segments: 2,
    }
}

fn key(k: u8) -> Vec<u8> {
    format!("key/{k:02}").into_bytes()
}

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    Delete(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Puts outnumber deletes three to one so state accumulates enough to
    // cross flush/compaction thresholds.
    prop_oneof![
        (0u8..12, proptest::collection::vec(any::<u8>(), 0..40)).prop_map(|(k, v)| Op::Put(k, v)),
        (12u8..24, proptest::collection::vec(any::<u8>(), 0..40)).prop_map(|(k, v)| Op::Put(k, v)),
        (0u8..24, proptest::collection::vec(any::<u8>(), 0..40)).prop_map(|(k, v)| Op::Put(k, v)),
        (0u8..24).prop_map(Op::Delete),
    ]
}

fn apply(kv: &mut SecureKv, m: &mut MemorySim, op: &Op) -> Result<(), KvError> {
    match op {
        Op::Put(k, v) => kv.try_put(m, &key(*k), v).map(|_| ()),
        Op::Delete(k) => kv.try_delete(m, &key(*k)).map(|_| ()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn crash_at_any_host_write_recovers_exactly(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        kill_after in 0u64..120,
    ) {
        // Reference: the same ops, uninterrupted.
        let mut rm = mem();
        let mut reference = SecureKv::tiered(
            tiny_config(),
            StoreKeys::new([9u8; 16]),
            CounterService::new(),
            "prop/tier",
        );
        for op in &ops {
            apply(&mut reference, &mut rm, op).expect("uninterrupted run");
        }
        let want_version = reference.version();
        let want_state = reference.try_scan(&mut rm, b"", b"~").expect("reference scan");

        // Victim: killed before its `kill_after + 1`-th host write.
        let mut cm = mem();
        let counters = CounterService::new();
        let store_keys = StoreKeys::new([9u8; 16]);
        let mut kv = SecureKv::tiered(
            tiny_config(),
            store_keys.clone(),
            counters.clone(),
            "prop/tier",
        );
        kv.storage_mut().expect("tiered").fail_after_host_writes(Some(kill_after));
        let mut crash: Option<(usize, u64)> = None;
        for (i, op) in ops.iter().enumerate() {
            let version_before = kv.version();
            match apply(&mut kv, &mut cm, op) {
                Ok(()) => {}
                Err(KvError::Storage(StorageError::CrashInjected)) => {
                    crash = Some((i, version_before));
                    break;
                }
                Err(e) => prop_assert!(false, "unexpected error: {e}"),
            }
        }

        let mut kv = if let Some((i, version_before)) = crash {
            // Simulated restart: only the untrusted disk survives; the
            // enclave reopens it and replays the WAL tail along its MAC
            // chain against the trusted counter floor.
            let disk = kv.storage().expect("tiered").disk().clone();
            drop(kv);
            let (mut kv, report) = SecureKv::reopen(
                &mut cm,
                tiny_config(),
                store_keys,
                counters,
                "prop/tier",
                disk,
            )
            .expect("post-crash reopen");
            prop_assert_eq!(kv.version(), report.recovered_version);
            // The interrupted op is durable iff its WAL record landed
            // before the kill (a crash later in the same call — during a
            // flush or compaction it triggered — loses no mutation).
            let resume = if report.recovered_version > version_before { i + 1 } else { i };
            for op in &ops[resume..] {
                apply(&mut kv, &mut cm, op).expect("replay after recovery");
            }
            kv
        } else {
            kv // the budget outlasted the workload: nothing to recover
        };

        prop_assert_eq!(kv.version(), want_version);
        let got_state = kv.try_scan(&mut cm, b"", b"~").expect("recovered scan");
        prop_assert_eq!(got_state, want_state);
    }

    /// However much history separates the copy from the present, a
    /// rolled-back disk is rejected at reopen: every WAL append advanced
    /// the trusted version floor past what the stale manifest + WAL can
    /// replay to.
    #[test]
    fn rolled_back_disk_is_always_rejected(n1 in 1usize..12, n2 in 1usize..12) {
        let mut m = mem();
        let counters = CounterService::new();
        let store_keys = StoreKeys::new([3u8; 16]);
        let mut kv = SecureKv::tiered(
            tiny_config(),
            store_keys.clone(),
            counters.clone(),
            "prop/tier",
        );
        for i in 0..n1 {
            kv.put(&mut m, &key(i as u8), b"before the copy");
        }
        let stale = kv.storage().expect("tiered").disk().clone();
        for i in 0..n2 {
            kv.put(&mut m, &key(i as u8), b"after the copy");
        }
        let err = SecureKv::reopen(&mut m, tiny_config(), store_keys, counters, "prop/tier", stale)
            .expect_err("stale disk must be fenced");
        prop_assert!(
            matches!(err, KvError::Storage(StorageError::Rollback { .. })),
            "expected rollback detection, got {err}"
        );
    }
}
