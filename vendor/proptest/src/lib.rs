//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! re-implements the subset of proptest the workspace's property tests
//! use: the `proptest!` macro, `Strategy` with `prop_map`, `any::<T>()`,
//! ranges, tuples, `Just`, `prop_oneof!`, string-pattern strategies for a
//! small regex subset, and `prop::collection::{vec, btree_map}`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! deterministic case number instead — re-running reproduces it exactly),
//! and case generation is seeded from the test's module path, so runs are
//! reproducible without a `proptest-regressions` directory.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration, settable per-block with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Marker returned by `prop_assume!` when a case's preconditions fail;
/// the runner skips the case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestCaseRejected;

/// The deterministic per-case generator.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the generator for one case from a 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }

    fn size_in(&mut self, range: &Range<usize>) -> usize {
        assert!(range.start < range.end, "empty size range");
        range.start + self.index(range.end - range.start)
    }
}

/// Generates one value from a strategy. Used by the macros instead of a
/// bare `Strategy::generate` call so that `&'static str` strategies resolve
/// as the sized `&str` impl rather than unsizing to `str`.
pub fn generate_one<S: Strategy>(strategy: &S, rng: &mut TestRng) -> S::Value {
    strategy.generate(rng)
}

/// FNV-1a over a test path, used to derive per-test seed bases.
#[must_use]
pub fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: Clone,
    Range<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.0.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A / 0, B / 1);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Types with a canonical "anything" strategy, via [`any`].
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII with a sprinkle of multi-byte code points.
        const EXOTIC: [char; 6] = ['é', 'λ', '中', '€', 'Ω', '🦀'];
        if rng.next_u64().is_multiple_of(8) {
            EXOTIC[rng.index(EXOTIC.len())]
        } else {
            (0x20u8 + (rng.next_u64() % 0x5f) as u8) as char
        }
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<A>(PhantomData<A>);

/// The canonical strategy for `A`.
#[must_use]
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// A boxed generator arm of a [`Union`].
type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Uniform choice between boxed alternatives; built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
}

impl<V> Union<V> {
    /// Starts a union with one alternative; the union's value type is
    /// pinned to that strategy's value type.
    #[must_use]
    pub fn from_strategy<S>(strategy: S) -> Self
    where
        S: Strategy<Value = V> + 'static,
    {
        let mut union = Union { arms: Vec::new() };
        union.push_strategy(strategy);
        union
    }

    /// Adds a further alternative.
    pub fn push_strategy<S>(&mut self, strategy: S)
    where
        S: Strategy<Value = V> + 'static,
    {
        self.arms.push(Box::new(move |rng| strategy.generate(rng)));
    }
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.arms.len())
            .finish()
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.index(self.arms.len());
        (self.arms[arm])(rng)
    }
}

// ---- String pattern strategies -------------------------------------------
//
// `&str` strategies interpret the subset of regex syntax the tests use:
// literal characters, character classes `[a-z0-9_]`, the proptest idiom
// `\PC` ("any non-control character"), and `{m}` / `{m,n}` repetition.

#[derive(Debug, Clone)]
enum CharSet {
    Literal(char),
    Ranges(Vec<(char, char)>),
    Printable,
}

impl CharSet {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Literal(c) => *c,
            CharSet::Ranges(ranges) => {
                let (lo, hi) = ranges[rng.index(ranges.len())];
                let span = hi as u32 - lo as u32 + 1;
                char::from_u32(lo as u32 + (rng.next_u64() % u64::from(span)) as u32).unwrap_or(lo)
            }
            CharSet::Printable => char::arbitrary(rng),
        }
    }
}

#[derive(Debug, Clone)]
struct Atom {
    set: CharSet,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                i = close + 1;
                CharSet::Ranges(ranges)
            }
            '\\' => {
                // Only `\PC` (non-control char) is supported.
                assert!(
                    chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                    "unsupported escape in pattern {pattern:?}"
                );
                i += 3;
                CharSet::Printable
            }
            c => {
                i += 1;
                CharSet::Literal(c)
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repeat lower bound"),
                    hi.trim().parse().expect("repeat upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom { set, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let count = atom.min + rng.index(atom.max - atom.min + 1);
            for _ in 0..count {
                out.push(atom.set.sample(rng));
            }
        }
        out
    }
}

/// Collection strategies (`prop::collection::…`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of values from `element`, with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.size_in(&self.size);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: Range<usize>,
    }

    /// Generates maps with approximately `size` entries (key collisions
    /// may yield fewer, as in upstream proptest with narrow key spaces).
    pub fn btree_map<K: Strategy, V: Strategy>(
        keys: K,
        values: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { keys, values, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.size_in(&self.size);
            let mut map = BTreeMap::new();
            for _ in 0..target.saturating_mul(4) {
                if map.len() >= target {
                    break;
                }
                map.insert(self.keys.generate(rng), self.values.generate(rng));
            }
            map
        }
    }

    /// Strategy for `HashSet<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates sets with approximately `size` entries (collisions may
    /// yield fewer, as in upstream proptest with narrow element spaces).
    pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S::Value: std::hash::Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: std::hash::Hash + Eq,
    {
        type Value = std::collections::HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.size_in(&self.size);
            let mut set = std::collections::HashSet::new();
            for _ in 0..target.saturating_mul(4) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Fixed-size array strategies (`prop::array::…`).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[S::Value; N]`.
    #[derive(Debug, Clone)]
    pub struct ArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident => $n:literal),+ $(,)?) => {$(
            /// Generates arrays whose elements all come from `element`.
            pub fn $name<S: Strategy>(element: S) -> ArrayStrategy<S, $n> {
                ArrayStrategy { element }
            }
        )+};
    }

    uniform_fns! {
        uniform4 => 4,
        uniform8 => 8,
        uniform12 => 12,
        uniform16 => 16,
        uniform24 => 24,
        uniform32 => 32,
    }
}

/// `Option` strategies (`prop::option::…`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`, `None` roughly one time in four.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` values from `inner`, interleaved with `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.index(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, fnv, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Any, Arbitrary, Just, Map, ProptestConfig, Strategy, TestCaseRejected, TestRng, Union,
    };

    /// The `prop::` module path used by strategy expressions.
    pub mod prop {
        pub use crate::{array, collection, option};
    }
}

/// Runs one generated case body, reporting the case number on panic so the
/// deterministic runner can be re-pointed at it.
pub fn run_case(
    test_path: &str,
    case: u32,
    total: u32,
    body: impl FnOnce() -> Result<(), TestCaseRejected>,
) -> Result<(), TestCaseRejected> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)) {
        Ok(outcome) => outcome,
        Err(payload) => {
            eprintln!("proptest: {test_path} failed at deterministic case {case}/{total}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Defines deterministic property tests.
///
/// Supports the upstream shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn name(x in 0u8..4, ys in prop::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 4);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let path = concat!(module_path!(), "::", stringify!($name));
            let base = $crate::fnv(path);
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::from_seed(
                    base ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::generate_one(&($strat), &mut __rng);)+
                let _ = $crate::run_case(path, case, config.cases, move || {
                    { $body }
                    ::std::result::Result::Ok(())
                });
            }
        }
    )*};
}

/// Asserts within a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { ::std::assert!($($t)*) };
}

/// Asserts equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { ::std::assert_eq!($($t)*) };
}

/// Asserts inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { ::std::assert_ne!($($t)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseRejected);
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut __union = $crate::Union::from_strategy($first);
        $(__union.push_strategy($rest);)*
        __union
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::prop;
    use super::*;

    #[test]
    fn deterministic_generation() {
        let strat = collection::vec(0u8..10, 1..5);
        let mut a = TestRng::from_seed(1);
        let mut b = TestRng::from_seed(1);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn string_patterns() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let s = "[a-d]".generate(&mut rng);
            assert_eq!(s.len(), 1);
            assert!(('a'..='d').contains(&s.chars().next().unwrap()));
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.chars().count()));
            let s = "\\PC{0,50}".generate(&mut rng);
            assert!(s.chars().count() <= 50);
            assert_eq!("abc".generate(&mut rng), "abc");
        }
    }

    #[test]
    fn oneof_and_map() {
        let strat = prop_oneof![Just(1usize), (2usize..5).prop_map(|v| v * 10),];
        let mut rng = TestRng::from_seed(9);
        let mut seen_just = false;
        let mut seen_mapped = false;
        for _ in 0..100 {
            match strat.generate(&mut rng) {
                1 => seen_just = true,
                v if (20..50).contains(&v) => seen_mapped = true,
                v => panic!("unexpected {v}"),
            }
        }
        assert!(seen_just && seen_mapped);
    }

    #[test]
    fn btree_map_sizes() {
        let strat = prop::collection::btree_map(0u8..4, any::<u8>(), 0..3);
        let mut rng = TestRng::from_seed(4);
        for _ in 0..50 {
            assert!(strat.generate(&mut rng).len() < 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_end_to_end(
            x in 0u8..4,
            ys in prop::collection::vec(any::<u8>(), 0..16),
        ) {
            prop_assume!(x < 4);
            prop_assert!(ys.len() < 16);
            prop_assert_eq!(usize::from(x) / 4, 0);
        }
    }
}
