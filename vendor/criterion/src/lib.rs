//! Offline stand-in for the `criterion` crate.
//!
//! Provides just enough of criterion's API for the workspace's benches to
//! compile and produce useful numbers without registry access: groups,
//! `bench_function` / `bench_with_input`, throughput annotation, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a simple
//! warm-up plus timed batch (median-free mean) — adequate for the relative
//! comparisons the benches make, not for statistical rigour.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id from a name plus a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Label accepted wherever criterion takes `&str` or [`BenchmarkId`].
pub trait IntoLabel {
    /// Renders the label.
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`]. The stand-in ignores
/// it (every batch holds one input) but accepts the upstream variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Per-iteration timer handle passed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up round, untimed.
        black_box(routine());
        let iterations = 10u64;
        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = iterations;
    }

    /// Times `routine` over inputs produced by `setup`, excluding the
    /// setup cost from the measurement (upstream `iter_batched`).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Warm-up round, untimed.
        black_box(routine(setup()));
        let iterations = 10u64;
        let mut elapsed = Duration::ZERO;
        for _ in 0..iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
        self.iterations = iterations;
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.iterations == 0 {
            println!("{label:<40} (not measured)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iterations as f64;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / per_iter),
            Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 / per_iter),
            None => String::new(),
        };
        println!("{label:<40} {:>12.3} us/iter{rate}", per_iter * 1e6);
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl IntoLabel, f: impl FnMut(&mut Bencher)) {
        run_one(
            &format!("{}/{}", self.name, id.into_label()),
            self.throughput,
            f,
        );
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoLabel,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(
            &format!("{}/{}", self.name, id.into_label()),
            self.throughput,
            |b| f(b, input),
        );
    }

    /// Finishes the group (reporting is incremental; nothing to flush).
    pub fn finish(self) {}
}

fn run_one(label: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    bencher.report(label, throughput);
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl IntoLabel, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&id.into_label(), None, f);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a group-runner function, as upstream criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4][..], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter("param"), &1u64, |b, &x| {
            b.iter(|| x + 1)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
