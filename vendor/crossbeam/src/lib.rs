//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the `crossbeam::channel` subset this workspace uses — an
//! unbounded MPMC channel with cloneable senders *and* receivers — over a
//! `Mutex<VecDeque>` + `Condvar`. Disconnection semantics follow crossbeam:
//! `recv` drains remaining messages after all senders drop, then errors;
//! `send` errors once every receiver is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] on a drained, disconnected
    /// channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel empty but still connected.
        Empty,
        /// Channel empty and every sender dropped.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }

    /// Creates an unbounded MPMC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake any blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Sends a message.
        ///
        /// # Errors
        ///
        /// [`SendError`] if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or every sender
        /// disconnects.
        ///
        /// # Errors
        ///
        /// [`RecvError`] once the channel is empty and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receives without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when connected but empty,
        /// [`TryRecvError::Disconnected`] when drained and closed.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match queue.pop_front() {
                Some(value) => Ok(value),
                None if self.shared.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_after_drain() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn blocking_recv_wakes() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || rx.recv());
            tx.send(42).unwrap();
            assert_eq!(handle.join().unwrap(), Ok(42));
        }
    }
}
