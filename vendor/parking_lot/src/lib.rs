//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny subset of `parking_lot`'s API it actually uses,
//! implemented over `std::sync`. Semantics match where it matters:
//! `lock()`/`read()`/`write()` return guards directly (no `Result`), and a
//! poisoned lock is recovered rather than propagated — matching
//! `parking_lot`'s poison-free behaviour.

use std::sync::PoisonError;

/// Mutual exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, recovering from poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
