//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of `rand` it consumes: `StdRng` (seedable from a `u64`),
//! `thread_rng`, `Rng::{gen_range, gen_bool, gen}` and
//! `RngCore::{next_u32, next_u64, fill_bytes}`. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic for a given seed,
//! which the simulation relies on. Numeric streams differ from upstream
//! `rand`; everything in this repo treats seeded streams as opaque.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn from a half-open or inclusive range.
pub trait SampleUniform: Sized {
    /// Draws a value in `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + low as i128;
                v as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let span = high - low;
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        low + wide % span
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                low + (unit as $t) * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = self.into_inner();
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                (((rng.next_u64() as u128) % span) as i128 + low as i128) as $t
            }
        }
    )*};
}

impl_sample_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_inclusive_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = self.into_inner();
                assert!(low <= high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                low + (unit as $t) * (high - low)
            }
        }
    )*};
}

impl_sample_range_inclusive_float!(f32, f64);

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniformly random value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::draw(rng) as f32
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::draw(self) < p
    }

    /// Draws a uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the stand-in for `rand`'s `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Process-global generator handle returned by [`crate::thread_rng`].
    ///
    /// Deterministic across runs (the simulator never wants wall-clock
    /// entropy); successive calls within a process draw from one shared
    /// stream.
    #[derive(Debug)]
    pub struct ThreadRng(());

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            ThreadRng(())
        }
    }

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            use std::sync::atomic::{AtomicU64, Ordering};
            static STATE: AtomicU64 = AtomicU64::new(0x5EC0_C10D_D5EE_D001);
            let mut state = STATE.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
            splitmix64(&mut state)
        }
    }
}

/// Returns the process-global generator (deterministic in this stand-in).
#[must_use]
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-20i64..20);
            assert!((-20..20).contains(&v));
            let f = rng.gen_range(0.25..2.0);
            assert!((0.25..2.0).contains(&f));
            let u = rng.gen_range(0..5);
            assert!((0..5).contains(&u));
            let inc = rng.gen_range(1u8..=3);
            assert!((1..=3).contains(&inc));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let trues = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&trues), "got {trues}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
